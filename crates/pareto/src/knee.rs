//! Knee-point selection: the front point with the best "bang for the buck".

use crate::front::{pareto_front, BiPoint};

/// Returns the index (into `points`) of the knee of the Pareto front: the
/// front point at maximum perpendicular distance from the chord joining the
/// front's two extreme points, after normalizing both objectives to [0, 1].
///
/// For fronts with fewer than three points the fastest point is returned
/// (there is no interior to bend).
pub fn knee_point(points: &[BiPoint]) -> Option<usize> {
    if points.is_empty() {
        return None;
    }
    let front = pareto_front(points);
    if front.len() < 3 {
        return Some(front[0]);
    }
    let first = points[front[0]];
    let last = points[*front.last().expect("non-empty front")];
    let t_span = (last.time - first.time).max(f64::MIN_POSITIVE);
    let e_span = (first.energy - last.energy).max(f64::MIN_POSITIVE);
    // Normalized chord endpoints: (0, 1) → (1, 0).
    let mut best = front[0];
    let mut best_d = f64::NEG_INFINITY;
    for &i in &front {
        let x = (points[i].time - first.time) / t_span;
        let y = (points[i].energy - last.energy) / e_span;
        // Distance from the line x + y = 1 (up to the constant √2).
        let d = 1.0 - x - y;
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gives_none() {
        assert_eq!(knee_point(&[]), None);
    }

    #[test]
    fn tiny_front_gives_fastest() {
        let pts = [BiPoint::new(2.0, 1.0), BiPoint::new(1.0, 3.0)];
        assert_eq!(knee_point(&pts), Some(1));
    }

    #[test]
    fn sharp_knee_is_found() {
        // An L-shaped front: the corner (1.1, 1.1) is the obvious knee.
        let pts = [
            BiPoint::new(1.0, 10.0),
            BiPoint::new(1.1, 1.1),
            BiPoint::new(10.0, 1.0),
        ];
        assert_eq!(knee_point(&pts), Some(1));
    }

    #[test]
    fn knee_ignores_dominated_points() {
        let pts = [
            BiPoint::new(1.0, 10.0),
            BiPoint::new(5.0, 9.0), // dominated by the knee
            BiPoint::new(1.5, 2.0),
            BiPoint::new(10.0, 1.0),
        ];
        assert_eq!(knee_point(&pts), Some(2));
    }
}
