//! Bench + regeneration of the headline savings/degradation summary over
//! the full workload grid (Sec. I / Sec. V).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::headline;

fn bench(c: &mut Criterion) {
    println!("{}", headline::render());
    let mut g = c.benchmark_group("headline");
    g.sample_size(10);
    g.bench_function("generate", |b| b.iter(headline::generate));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
