//! The sweep-serving daemon: accept loop, request lifecycle, and the
//! streamed sweep computation.
//!
//! ## Request lifecycle
//!
//! 1. The accept loop hands each connection to its own handler thread
//!    (requests are measurement-bound, not connection-bound, so a thread
//!    per connection is the right shape at this scale). The handler runs
//!    under `catch_unwind`: a panicking request answers 500 and dies alone
//!    — it cannot take the daemon or any other client down.
//! 2. [`crate::http::read_request`] parses the request under the socket
//!    read timeout; malformed, torn, oversized, or stalled requests answer
//!    a typed 4xx JSON body and close.
//! 3. `POST /sweep` parses the JSON request, derives the canonical cache
//!    key, and probes the [`ResultCache`]: a hit streams the cached bytes
//!    (`X-Cache: hit`); a miss computes the sweep and streams each update
//!    as it is produced (`X-Cache: miss`); concurrent requests for the
//!    same key coalesce onto the one computation and then stream the same
//!    bytes (`X-Cache: hit`).
//!
//! ## Cache key derivation
//!
//! The canonical key folds in everything that changes the response:
//! `gpu-matmul/{arch}/N={n}/P={products}/seed={seed}/chunk={chunk}` — the
//! same convention as the checkpoint journal's manifest workload string.
//! Because configuration `i` of a sweep is always measured under
//! `split_seed(seed, i)` on a worker-local rig, the response body is a
//! pure function of this key at *any* worker thread count — which is what
//! makes serving cached bytes sound, and bitwise-exact rather than
//! approximate.
//!
//! ## Streaming-front protocol
//!
//! The response is `Transfer-Encoding: chunked`, `application/x-ndjson`.
//! Configurations are measured in fixed `chunk`-sized runs of enumeration
//! order; after each run, its points merge into a [`FrontTracker`] and one
//! NDJSON line — one HTTP chunk — carries the current incremental Pareto
//! front. The final line carries the complete point set and front. Cache
//! hits replay the identical NDJSON bytes (chunk boundaries may differ;
//! the de-chunked body is bitwise-identical).

use crate::cache::{content_hash, Lookup, ResultCache};
use crate::http::{read_request, write_response, ChunkedWriter, Request};
use enprop_apps::parallel::SweepExecutor;
use enprop_apps::GpuMatMulApp;
use enprop_gpusim::{GpuArch, ProductProfile};
use enprop_pareto::front::BiPoint;
use enprop_pareto::incremental::FrontTracker;
use serde::{Serialize, Value};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Sweep worker threads per request (0 = all available cores). The
    /// response is bitwise-identical at any setting.
    pub threads: usize,
    /// Socket read timeout — bounds how long a torn or stalled client can
    /// hold a handler thread.
    pub read_timeout: Duration,
    /// Directory for the persistent result store (`None` = in-memory).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { threads: 0, read_timeout: Duration::from_secs(10), cache_dir: None }
    }
}

/// A parsed, validated sweep request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Architecture name: `k40c` or `p100`.
    pub arch: String,
    /// Matrix dimension N.
    pub n: usize,
    /// Total products `G × R` every configuration must compute.
    pub products: usize,
    /// The sweep seed (configuration `i` measures under `split_seed(seed, i)`).
    pub seed: u64,
    /// Configurations per streamed front update.
    pub chunk: usize,
    /// Bypass the cache entirely (read *and* write) — the bench uses this
    /// to prove cached bytes equal freshly computed bytes.
    pub no_cache: bool,
}

/// Bounds that keep one request from monopolizing the daemon.
const MAX_N: usize = 32768;
const MAX_PRODUCTS: usize = 64;
const MAX_CHUNK: usize = 1024;

impl SweepRequest {
    /// Parses and validates the JSON request body. Errors are the `detail`
    /// of a 400 response.
    pub fn from_json(body: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let value = serde_json::parse(text).map_err(|e| format!("body is not JSON: {e}"))?;
        let field_u64 = |name: &str, default: Option<u64>| -> Result<u64, String> {
            match value.field(name) {
                Ok(Value::UInt(v)) => u64::try_from(*v).map_err(|_| format!("`{name}` out of range")),
                Ok(Value::Int(v)) => u64::try_from(*v).map_err(|_| format!("`{name}` must be non-negative")),
                Ok(other) => Err(format!("`{name}` must be an integer, found {}", other.kind())),
                Err(e) => default.ok_or_else(|| e.to_string()),
            }
        };
        let arch = match value.field("arch") {
            Ok(v) => v.as_str().map_err(|e| e.to_string())?.to_string(),
            Err(e) => return Err(e.to_string()),
        };
        parse_arch(&arch)?;
        let n = field_u64("n", None)? as usize;
        let products = field_u64("products", None)? as usize;
        let seed = field_u64("seed", Some(42))?;
        let chunk = field_u64("chunk", Some(32))? as usize;
        let no_cache = match value.field("no_cache") {
            Ok(Value::Bool(b)) => *b,
            Ok(other) => return Err(format!("`no_cache` must be a bool, found {}", other.kind())),
            Err(_) => false,
        };
        if n == 0 || n > MAX_N {
            return Err(format!("`n` must be in 1..={MAX_N}, got {n}"));
        }
        if products == 0 || products > MAX_PRODUCTS {
            return Err(format!("`products` must be in 1..={MAX_PRODUCTS}, got {products}"));
        }
        if chunk == 0 || chunk > MAX_CHUNK {
            return Err(format!("`chunk` must be in 1..={MAX_CHUNK}, got {chunk}"));
        }
        Ok(Self { arch, n, products, seed, chunk, no_cache })
    }

    /// The canonical cache key — everything that changes the response.
    /// `no_cache` is deliberately excluded: a bypassed computation produces
    /// the same bytes, that being the property the flag exists to prove.
    pub fn canonical_key(&self) -> String {
        format!(
            "gpu-matmul/{}/N={}/P={}/seed={}/chunk={}",
            self.arch, self.n, self.products, self.seed, self.chunk
        )
    }

    /// Renders this request as the JSON body a client would POST.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"arch\":\"{}\",\"n\":{},\"products\":{},\"seed\":{},\"chunk\":{}{}}}",
            self.arch,
            self.n,
            self.products,
            self.seed,
            self.chunk,
            if self.no_cache { ",\"no_cache\":true" } else { "" }
        )
    }
}

fn parse_arch(name: &str) -> Result<GpuArch, String> {
    match name {
        "k40c" => Ok(GpuArch::k40c()),
        "p100" => Ok(GpuArch::p100_pcie()),
        other => Err(format!("unknown arch {other:?} (expected \"k40c\" or \"p100\")")),
    }
}

/// Daemon-wide counters surfaced by `GET /stats`.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    sweeps: AtomicU64,
    bad_requests: AtomicU64,
    panics: AtomicU64,
}

/// Snapshot of [`ServeStats`] plus the cache counters.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServeStatsSnapshot {
    /// Requests accepted (all endpoints).
    pub requests: u64,
    /// Sweep requests served.
    pub sweeps: u64,
    /// Requests rejected with a typed 4xx.
    pub bad_requests: u64,
    /// Handler panics converted to 500s.
    pub panics: u64,
    /// Cache hits (including coalesced waiters).
    pub cache_hits: u64,
    /// Cache misses (computations performed).
    pub cache_misses: u64,
    /// Requests that coalesced onto an in-flight computation.
    pub cache_coalesced: u64,
    /// Completed entries in memory.
    pub cache_entries: usize,
    /// Entries replayed from the persistent store's clean log prefix at
    /// startup (0 for in-memory caches).
    pub cache_replayed: usize,
    /// Torn trailing bytes truncated from the persistent log during
    /// replay (a nonzero value records a crash mid-append that the store
    /// recovered from).
    pub cache_torn_tail_bytes: u64,
}

struct ServerState {
    config: ServeConfig,
    cache: ResultCache,
    stats: ServeStats,
    active: AtomicUsize,
}

/// A running daemon. Dropping does *not* stop it; call
/// [`shutdown`](Server::shutdown).
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// the accept loop.
    pub fn start(config: ServeConfig, addr: &str) -> io::Result<Server> {
        let cache = match &config.cache_dir {
            Some(dir) => ResultCache::open(dir)?,
            None => ResultCache::in_memory(),
        };
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            config,
            cache,
            stats: ServeStats::default(),
            active: AtomicUsize::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &state, &stop))
        };
        Ok(Server { addr: local, state, stop, accept: Some(accept) })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStatsSnapshot {
        snapshot(&self.state)
    }

    /// What loading the persistent store found at startup.
    pub fn cache_load_report(&self) -> crate::cache::LoadReportDisk {
        self.state.cache.load_report()
    }

    /// Stops accepting, joins the accept thread, and waits (bounded) for
    /// in-flight handlers to finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.state.active.load(Ordering::Relaxed) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Blocks this thread while the daemon serves (the standalone binary's
    /// main loop). Returns only if the accept thread dies.
    pub fn serve_forever(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn snapshot(state: &ServerState) -> ServeStatsSnapshot {
    let cache = state.cache.stats();
    let load = state.cache.load_report();
    ServeStatsSnapshot {
        requests: state.stats.requests.load(Ordering::Relaxed),
        sweeps: state.stats.sweeps.load(Ordering::Relaxed),
        bad_requests: state.stats.bad_requests.load(Ordering::Relaxed),
        panics: state.stats.panics.load(Ordering::Relaxed),
        cache_hits: cache.hits + cache.coalesced,
        cache_misses: cache.misses,
        cache_coalesced: cache.coalesced,
        cache_entries: state.cache.entries(),
        cache_replayed: load.replayed,
        cache_torn_tail_bytes: load.torn_tail_bytes,
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, stop: &Arc<AtomicBool>) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(state);
                state.active.fetch_add(1, Ordering::Relaxed);
                std::thread::spawn(move || {
                    // Decrement on every exit path, panics included.
                    struct ActiveGuard<'a>(&'a AtomicUsize);
                    impl Drop for ActiveGuard<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    let _guard = ActiveGuard(&state.active);
                    handle_connection(&state, stream);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// JSON error body: `{"error": KIND, "detail": TEXT}`.
fn error_body(kind: &str, detail: &str) -> Vec<u8> {
    let escape = |s: &str| {
        serde_json::to_string(&s).unwrap_or_else(|_| "\"<unrenderable>\"".to_string())
    };
    format!("{{\"error\":{},\"detail\":{}}}", escape(kind), escape(detail)).into_bytes()
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_nodelay(true);
    // A panicking request must not take the daemon down: answer 500 on this
    // connection and keep accepting. (Inside a sweep, `SweepExecutor` now
    // names the panicking configuration in the payload this forwards.)
    let result = catch_unwind(AssertUnwindSafe(|| handle_request(state, &mut stream)));
    if let Err(payload) = result {
        state.stats.panics.fetch_add(1, Ordering::Relaxed);
        let detail: &str = if let Some(s) = payload.downcast_ref::<&str>() {
            s
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s
        } else {
            "<non-string panic payload>"
        };
        let _ = write_response(
            &mut stream,
            500,
            "Internal Server Error",
            &[("Content-Type", "application/json")],
            &error_body("internal", detail),
        );
    }
}

fn handle_request(state: &Arc<ServerState>, stream: &mut TcpStream) {
    state.stats.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(stream) {
        Ok(r) => r,
        Err(e) => {
            // The typed-400 contract: torn, malformed, oversized, or
            // stalled requests answer a clean JSON error, never a panic or
            // a wedged handler.
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let (status, reason) = e.status();
            let _ = write_response(
                stream,
                status,
                reason,
                &[("Content-Type", "application/json")],
                &error_body(e.kind(), &e.to_string()),
            );
            return;
        }
    };
    route(state, stream, &request);
}

fn route(state: &Arc<ServerState>, stream: &mut TcpStream, request: &Request) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let _ = write_response(
                stream,
                200,
                "OK",
                &[("Content-Type", "text/plain")],
                b"ok\n",
            );
        }
        ("GET", "/stats") => {
            let body = serde_json::to_string_pretty(&snapshot(state))
                .unwrap_or_default()
                .into_bytes();
            let _ = write_response(
                stream,
                200,
                "OK",
                &[("Content-Type", "application/json")],
                &body,
            );
        }
        ("POST", "/sweep") => serve_sweep(state, stream, request),
        (_, "/sweep") => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                stream,
                405,
                "Method Not Allowed",
                &[("Content-Type", "application/json"), ("Allow", "POST")],
                &error_body("method-not-allowed", "use POST /sweep"),
            );
        }
        (_, path) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                stream,
                404,
                "Not Found",
                &[("Content-Type", "application/json")],
                &error_body("not-found", &format!("no route for {path}")),
            );
        }
    }
}

fn serve_sweep(state: &Arc<ServerState>, stream: &mut TcpStream, request: &Request) {
    let parsed = match SweepRequest::from_json(&request.body) {
        Ok(p) => p,
        Err(detail) => {
            state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                stream,
                400,
                "Bad Request",
                &[("Content-Type", "application/json")],
                &error_body("bad-request", &detail),
            );
            return;
        }
    };
    // Validate the workload has configurations *before* committing to a
    // 200: an empty enumeration is a client error, not a streamed nothing.
    let app = GpuMatMulApp::new(parse_arch(&parsed.arch).expect("validated"), parsed.products);
    let configs = app.configs(parsed.n);
    if configs.is_empty() {
        state.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
        let _ = write_response(
            stream,
            400,
            "Bad Request",
            &[("Content-Type", "application/json")],
            &error_body(
                "bad-request",
                &format!(
                    "no valid configurations for arch={} n={} products={}",
                    parsed.arch, parsed.n, parsed.products
                ),
            ),
        );
        return;
    }
    state.stats.sweeps.fetch_add(1, Ordering::Relaxed);

    let key = parsed.canonical_key();
    let key_hash = format!("{:016x}", content_hash(&key));

    if parsed.no_cache {
        // Bypass both cache read and write: compute and stream.
        let body = compute_streaming(state, &app, &parsed, Some(stream), "bypass", &key_hash);
        drop(body);
        return;
    }

    match state.cache.lookup_or_begin(&key) {
        Lookup::Hit(body) => stream_cached(stream, &body, "hit", &key_hash),
        Lookup::Miss(pending) => {
            let body = compute_streaming(state, &app, &parsed, Some(stream), "miss", &key_hash);
            let (_shared, disk) = pending.fill(body);
            if let Err(e) = disk {
                // Durability failed but the in-memory entry is published;
                // the daemon keeps serving.
                eprintln!("serve: cache store append failed: {e}");
            }
        }
    }
}

/// Streams a complete cached body. Chunk boundaries need not match the
/// original computation's — the de-chunked body is what is bitwise-exact.
fn stream_cached(stream: &mut TcpStream, body: &[u8], cache_state: &str, key_hash: &str) {
    let headers = [
        ("Content-Type", "application/x-ndjson"),
        ("X-Cache", cache_state),
        ("X-Cache-Key", key_hash),
    ];
    let Ok(mut writer) = ChunkedWriter::start(stream, 200, "OK", &headers) else {
        return;
    };
    // Replay one NDJSON line per HTTP chunk, mirroring the original
    // streaming shape.
    for line in body.split_inclusive(|&b| b == b'\n') {
        if writer.chunk(line).is_err() {
            return;
        }
    }
    let _ = writer.finish();
}

/// One entry of a rendered front.
#[derive(Serialize)]
struct FrontEntry {
    /// Sweep enumeration index of the configuration.
    index: usize,
    /// The paper's configuration naming, e.g. `N=256 BS=16 G=2 R=1`.
    config: String,
    /// Execution time, seconds.
    time: f64,
    /// Dynamic energy, joules.
    energy: f64,
}

/// One streamed incremental-front update (one NDJSON line per completed
/// chunk).
#[derive(Serialize)]
struct FrontUpdate {
    /// 1-based completed-chunk ordinal.
    chunk: usize,
    /// Configurations measured so far.
    measured: usize,
    /// Total configurations in the sweep.
    total: usize,
    /// The incremental Pareto front over everything measured so far.
    front: Vec<FrontEntry>,
}

/// One measured point of the final line.
#[derive(Serialize)]
struct PointOut {
    config: String,
    time: f64,
    energy: f64,
    reps: usize,
    converged: bool,
}

/// The final NDJSON line: the complete sweep.
#[derive(Serialize)]
struct SweepFinal {
    done: bool,
    workload: String,
    total: usize,
    front: Vec<FrontEntry>,
    points: Vec<PointOut>,
}

/// Computes the sweep, streaming updates to `stream` (when given) while
/// accumulating the complete NDJSON body, which is returned for caching.
/// A client that disappears mid-stream stops receiving but the computation
/// finishes — the body still fills the cache for the next client.
fn compute_streaming(
    state: &Arc<ServerState>,
    app: &GpuMatMulApp,
    request: &SweepRequest,
    stream: Option<&mut TcpStream>,
    cache_state: &str,
    key_hash: &str,
) -> Vec<u8> {
    let configs = app.configs(request.n);
    let total = configs.len();
    // The estimate side of the measurement is deterministic; compute it
    // once per configuration with the one-deep ProductProfile memo (the
    // enumeration is BS-major, so consecutive configurations share BS).
    let mut profile: Option<ProductProfile> = None;
    let estimates: Vec<_> = configs
        .iter()
        .map(|cfg| {
            let p = match profile {
                Some(p) if p.bs == cfg.bs => p,
                _ => {
                    let p = app.model().product_profile(request.n, cfg.bs);
                    profile = Some(p);
                    p
                }
            };
            app.model().estimate_from_profile(&p, cfg.g, cfg.r)
        })
        .collect();

    let threads = if state.config.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        state.config.threads
    };
    let exec = SweepExecutor::new(request.seed).with_threads(threads);

    let mut body: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut writer = stream.and_then(|s| {
        let headers = [
            ("Content-Type", "application/x-ndjson"),
            ("X-Cache", cache_state),
            ("X-Cache-Key", key_hash),
        ];
        ChunkedWriter::start(s, 200, "OK", &headers).ok()
    });

    let mut emit = |line: &str, writer: &mut Option<ChunkedWriter<'_, TcpStream>>| {
        body.extend_from_slice(line.as_bytes());
        body.push(b'\n');
        if let Some(w) = writer {
            let mut framed = line.as_bytes().to_vec();
            framed.push(b'\n');
            if w.chunk(&framed).is_err() {
                // Client gone: keep computing for the cache, stop writing.
                *writer = None;
            }
        }
    };

    let mut tracker = FrontTracker::new();
    let mut points: Vec<PointOut> = Vec::with_capacity(total);
    let mut measured = 0usize;
    let indices: Vec<usize> = (0..total).collect();
    for (chunk_ordinal, index_chunk) in indices.chunks(request.chunk).enumerate() {
        // Measure this run of enumeration order across the worker pool.
        // `map_with` hands out seeds positional to the chunk slice, so
        // reseed by the *sweep* index — the same convention the resumable
        // executor uses — keeping every outcome a pure function of
        // `(seed, index)` regardless of chunking or thread count.
        let chunk_points = exec.map_with(
            index_chunk,
            || GpuMatMulApp::default_runner(0),
            |runner, &i, _| {
                runner.reseed(exec.config_seed(i));
                let e = &estimates[i];
                runner.measure(e.time, e.steady_power, e.warmup_power, e.warmup_time)
            },
        );
        for (&i, m) in index_chunk.iter().zip(&chunk_points) {
            let time = m.time.value();
            let energy = m.dynamic_energy.value();
            tracker.insert(BiPoint::new(time, energy), i);
            points.push(PointOut {
                config: configs[i].to_string(),
                time,
                energy,
                reps: m.reps,
                converged: m.converged,
            });
        }
        measured += index_chunk.len();
        let update = FrontUpdate {
            chunk: chunk_ordinal + 1,
            measured,
            total,
            front: render_front(&tracker, &configs),
        };
        let line = serde_json::to_string(&update).expect("serialize front update");
        emit(&line, &mut writer);
    }

    let final_line = SweepFinal {
        done: true,
        workload: format!(
            "gpu-matmul/{}/N={}/P={}",
            request.arch, request.n, request.products
        ),
        total,
        front: render_front(&tracker, &configs),
        points,
    };
    let line = serde_json::to_string(&final_line).expect("serialize final sweep");
    emit(&line, &mut writer);
    if let Some(w) = writer {
        let _ = w.finish();
    }
    body
}

fn render_front(
    tracker: &FrontTracker,
    configs: &[enprop_gpusim::TiledDgemmConfig],
) -> Vec<FrontEntry> {
    tracker
        .front()
        .iter()
        .map(|(p, id)| FrontEntry {
            index: *id,
            config: configs[*id].to_string(),
            time: p.time,
            energy: p.energy,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_validates() {
        let ok = SweepRequest::from_json(
            br#"{"arch":"k40c","n":256,"products":2,"seed":7,"chunk":4}"#,
        )
        .unwrap();
        assert_eq!(ok.arch, "k40c");
        assert_eq!((ok.n, ok.products, ok.seed, ok.chunk), (256, 2, 7, 4));
        assert!(!ok.no_cache);

        // Defaults: seed 42, chunk 32.
        let defaults =
            SweepRequest::from_json(br#"{"arch":"p100","n":512,"products":4}"#).unwrap();
        assert_eq!((defaults.seed, defaults.chunk), (42, 32));

        for (body, expect) in [
            (&br#"{"n":256,"products":2}"#[..], "missing field `arch`"),
            (&br#"{"arch":"h100","n":256,"products":2}"#[..], "unknown arch"),
            (&br#"{"arch":"k40c","products":2}"#[..], "missing field `n`"),
            (&br#"{"arch":"k40c","n":0,"products":2}"#[..], "`n` must be"),
            (&br#"{"arch":"k40c","n":256,"products":0}"#[..], "`products` must be"),
            (&br#"{"arch":"k40c","n":256,"products":2,"chunk":0}"#[..], "`chunk` must be"),
            (&b"not json"[..], "not JSON"),
            (&br#"{"arch":"k40c","n":"big","products":2}"#[..], "`n` must be an integer"),
        ] {
            let err = SweepRequest::from_json(body).unwrap_err();
            assert!(err.contains(expect), "{body:?}: {err}");
        }
    }

    #[test]
    fn canonical_key_excludes_no_cache_and_folds_everything_else() {
        let base = SweepRequest {
            arch: "k40c".into(),
            n: 256,
            products: 2,
            seed: 7,
            chunk: 4,
            no_cache: false,
        };
        let bypass = SweepRequest { no_cache: true, ..base.clone() };
        assert_eq!(base.canonical_key(), bypass.canonical_key());
        for other in [
            SweepRequest { n: 512, ..base.clone() },
            SweepRequest { products: 4, ..base.clone() },
            SweepRequest { seed: 8, ..base.clone() },
            SweepRequest { chunk: 8, ..base.clone() },
            SweepRequest { arch: "p100".into(), ..base.clone() },
        ] {
            assert_ne!(base.canonical_key(), other.canonical_key());
        }
    }

    #[test]
    fn request_json_round_trips() {
        let req = SweepRequest {
            arch: "p100".into(),
            n: 1024,
            products: 8,
            seed: 99,
            chunk: 16,
            no_cache: true,
        };
        let back = SweepRequest::from_json(req.to_json().as_bytes()).unwrap();
        assert_eq!(req, back);
    }
}
