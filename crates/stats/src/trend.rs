//! Trend analysis for (utilization, power) and (utilization, performance)
//! scatters — the analytical tools behind the paper's Fig. 4.
//!
//! Three questions are asked of such a scatter:
//!
//! 1. What are the *trend lines*? (The EP literature reports linear [Fan et
//!    al.] and concave-polynomial [Wong & Annavaram] power curves; Fig. 4
//!    overlays both.) → [`TrendLine`].
//! 2. Does performance *plateau*? (Fig. 4's performance is "linear until the
//!    peak performance of 700 GFLOPs before plateauing".) → [`Plateau`].
//! 3. Is the relation even a *function*? (The paper's key observation:
//!    points with the same average utilization have different dynamic
//!    powers, a *non-functional* relationship.) → [`FunctionalTest`].

use crate::regress::{LinearFit, PolyFit};

/// A fitted trend line: both the linear and the concave-quadratic candidate,
/// with their goodness of fit.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendLine {
    /// Linear trend `y = a + b x` (the green line of Fig. 4).
    pub linear: LinearFit,
    /// Quadratic trend (the blue line of Fig. 4); `None` when the fit is
    /// degenerate.
    pub quadratic: Option<PolyFit>,
}

impl TrendLine {
    /// Fits both candidate trends to the scatter.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        let linear = LinearFit::fit(xs, ys);
        let quadratic = if xs.len() > 3 { PolyFit::fit(xs, ys, 2) } else { None };
        Self { linear, quadratic }
    }

    /// The better-fitting trend's R².
    pub fn best_r_squared(&self) -> f64 {
        let q = self.quadratic.as_ref().map(|p| p.r_squared).unwrap_or(f64::NEG_INFINITY);
        self.linear.r_squared.max(q)
    }
}

/// Detected saturation of `y` as `x` grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plateau {
    /// The x value at which the plateau begins.
    pub onset_x: f64,
    /// The plateau level (mean of y beyond the onset).
    pub level: f64,
}

impl Plateau {
    /// Detects a plateau in a scatter: scanning candidate onsets, finds the
    /// earliest x beyond which y stays within `tolerance` (relative) of the
    /// mean tail level, while the head still rises. Returns `None` when `y`
    /// never flattens (or there are too few points).
    ///
    /// `tolerance` is relative (e.g. 0.1 = ±10% band).
    pub fn detect(xs: &[f64], ys: &[f64], tolerance: f64) -> Option<Plateau> {
        assert_eq!(xs.len(), ys.len(), "length mismatch in Plateau::detect");
        if xs.len() < 6 {
            return None;
        }
        // Sort by x.
        let mut pts: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN x"));
        let n = pts.len();
        // Candidate onsets: require at least 3 tail points and 2 head points.
        for start in 2..=(n - 3) {
            let tail = &pts[start..];
            let level = tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64;
            if level == 0.0 {
                continue;
            }
            let flat = tail.iter().all(|p| ((p.1 - level) / level).abs() <= tolerance);
            // The head must end clearly below the plateau level, otherwise
            // the whole series is flat and "plateau" is meaningless.
            let head_rises = pts[0].1 < level * (1.0 - tolerance);
            if flat && head_rises {
                return Some(Plateau { onset_x: pts[start].0, level });
            }
        }
        None
    }
}

/// Tests whether a scatter `y(x)` is consistent with a *functional*
/// relationship, i.e. whether points with (nearly) the same `x` have
/// (nearly) the same `y`.
///
/// The x axis is partitioned into `bins` equal-width cells; within each cell
/// holding ≥ 2 points, the relative y spread `(max − min)/max` is computed.
/// A relationship is declared non-functional when some cell's spread exceeds
/// `spread_threshold`.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalTest {
    /// Largest within-cell relative y spread observed.
    pub max_within_spread: f64,
    /// The x cell (center) where the largest spread occurs.
    pub worst_x: f64,
    /// The threshold used for the verdict.
    pub spread_threshold: f64,
}

impl FunctionalTest {
    /// Runs the test. Panics on length mismatch; requires ≥ 2 points.
    pub fn run(xs: &[f64], ys: &[f64], bins: usize, spread_threshold: f64) -> Self {
        assert_eq!(xs.len(), ys.len(), "length mismatch in FunctionalTest");
        assert!(xs.len() >= 2 && bins >= 1, "need data and at least one bin");
        let xmin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let xmax = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let width = ((xmax - xmin) / bins as f64).max(f64::MIN_POSITIVE);
        let mut cells: Vec<Vec<f64>> = vec![Vec::new(); bins];
        for (&x, &y) in xs.iter().zip(ys) {
            let idx = (((x - xmin) / width) as usize).min(bins - 1);
            cells[idx].push(y);
        }
        let mut max_within_spread = 0.0;
        let mut worst_x = xmin;
        for (i, cell) in cells.iter().enumerate() {
            if cell.len() < 2 {
                continue;
            }
            let lo = cell.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = cell.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if hi == 0.0 {
                continue;
            }
            let spread = (hi - lo) / hi.abs();
            if spread > max_within_spread {
                max_within_spread = spread;
                worst_x = xmin + (i as f64 + 0.5) * width;
            }
        }
        Self { max_within_spread, worst_x, spread_threshold }
    }

    /// True when the scatter is *not* a function of x: some cell's y values
    /// disagree beyond the threshold.
    pub fn is_non_functional(&self) -> bool {
        self.max_within_spread > self.spread_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trendline_prefers_quadratic_for_concave_data() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 * x * (2.0 - x)).collect();
        let t = TrendLine::fit(&xs, &ys);
        let q = t.quadratic.as_ref().unwrap();
        assert!(q.is_concave_quadratic());
        assert!(q.r_squared > t.linear.r_squared);
        assert!(t.best_r_squared() > 0.999);
    }

    #[test]
    fn plateau_detected_in_saturating_curve() {
        // Linear rise to 700 at x = 0.5, flat after.
        let xs: Vec<f64> = (1..=40).map(|i| i as f64 / 40.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 700.0 * (2.0 * x).min(1.0)).collect();
        let p = Plateau::detect(&xs, &ys, 0.05).unwrap();
        assert!((p.level - 700.0).abs() / 700.0 < 0.05, "level {}", p.level);
        assert!(p.onset_x < 0.65, "onset {}", p.onset_x);
    }

    #[test]
    fn no_plateau_in_strictly_rising_curve() {
        let xs: Vec<f64> = (1..=30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x).collect();
        assert!(Plateau::detect(&xs, &ys, 0.05).is_none());
    }

    #[test]
    fn plateau_requires_enough_points() {
        assert!(Plateau::detect(&[1.0, 2.0], &[1.0, 1.0], 0.1).is_none());
    }

    #[test]
    fn functional_scatter_passes() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 + 5.0 * x).collect();
        let t = FunctionalTest::run(&xs, &ys, 10, 0.2);
        assert!(!t.is_non_functional(), "spread {}", t.max_within_spread);
    }

    #[test]
    fn non_functional_scatter_detected() {
        // Two "branches" at the same x — the Fig. 4 situation.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..25 {
            let x = 0.5 + (i % 5) as f64 * 0.01;
            xs.push(x);
            ys.push(if i % 2 == 0 { 100.0 } else { 160.0 });
        }
        let t = FunctionalTest::run(&xs, &ys, 5, 0.2);
        assert!(t.is_non_functional());
        assert!(t.max_within_spread > 0.3);
    }
}
