//! Property-based tests of the statistical substrate.

use enprop_stats::describe::{quantile, Summary};
use enprop_stats::dist::{ChiSquared, Normal, StudentT};
use enprop_stats::linalg::Matrix;
use enprop_stats::protocol::{measure_until_ci, MeasureConfig};
use enprop_stats::regress::{LinearFit, PolyFit};
use enprop_stats::special::{ln_gamma, reg_beta, reg_gamma_p, reg_gamma_q};
use proptest::prelude::*;

proptest! {
    /// Γ(x+1) = x·Γ(x), in log form.
    #[test]
    fn gamma_recurrence(x in 0.1f64..50.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    /// P(a, x) + Q(a, x) = 1 and both lie in [0, 1].
    #[test]
    fn incomplete_gamma_complement(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let p = reg_gamma_p(a, x);
        let q = reg_gamma_q(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    /// P(a, ·) is monotone non-decreasing.
    #[test]
    fn incomplete_gamma_monotone(a in 0.1f64..20.0, x in 0.0f64..50.0, dx in 0.01f64..5.0) {
        prop_assert!(reg_gamma_p(a, x + dx) >= reg_gamma_p(a, x) - 1e-12);
    }

    /// I_x(a, b) = 1 − I_{1−x}(b, a).
    #[test]
    fn incomplete_beta_symmetry(a in 0.1f64..20.0, b in 0.1f64..20.0, x in 0.0f64..1.0) {
        let lhs = reg_beta(a, b, x);
        let rhs = 1.0 - reg_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        prop_assert!((0.0..=1.0).contains(&lhs));
    }

    /// Normal CDF is monotone and symmetric about the mean.
    #[test]
    fn normal_cdf_shape(mean in -50.0f64..50.0, sd in 0.01f64..20.0, d in 0.0f64..40.0) {
        let n = Normal::new(mean, sd);
        prop_assert!((n.cdf(mean + d) + n.cdf(mean - d) - 1.0).abs() < 1e-10);
        prop_assert!(n.cdf(mean + d) >= n.cdf(mean) - 1e-12);
    }

    /// The t critical value shrinks toward the normal's as df grows.
    #[test]
    fn t_critical_decreasing_in_df(df in 1.0f64..200.0) {
        let t1 = StudentT::new(df).two_sided_critical(0.95);
        let t2 = StudentT::new(df + 10.0).two_sided_critical(0.95);
        prop_assert!(t2 <= t1 + 1e-9);
        prop_assert!(t1 >= 1.9599); // never below the normal limit
    }

    /// χ² quantile inverts the CDF.
    #[test]
    fn chi2_quantile_inverts(df in 0.5f64..60.0, p in 0.01f64..0.99) {
        let c = ChiSquared::new(df);
        let x = c.inv_cdf(p);
        prop_assert!((c.cdf(x) - p).abs() < 1e-6);
    }

    /// LU solve: A·solve(A, b) ≈ b for diagonally dominant A.
    #[test]
    fn lu_solve_roundtrip(
        n in 2usize..8,
        seed in 0u64..500,
    ) {
        let mut a = Matrix::zeros(n, n);
        let mut s = seed;
        let mut unit = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = unit() - 0.5 + if i == j { n as f64 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| unit() * 10.0 - 5.0).collect();
        let x = a.solve(&b).expect("diagonally dominant matrices are invertible");
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    /// A linear fit recovers the generating line exactly from exact data.
    #[test]
    fn linear_fit_recovery(
        intercept in -100.0f64..100.0,
        slope in -100.0f64..100.0,
        n in 3usize..40,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let f = LinearFit::fit(&xs, &ys);
        prop_assert!((f.intercept - intercept).abs() < 1e-6);
        prop_assert!((f.slope - slope).abs() < 1e-6);
    }

    /// Polynomial prediction at training points matches the targets for an
    /// interpolating degree.
    #[test]
    fn poly_interpolates(coefs in prop::collection::vec(-5.0f64..5.0, 1..5)) {
        let degree = coefs.len() - 1;
        let xs: Vec<f64> = (0..=degree + 2).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| coefs.iter().rev().fold(0.0, |acc, &c| acc * x + c))
            .collect();
        let fit = PolyFit::fit(&xs, &ys, degree).expect("well-posed fit");
        for (&x, &y) in xs.iter().zip(&ys) {
            prop_assert!((fit.predict(x) - y).abs() < 1e-5, "x={x}");
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..40), q in 0.0f64..1.0) {
        let s = Summary::of(&xs);
        let v = quantile(&xs, q);
        prop_assert!(v >= s.min - 1e-12 && v <= s.max + 1e-12);
        if q <= 0.9 {
            prop_assert!(quantile(&xs, q + 0.1) >= v - 1e-12);
        }
    }

    /// The protocol's converged mean is within its own confidence interval
    /// of the true constant for bounded noise.
    #[test]
    fn protocol_mean_near_truth(truth in 1.0f64..1000.0, seed in 0u64..200) {
        let mut s = seed;
        let mut unit = move || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z >> 11) as f64 / (1u64 << 53) as f64
        };
        let m = measure_until_ci(MeasureConfig::default(), || {
            truth * (1.0 + 0.01 * (unit() - 0.5))
        });
        prop_assert!(m.converged);
        prop_assert!((m.mean - truth).abs() / truth < 0.02);
    }
}
