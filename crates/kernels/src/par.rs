//! Chunked lock-free work claiming shared by the threaded host kernels.
//!
//! Mirrors the scheduler of `enprop_apps::parallel` (which lives
//! *downstream* of this crate, so importing it here would be circular): a
//! shared atomic cursor hands each worker a run of consecutive work
//! indices per `fetch_add`, amortizing cursor traffic by the chunk length
//! while dynamic claiming still keeps stragglers from idling the other
//! workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A raw pointer that may cross thread boundaries.
///
/// Soundness is the caller's obligation: every use in this crate derives
/// from the pointer only slices over index ranges handed out by the
/// [`claim_chunks`] cursor — which are pairwise disjoint — and the scope
/// join inside `claim_chunks` provides the happens-before edge that
/// publishes the writes.
/// The pointer field stays private behind [`SendPtr::get`] so closures
/// capture the wrapper (whose `Sync` impl applies), not the bare pointer —
/// edition-2021 closures capture individual fields otherwise.
pub(crate) struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: `SendPtr` is a plain address; the disjointness contract above
// makes the concurrent accesses through it race-free.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as for `Send` — workers only ever touch disjoint ranges.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Runs `work(start, end)` over a partition of `0..items` claimed in
/// chunks from a shared atomic cursor by `workers` scoped threads.
///
/// Every index in `0..items` lands in exactly one `(start, end)` call, and
/// no two calls overlap — that disjointness is what lets callers hand each
/// claim a mutable sub-slice through a [`SendPtr`]. With one worker (or an
/// empty range) no threads are spawned and `work` runs on the caller.
///
/// Chunk length: ~4 claims per worker balances cursor amortization against
/// tail imbalance; capped so enormous ranges still rebalance.
pub(crate) fn claim_chunks(items: usize, workers: usize, work: impl Fn(usize, usize) + Sync) {
    if items == 0 {
        return;
    }
    if workers <= 1 {
        work(0, items);
        return;
    }
    let chunk = items.div_ceil(workers * 4).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    let run_worker = || loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= items {
            break;
        }
        work(start, (start + chunk).min(items));
    };
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| run_worker());
        }
    })
    .expect("kernel worker scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn claims_cover_every_index_exactly_once() {
        // Lengths around chunk-size multiples, odd worker counts, and
        // workers > items all partition the range with no gap or overlap.
        for &items in &[0usize, 1, 5, 63, 64, 65, 257, 1000] {
            for &workers in &[1usize, 2, 3, 8, 2000] {
                let hits: Vec<AtomicU32> = (0..items).map(|_| AtomicU32::new(0)).collect();
                claim_chunks(items, workers, |start, end| {
                    assert!(start < end && end <= items);
                    for h in &hits[start..end] {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
                assert!(
                    hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                    "items = {items}, workers = {workers}"
                );
            }
        }
    }
}
