//! The paper's headline numbers over "a wide range of workloads" (§I, §V):
//! per-GPU average/maximum Pareto-front sizes and the maximum
//! (energy-savings, performance-degradation) pair.
//!
//! Paper values: K40c — local fronts avg 4 / max 5 points, up to 18%
//! savings at 7% degradation, singleton global front. P100 — global fronts
//! avg 2 / max 3 points, up to 50% savings at 11% degradation.

use super::{front_of, gpu_cloud};
use enprop_apps::{sizes, SweepExecutor};
use enprop_gpusim::GpuArch;
use serde::{Deserialize, Serialize};

/// One per-size row: `(N, front size, best (savings, degradation), best
/// within an 11% degradation budget)`.
pub type SizeRow = (usize, usize, Option<(f64, f64)>, Option<(f64, f64)>);

/// One GPU's summary over the workload grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeadlineGpu {
    /// GPU name.
    pub gpu: String,
    /// Whether the *global* front was a singleton at every size.
    pub global_always_singleton: bool,
    /// Per-size `(N, front size, best (savings, degradation), best within
    /// an 11% degradation budget)` for the front the paper analyzes on
    /// this GPU (local BS ≤ 30 front for the K40c, global front for the
    /// P100).
    pub per_size: Vec<SizeRow>,
    /// Mean front size.
    pub avg_front_points: f64,
    /// Maximum front size.
    pub max_front_points: usize,
    /// The maximum savings observed, with the degradation it costs.
    pub max_savings: Option<(f64, f64)>,
    /// The paper's exact statistic: the best savings achievable while
    /// tolerating at most 11% performance degradation, with its cost.
    pub best_within_11pct: Option<(f64, f64)>,
}

/// Generates the headline summary for both GPUs over all available cores.
pub fn generate() -> Vec<HeadlineGpu> {
    generate_with(&SweepExecutor::new(0))
}

/// [`generate`] with an explicit executor: the `(GPU, N)` grid — every
/// cloud plus its front analyses — is fanned out over the executor's
/// workers. The model sweep is noise-free, so the seed is irrelevant here;
/// only the thread count matters.
pub fn generate_with(exec: &SweepExecutor) -> Vec<HeadlineGpu> {
    let catalog = GpuArch::catalog();
    let grid: Vec<(GpuArch, usize)> = catalog
        .iter()
        .flat_map(|arch| {
            sizes::headline_sizes().into_iter().map(move |n| (arch.clone(), n))
        })
        .collect();
    let cells: Vec<(bool, SizeRow)> = exec.map(&grid, |(arch, n), _seed| {
        let is_k40 = arch.name.contains("K40c");
        let cloud = gpu_cloud(arch.clone(), *n);
        let global = front_of(&cloud, |_| true);
        let singleton = global.len() == 1;
        let analyzed = if is_k40 { front_of(&cloud, |c| c.bs <= 30) } else { global };
        (
            singleton,
            (
                *n,
                analyzed.len(),
                analyzed.best_pair(),
                analyzed.max_savings_within(0.11).map(|t| (t.savings, t.degradation)),
            ),
        )
    });
    let per_gpu = sizes::headline_sizes().len();
    catalog
        .into_iter()
        .zip(cells.chunks(per_gpu))
        .map(|(arch, rows)| {
            let name = arch.name.clone();
            let global_always_singleton = rows.iter().all(|(singleton, _)| *singleton);
            let per_size: Vec<SizeRow> = rows.iter().map(|(_, row)| *row).collect();
            let sizes_count = per_size.len() as f64;
            let avg_front_points =
                per_size.iter().map(|(_, l, _, _)| *l as f64).sum::<f64>() / sizes_count;
            let max_front_points = per_size.iter().map(|(_, l, _, _)| *l).max().unwrap_or(0);
            let max_savings = per_size
                .iter()
                .filter_map(|(_, _, p, _)| *p)
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN savings"));
            let best_within_11pct = per_size
                .iter()
                .filter_map(|(_, _, _, p)| *p)
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN savings"));
            HeadlineGpu {
                gpu: name,
                global_always_singleton,
                per_size,
                avg_front_points,
                max_front_points,
                max_savings,
                best_within_11pct,
            }
        })
        .collect()
}

/// Renders the headline summary.
pub fn render() -> String {
    let mut out = String::new();
    for g in generate() {
        out.push_str(&format!("--- {} ---\n", g.gpu));
        out.push_str(&format!(
            "global front singleton at every size: {}\n",
            g.global_always_singleton
        ));
        let rows: Vec<Vec<String>> = g
            .per_size
            .iter()
            .map(|(n, len, pair, within)| {
                vec![
                    n.to_string(),
                    len.to_string(),
                    pair.map_or("-".into(), |(s, d)| {
                        format!("{} @ {}", crate::render::pct(s), crate::render::pct(d))
                    }),
                    within.map_or("-".into(), |(s, d)| {
                        format!("{} @ {}", crate::render::pct(s), crate::render::pct(d))
                    }),
                ]
            })
            .collect();
        out.push_str(&crate::render::table(
            &["N", "front pts", "savings @ degradation", "within 11% budget"],
            &rows,
        ));
        out.push_str(&format!(
            "front points: avg {:.1}, max {}; max savings: {}; within 11% budget: {}\n\n",
            g.avg_front_points,
            g.max_front_points,
            g.max_savings.map_or("-".into(), |(s, d)| format!(
                "{} @ {}",
                crate::render::pct(s),
                crate::render::pct(d)
            )),
            g.best_within_11pct.map_or("-".into(), |(s, d)| format!(
                "{} @ {}",
                crate::render::pct(s),
                crate::render::pct(d)
            ))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_summary_matches_paper_shape() {
        let g = &generate()[0];
        assert!(g.gpu.contains("K40c"));
        // Global front singleton at every workload (the paper's claim).
        assert!(g.global_always_singleton);
        // Local fronts hold several points on average.
        assert!(g.avg_front_points >= 2.5, "avg {}", g.avg_front_points);
        assert!(g.max_front_points >= 3, "max {}", g.max_front_points);
        let (savings, degradation) = g.max_savings.unwrap();
        assert!(savings > 0.04 && savings < 0.40, "savings {savings}");
        assert!(degradation < 0.45, "degradation {degradation}");
    }

    #[test]
    fn p100_summary_matches_paper_shape() {
        let g = &generate()[1];
        assert!(g.gpu.contains("P100"));
        // Multi-point global fronts…
        assert!(!g.global_always_singleton);
        assert!(g.avg_front_points >= 2.0, "avg {}", g.avg_front_points);
        assert!((2..=4).contains(&g.max_front_points), "max {}", g.max_front_points);
        // …with large savings for modest degradation (paper: 50% @ 11%).
        let (savings, degradation) = g.max_savings.unwrap();
        assert!(savings > 0.35, "savings {savings}");
        assert!(degradation < 0.25, "degradation {degradation}");
    }

    #[test]
    fn p100_beats_k40c_on_savings() {
        let gs = generate();
        let k = gs[0].max_savings.unwrap().0;
        let p = gs[1].max_savings.unwrap().0;
        assert!(p > k, "P100 {p} vs K40c {k}");
    }
}
