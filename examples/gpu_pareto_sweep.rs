//! The full Figs. 7/8 workflow: sweep the (BS, G, R) space on both GPUs
//! through the *complete measurement methodology* — simulated WattsUp
//! meter, HCLWATTSUP-style dynamic-energy decomposition, and the paper's
//! Student-t repeat-until-confidence protocol — then compute global and
//! local Pareto fronts. The sweep fans out over all cores; the output is
//! bitwise-identical at any thread count.
//!
//! ```text
//! cargo run --release --example gpu_pareto_sweep [N]
//! ```

use enprop::apps::{GpuMatMulApp, SweepExecutor};
use enprop::gpusim::GpuArch;
use enprop::pareto::{BiPoint, TradeoffAnalysis};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10240);
    let exec = SweepExecutor::new(42);
    println!("sweeping with {} worker thread(s)\n", exec.threads());

    for arch in GpuArch::catalog() {
        let name = arch.name.clone();
        let app = GpuMatMulApp::new(arch, 8);
        let points = app.sweep_measured(n, &exec);

        let converged = points.iter().filter(|p| p.converged).count();
        let reps: usize = points.iter().map(|p| p.reps).sum();
        println!("== {name}, N = {n} ==");
        println!(
            "{} configurations measured, {} converged to 95%/2.5% precision, {} total runs",
            points.len(),
            converged,
            reps
        );

        let cloud: Vec<BiPoint> = points.iter().map(|p| p.bi_point()).collect();
        let global = TradeoffAnalysis::of(&cloud);
        println!("global Pareto front: {} point(s)", global.len());
        for t in &global.front {
            let cfg = &points[t.index].config;
            println!(
                "  BS={:<2} G={}  {:.3}s  {:.0}J  (+{:.1}% / −{:.1}%)",
                cfg.bs,
                cfg.g,
                t.point.time,
                t.point.energy,
                t.degradation * 100.0,
                t.savings * 100.0
            );
        }

        // The K40c-style local front: restrict to the BS ≤ 30 region.
        let local_pts: Vec<BiPoint> = points
            .iter()
            .filter(|p| p.config.bs <= 30)
            .map(|p| p.bi_point())
            .collect();
        let local = TradeoffAnalysis::of(&local_pts);
        if let Some((savings, degradation)) = local.best_pair() {
            println!(
                "local front (BS ≤ 30): {} points, up to {:.1}% savings @ {:.1}% degradation",
                local.len(),
                savings * 100.0,
                degradation * 100.0
            );
        } else {
            println!("local front (BS ≤ 30): singleton — no trade-off in this region");
        }
        println!();
    }
}
