//! Fig. 8: P100 PCIe energy nonproportionality and *global* Pareto fronts
//! at N = 10240 and N = 14336.
//!
//! Reproduced claims: the global fronts hold 2–3 points, and allowing
//! ~11% performance degradation buys ~50% dynamic-energy savings.

use super::{front_of, gpu_cloud, CheckpointSummary, GPU_TOTAL_PRODUCTS};
use enprop_apps::checkpoint::{CheckpointError, SweepCheckpoint};
use enprop_apps::point::DataPoint;
use enprop_apps::{sizes, GpuMatMulApp, RetryPolicy, SweepExecutor, SweepFailure};
use enprop_ep::{WeakEpReport, WeakEpTest};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_pareto::TradeoffAnalysis;
use enprop_power::FaultPlan;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One matrix size's panel column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Panel {
    /// Matrix size.
    pub n: usize,
    /// The full configuration cloud (successfully measured points only).
    pub cloud: Vec<DataPoint<TiledDgemmConfig>>,
    /// Configurations that exhausted their retries and are absent from
    /// `cloud` and the front. Always 0 on fault-free paths.
    pub failed_configs: usize,
    /// The full failure records behind `failed_configs` (configuration,
    /// attempts, final error), for `--json` consumers.
    pub failures: Vec<SweepFailure<TiledDgemmConfig>>,
    /// Weak-EP verdict.
    pub weak_ep: WeakEpReport,
    /// Global Pareto front and trade-offs.
    pub global: TradeoffAnalysis,
}

/// Generates both Fig. 8 panels from the noise-free analytic model.
pub fn generate() -> Vec<Fig8Panel> {
    generate_from(|n| (gpu_cloud(GpuArch::p100_pcie(), n), Vec::new()))
}

/// Generates both panels through the full measurement methodology —
/// deterministic under `seed`, fanned out over all available cores.
pub fn generate_measured(seed: u64) -> Vec<Fig8Panel> {
    generate_measured_with(&SweepExecutor::new(seed))
}

/// [`generate_measured`] with an explicit executor (seed + thread count).
/// Output is bitwise-identical for any thread count.
pub fn generate_measured_with(exec: &SweepExecutor) -> Vec<Fig8Panel> {
    let app = GpuMatMulApp::new(GpuArch::p100_pcie(), GPU_TOTAL_PRODUCTS);
    generate_from(move |n| (app.sweep_measured(n, exec), Vec::new()))
}

/// [`generate_measured`] through a misbehaving meter: faults per `plan`,
/// retries per `policy`. Configurations that exhaust their retries are
/// skipped, recorded in [`Fig8Panel::failures`], and the fronts are
/// computed over the surviving cloud. Bitwise-identical at any thread
/// count.
pub fn generate_measured_robust_with(
    exec: &SweepExecutor,
    policy: RetryPolicy,
    plan: FaultPlan,
) -> Vec<Fig8Panel> {
    let app = GpuMatMulApp::new(GpuArch::p100_pcie(), GPU_TOTAL_PRODUCTS);
    generate_from(move |n| {
        let sweep = app.sweep_measured_robust(n, exec, policy, plan);
        (sweep.points, sweep.failures)
    })
}

/// [`generate_measured_robust_with`] behind a durable checkpoint journal:
/// each size's sweep is journaled under `dir/fig8-n{N}`; with `resume`
/// set, a journal left by an interrupted run is replayed instead of
/// re-measured. Resumed panels are bitwise-identical to uninterrupted
/// ones. Returns the panels plus per-size resume accounting.
pub fn generate_measured_robust_checkpointed(
    exec: &SweepExecutor,
    policy: RetryPolicy,
    plan: FaultPlan,
    dir: &Path,
    resume: bool,
) -> Result<(Vec<Fig8Panel>, Vec<CheckpointSummary>), CheckpointError> {
    let app = GpuMatMulApp::new(GpuArch::p100_pcie(), GPU_TOTAL_PRODUCTS);
    let mut summaries = Vec::new();
    let mut clouds = Vec::new();
    for n in sizes::fig8_sizes() {
        let subdir = dir.join(format!("fig8-n{n}"));
        let manifest = app.checkpoint_manifest(n, exec, &policy, &plan);
        let checkpoint = if resume {
            SweepCheckpoint::resume_or_fresh(&subdir, manifest)?
        } else {
            SweepCheckpoint::fresh(&subdir, manifest)?
        };
        let run = app.sweep_measured_robust_resumable(n, exec, policy, plan, checkpoint)?;
        summaries.push(CheckpointSummary {
            n,
            replayed: run.replayed,
            executed: run.executed,
            torn_tail_bytes: run.torn_tail_bytes,
        });
        clouds.push((run.sweep.points, run.sweep.failures));
    }
    let mut clouds = clouds.into_iter();
    let panels = generate_from(move |_| clouds.next().expect("one cloud per size"));
    Ok((panels, summaries))
}

fn generate_from(
    mut sweep: impl FnMut(
        usize,
    )
        -> (Vec<DataPoint<TiledDgemmConfig>>, Vec<SweepFailure<TiledDgemmConfig>>),
) -> Vec<Fig8Panel> {
    sizes::fig8_sizes()
        .into_iter()
        .map(|n| {
            let (cloud, failures) = sweep(n);
            let energies: Vec<_> = cloud.iter().map(|p| p.dynamic_energy).collect();
            Fig8Panel {
                n,
                failed_configs: failures.len(),
                failures,
                weak_ep: WeakEpTest::default().run(&energies),
                global: front_of(&cloud, |_| true),
                cloud,
            }
        })
        .collect()
}

/// Renders the figure's headline rows.
pub fn render() -> String {
    let mut out = String::new();
    for p in generate() {
        out.push_str(&format!(
            "--- P100 PCIe, N = {} ({} configurations) --- weak EP {} (spread {})\n",
            p.n,
            p.cloud.len(),
            if p.weak_ep.holds { "HOLDS" } else { "VIOLATED" },
            crate::render::pct(p.weak_ep.rel_spread)
        ));
        let rows: Vec<Vec<String>> = p
            .global
            .front
            .iter()
            .map(|t| {
                vec![
                    format!("BS={} G={}", p.cloud[t.index].config.bs, p.cloud[t.index].config.g),
                    format!("{:.4}", t.point.time),
                    format!("{:.1}", t.point.energy),
                    crate::render::pct(t.degradation),
                    crate::render::pct(t.savings),
                ]
            })
            .collect();
        out.push_str(&format!("global front ({} points):\n", p.global.len()));
        out.push_str(&crate::render::table(
            &["config", "time[s]", "E_d[J]", "degradation", "savings"],
            &rows,
        ));
        // The figure itself: cloud (·) with the front (#) on top, zoomed
        // to the BS ≥ 21 nonproportionality region like the middle panels.
        let cloud_pts: Vec<(f64, f64)> = p
            .cloud
            .iter()
            .filter(|d| d.config.bs >= 21)
            .map(|d| (d.time.value(), d.dynamic_energy.value()))
            .collect();
        let front_pts: Vec<(f64, f64)> =
            p.global.front.iter().map(|t| (t.point.time, t.point.energy)).collect();
        out.push_str(&crate::scatter::scatter(
            &format!("E_d vs time, BS >= 21 region (N = {})", p.n),
            "time [s]",
            "dynamic energy [J]",
            &[
                crate::scatter::Series { glyph: '.', points: cloud_pts },
                crate::scatter::Series { glyph: '#', points: front_pts },
            ],
            64,
            14,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_fronts_have_two_to_three_points() {
        for p in generate() {
            assert!(
                (2..=4).contains(&p.global.len()),
                "N={}: {} points",
                p.n,
                p.global.len()
            );
        }
    }

    #[test]
    fn large_savings_for_modest_degradation() {
        // The paper's N=10240 headline: ~50% savings for ~11% degradation.
        let p = &generate()[0];
        assert_eq!(p.n, 10240);
        let (savings, degradation) = p.global.best_pair().unwrap();
        assert!(savings > 0.35, "savings {savings}");
        assert!(degradation < 0.20, "degradation {degradation}");
    }

    #[test]
    fn weak_ep_violated_on_both_sizes() {
        for p in generate() {
            assert!(!p.weak_ep.holds, "N={}", p.n);
            assert!(p.weak_ep.rel_spread > 0.3, "N={}", p.n);
        }
    }

    #[test]
    fn fastest_configuration_is_boosted_bs32() {
        for p in generate() {
            let best = &p.cloud[p.global.performance_optimal().index];
            assert_eq!(best.config.bs, 32, "N={}", p.n);
        }
    }
}
