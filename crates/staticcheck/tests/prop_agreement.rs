//! Property-based agreement between the static verifier and the dynamic
//! instrumented runs: over random valid configs, the closed-form event
//! counts must equal flushed `EmuEvents` *bitwise*, and the static
//! verdict must agree with the dynamic sanitizer (clean ⇒ clean;
//! seeded fixtures stay flagged — covered exhaustively in
//! `static_verify.rs`).

use enprop_gpusim::emulator::{EmuDgemm, GlobalMem};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_sanitize::sanitize_dgemm;
use enprop_staticcheck::DgemmStaticModel;
use proptest::prelude::*;
use std::sync::OnceLock;

fn model() -> &'static DgemmStaticModel {
    static MODEL: OnceLock<DgemmStaticModel> = OnceLock::new();
    MODEL.get_or_init(|| DgemmStaticModel::learn().expect("DGEMM family must be summarizable"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Closed-form counts equal flushed events exactly on random
    /// executable configs (probe- and validation-set overlap is fine:
    /// the property is exact equality, not novelty).
    #[test]
    fn counts_agree_bitwise(bs in 2usize..9, t in 2usize..6, g in 1usize..5, r in 1usize..4) {
        let cfg = TiledDgemmConfig { n: bs * t, bs, g, r };
        let zeros = vec![0.0; cfg.n * cfg.n];
        let a = GlobalMem::from_slice(&zeros);
        let b = GlobalMem::from_slice(&zeros);
        let c = GlobalMem::from_slice(&zeros);
        let dynamic = EmuDgemm::new(cfg).run(&a, &b, &c);
        prop_assert_eq!(model().counts(&cfg), dynamic, "{}", cfg);
    }

    /// Static verdicts agree with dynamic findings on the clean family:
    /// the dynamic sanitizer reports nothing, and the static verifier
    /// *proves* nothing can be reported.
    #[test]
    fn clean_family_verdicts_agree(bs in 2usize..9, t in 2usize..6, g in 1usize..5, r in 1usize..4) {
        let cfg = TiledDgemmConfig { n: bs * t, bs, g, r };
        let report = model().verify_config(&cfg);
        prop_assert!(
            report.proven_clean(),
            "{} not proven clean: {:?} / {:?}", cfg, report.findings, report.fallbacks
        );
        let dynamic = sanitize_dgemm(cfg, &GpuArch::k40c());
        prop_assert!(
            dynamic.findings.is_empty(),
            "{} dynamically dirty: {:?}", cfg, dynamic.findings
        );
    }
}
