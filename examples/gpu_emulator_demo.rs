//! Runs the paper's Fig. 5 CUDA kernel on the functional emulator:
//! a grid of thread blocks with shared-memory tiles and `__syncthreads`
//! barriers, executed on real OS threads — then validates the result
//! against a host matmul and cross-checks the hardware-style event counts
//! against the analytic CUPTI model.
//!
//! ```text
//! cargo run --release --example gpu_emulator_demo
//! ```

use enprop::gpusim::cupti::{CuptiCounter, CuptiReport};
use enprop::gpusim::emulator::{EmuDgemm, GlobalMem};
use enprop::gpusim::TiledDgemmConfig;
use enprop::kernels::{dgemm_naive, Matrix};

fn main() {
    let n = 16;
    let (g, r) = (2, 2);
    let a = Matrix::filled(n, n, 1);
    let b = Matrix::filled(n, n, 2);

    println!("emulating dgemm<BS>(C, A, B, N={n}, G={g}, R={r}) for BS in 1,2,4,8:");
    for bs in [1usize, 2, 4, 8] {
        let cfg = TiledDgemmConfig { n, bs, g, r };
        let (da, db, dc) = (
            GlobalMem::from_slice(a.as_slice()),
            GlobalMem::from_slice(b.as_slice()),
            GlobalMem::zeroed(n * n),
        );
        let events = EmuDgemm::new(cfg).run(&da, &db, &dc);

        // Host reference: C = (G·R)·A·B.
        let mut reference = Matrix::square(n);
        dgemm_naive((g * r) as f64, &a, &b, 0.0, &mut reference);
        let result = dc.to_vec();
        let err = reference
            .as_slice()
            .iter()
            .zip(&result)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);

        // Cross-check the emulator's measured events against the analytic
        // CUPTI model (they must agree exactly).
        let analytic = CuptiReport::of(&cfg);
        let flops_ok =
            analytic.get(CuptiCounter::FlopCountDp).true_count == events.flops as u128;
        let barriers_ok =
            analytic.get(CuptiCounter::BarrierSync).true_count == events.barriers as u128;

        println!(
            "  BS={bs}: max|err|={err:.1e}  flops={} shared_loads={} gld={} barriers={}  \
             [analytic match: flops {} barriers {}]",
            events.flops,
            events.shared_loads,
            events.global_loads,
            events.barriers,
            ok(flops_ok),
            ok(barriers_ok),
        );
        assert!(err < 1e-9, "emulated kernel diverged from the reference");
    }

    println!("\nevent additivity (the energy-predictive-model property):");
    let base = run_events(n, 4, 1, 1);
    let compound = run_events(n, 4, 2, 1);
    println!("  G=1 flops = {}", base.flops);
    println!("  G=2 flops = {} (= 2 × G=1: {})", compound.flops, ok(compound.flops == 2 * base.flops));
}

fn run_events(n: usize, bs: usize, g: usize, r: usize) -> enprop::gpusim::emulator::EmuEvents {
    let a = Matrix::filled(n, n, 1);
    let b = Matrix::filled(n, n, 2);
    let (da, db, dc) = (
        GlobalMem::from_slice(a.as_slice()),
        GlobalMem::from_slice(b.as_slice()),
        GlobalMem::zeroed(n * n),
    );
    EmuDgemm::new(TiledDgemmConfig { n, bs, g, r }).run(&da, &db, &dc)
}

fn ok(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}
