//! Parametric static analysis of the shipped tiled-DGEMM family.
//!
//! The full fig7/fig8 sweep lattice spans configs up to N = 14336 —
//! far beyond anything worth executing, even instrumented. This module
//! closes the gap in three steps:
//!
//! 1. **Probe tiny configs.** A structured set of miniature launches
//!    (BS ≤ 5, 2–3 tiles, a handful of products) runs fully
//!    instrumented; each is summarized into verified affine families
//!    ([`crate::affine`]).
//! 2. **Fit the family schedule and coefficients.** The per-config
//!    phase sequence is matched against the DGEMM *role grammar*
//!    (stage / MAC / separated retire / fused retire+stage, the fusing
//!    rule `m ≡ 0 (mod G)` at run boundaries); per-role family
//!    constants gain per-tile-step and per-product drift terms, and
//!    every coefficient — plus the per-launch event counters — is
//!    fitted as an exact integer polynomial over a fixed monomial basis
//!    in `(BS, N)` resp. `(T, BS, G, R)` ([`crate::solve`]). A fit must
//!    reproduce *every* probe exactly or the family falls back.
//! 3. **Instantiate anywhere.** Any lattice config — executable or not
//!    — instantiates the fitted model into four role groups and runs
//!    the analytic checks ([`crate::checks`]) plus closed-form event
//!    counts, in microseconds.
//!
//! Configs whose BS does not divide N are analyzed at the padded
//! geometry `N′ = ⌈N/BS⌉·BS` — the same convention the analytic
//! [`CuptiReport`](enprop_gpusim::CuptiReport) model uses for its
//! `div_ceil` tile counts.

use crate::affine::{summarize_launch, Coeffs, LaunchShape};
use crate::checks::{run_checks, CheckFamily, CheckGroup, CheckSpace};
use crate::probe::probe_grid_dgemm;
use crate::report::{Fallback, FallbackKind, StaticReport};
use crate::solve::{eval_poly, fit_int_poly};
use enprop_gpusim::emulator::{BlockExit, EmuDgemm, EmuEvents, GlobalMem};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_sanitize::report::{AccessKind, MemSpace};
use std::collections::BTreeMap;

/// Per-figure product total (the paper's sweeps fix `G·R = 8`).
pub const TOTAL_PRODUCTS: usize = 8;

/// The four structural roles a DGEMM barrier phase can play.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Role {
    /// Stage one tile pair into shared memory.
    Stage,
    /// Multiply-accumulate over the staged tiles.
    Mac,
    /// Retire one product (read-modify-write `C`).
    RetireSep,
    /// Retire fused with the next product's first stage (run boundary).
    RetireFused,
}

impl Role {
    fn label(self) -> &'static str {
        match self {
            Role::Stage => "stage",
            Role::Mac => "mac",
            Role::RetireSep => "retire",
            Role::RetireFused => "retire+stage",
        }
    }
}

/// Generates the phase schedule for `(tiles, products, group)`:
/// `(role, τ, m)` per phase, mirroring the kernel's run-boundary fusing
/// (verified, not assumed: every probe config's observed phases must
/// match this schedule exactly or learning fails).
pub fn dgemm_schedule(tiles: usize, products: usize, group: usize) -> Vec<(Role, usize, usize)> {
    let mut v = Vec::with_capacity(2 * tiles * products + products);
    let mut fused_next = false;
    for m in 0..products {
        for tau in 0..tiles {
            if !(tau == 0 && fused_next) {
                v.push((Role::Stage, tau, m));
            }
            v.push((Role::Mac, tau, m));
        }
        let last = m + 1 == products;
        fused_next = !last && (m + 1) % group == 0;
        v.push((if fused_next { Role::RetireFused } else { Role::RetireSep }, 0, m));
    }
    v
}

/// Phase index of the retire phase of product `m` (used only to name a
/// representative phase in diagnostics).
fn phase_of_retire(m: usize, tiles: usize, group: usize) -> usize {
    (m + 1) * (2 * tiles + 1) - 1 - m / group
}

/// Monomial basis for address coefficients, in `(bs, n)`.
fn abasis(bs: i128, n: i128) -> Vec<i128> {
    vec![1, bs, n, bs * bs, n * bs]
}
const ABASIS_LEN: usize = 5;

/// Monomial basis for the inner-repeat count, in `bs`.
fn kbasis(bs: i128) -> Vec<i128> {
    vec![1, bs]
}
const KBASIS_LEN: usize = 2;

/// Monomial basis for per-launch event counts, in `(T, bs, g, r)`.
fn cbasis(t: i128, bs: i128, g: i128, r: i128) -> Vec<i128> {
    let t2 = t * t;
    let gr = g * r;
    vec![
        t2,
        t2 * r,
        t2 * gr,
        t2 * t * gr,
        t2 * bs * gr,
        t2 * bs * bs * gr,
        t2 * bs * bs * bs * gr,
        t2 * t * bs * gr,
        t2 * t * bs * bs * gr,
        t2 * t * bs * bs * bs * gr,
    ]
}
const CBASIS_LEN: usize = 10;

/// The tiny structured probe set: every `(BS, T) ∈ {2..5} × {2, 3}`
/// combination appears with varied `(G, R)` (fused and unfused run
/// boundaries, `R ≥ 3` so per-product drift is identifiable). Total
/// probe work is a few hundred thousand scalar accesses — milliseconds.
fn probe_set() -> Vec<TiledDgemmConfig> {
    let specs: [(usize, usize, usize, usize); 20] = [
        (2, 2, 1, 2),
        (2, 3, 2, 2),
        (2, 2, 4, 1),
        (2, 3, 8, 2),
        (2, 2, 2, 3),
        (2, 3, 1, 3),
        (3, 2, 1, 3),
        (3, 3, 2, 2),
        (3, 2, 4, 2),
        (3, 3, 8, 1),
        (3, 3, 2, 3),
        (4, 2, 2, 3),
        (4, 3, 1, 2),
        (4, 2, 8, 2),
        (4, 3, 2, 3),
        (5, 2, 1, 2),
        (5, 3, 2, 2),
        (5, 2, 4, 4),
        (5, 3, 8, 1),
        (5, 2, 2, 3),
    ];
    specs
        .iter()
        .map(|&(bs, t, g, r)| TiledDgemmConfig { n: bs * t, bs, g, r })
        .collect()
}

/// Structural identity of a family slot (everything except the fitted
/// coefficient values).
type SlotShape = (MemSpace, Option<usize>, AccessKind);

/// One family slot observed in one probe config.
#[derive(Debug, Clone)]
struct SlotObs {
    shape: SlotShape,
    k: usize,
    // c0, dk, c1, c2, c3, c4, e1, e2
    coeffs: [i128; 8],
    e1_known: bool,
    e2_known: bool,
}

/// Per-role family slots of one probe config.
type ConfigRoles = BTreeMap<Role, Vec<SlotObs>>;

/// One family slot of the fitted cross-config model.
#[derive(Debug, Clone)]
struct SlotModel {
    shape: SlotShape,
    k: Vec<i128>,        // polynomial over `kbasis`
    coeffs: [Vec<i128>; 8], // polynomials over `abasis`
}

/// The fitted DGEMM family model: everything needed to verify (and
/// count) any `(N, BS, G, R)` config without executing it.
#[derive(Debug, Clone)]
pub struct DgemmStaticModel {
    roles: Vec<(Role, Vec<SlotModel>)>,
    /// flops, shared_loads, shared_stores, global_loads, global_stores,
    /// barriers — polynomials over `cbasis`.
    counts: [Vec<i128>; 6],
    /// The probe configs the model was learned from.
    pub probe_configs: Vec<TiledDgemmConfig>,
}

/// Registered DGEMM buffer names, in probe registration order.
const BUF_NAMES: [&str; 3] = ["A", "B", "C"];

/// Probes one executable config fully instrumented and returns the
/// verified launch summary plus its flushed event counters.
fn probe_config(cfg: TiledDgemmConfig) -> Result<(LaunchShape, EmuEvents), Fallback> {
    let (blocks, events, registry) = probe_grid_dgemm(cfg);
    for b in &blocks {
        if let BlockExit::Diverged { phase, .. } = &b.exit {
            return Err(Fallback::launch(
                FallbackKind::Unsupported,
                format!("probe block ({}, {}) diverged in phase {phase}", b.bx, b.by),
            ));
        }
    }
    let tiles = cfg.n / cfg.bs;
    let shape = summarize_launch(&blocks, (cfg.bs, cfg.bs), (tiles, tiles), &registry)?;
    Ok((shape, events))
}

/// Fits `c0(τ, m) = base + e1·τ + e2·m` exactly over a slot's observed
/// occurrences.
fn fit_occurrences(occ: &[(i128, i128, i128)]) -> Option<(i128, i128, i128, bool, bool)> {
    let mut e1 = None;
    let mut e2 = None;
    for i in 0..occ.len() {
        for j in (i + 1)..occ.len() {
            let (ti, mi, vi) = occ[i];
            let (tj, mj, vj) = occ[j];
            if mi == mj && ti != tj && e1.is_none() {
                let (d, dt) = (vj - vi, tj - ti);
                if d % dt != 0 {
                    return None;
                }
                e1 = Some(d / dt);
            }
            if ti == tj && mi != mj && e2.is_none() {
                let (d, dm) = (vj - vi, mj - mi);
                if d % dm != 0 {
                    return None;
                }
                e2 = Some(d / dm);
            }
        }
    }
    let (e1v, e2v) = (e1.unwrap_or(0), e2.unwrap_or(0));
    let (t0, m0, v0) = occ[0];
    let base = v0 - e1v * t0 - e2v * m0;
    for &(t, m, v) in occ {
        if v != base + e1v * t + e2v * m {
            return None;
        }
    }
    Some((base, e1v, e2v, e1.is_some(), e2.is_some()))
}

/// Matches one probe config's phases against the role grammar and fits
/// per-slot occurrence drift.
fn roles_of_config(cfg: TiledDgemmConfig, shape: &LaunchShape) -> Result<ConfigRoles, Fallback> {
    let tiles = cfg.n / cfg.bs;
    let sched = dgemm_schedule(tiles, cfg.products(), cfg.g);
    if sched.len() != shape.phases.len() {
        return Err(Fallback::launch(
            FallbackKind::NonAffine,
            format!(
                "{cfg}: observed {} phases where the role grammar predicts {}",
                shape.phases.len(),
                sched.len()
            ),
        ));
    }
    let mut occs: BTreeMap<Role, Vec<(usize, usize, usize)>> = BTreeMap::new();
    for (pi, &(role, tau, m)) in sched.iter().enumerate() {
        occs.entry(role).or_default().push((pi, tau, m));
    }
    let mut roles = ConfigRoles::new();
    for (role, phases) in occs {
        let first = &shape.phases[phases[0].0];
        // Structural agreement across occurrences.
        for &(pi, _, _) in &phases {
            let ph = &shape.phases[pi];
            let same = ph.families.len() == first.families.len()
                && ph.families.iter().zip(&first.families).all(|(a, b)| {
                    (a.space, a.buf, a.kind, a.k, a.co.dk, a.co.c1, a.co.c2, a.co.c3, a.co.c4)
                        == (b.space, b.buf, b.kind, b.k, b.co.dk, b.co.c1, b.co.c2, b.co.c3, b.co.c4)
                });
            if !same {
                return Err(Fallback::launch(
                    FallbackKind::NonAffine,
                    format!(
                        "{cfg}: phase {pi} does not match the {} role's family shape",
                        role.label()
                    ),
                ));
            }
        }
        let mut slots = Vec::with_capacity(first.families.len());
        for (si, fam) in first.families.iter().enumerate() {
            let occ: Vec<(i128, i128, i128)> = phases
                .iter()
                .map(|&(pi, tau, m)| {
                    (tau as i128, m as i128, shape.phases[pi].families[si].co.c0)
                })
                .collect();
            let (base, e1, e2, e1_known, e2_known) =
                fit_occurrences(&occ).ok_or_else(|| {
                    Fallback::new(
                        FallbackKind::NonAffine,
                        Some(phases[0].0),
                        Some(fam.space),
                        fam.buf.map(|b| BUF_NAMES[b]),
                        format!(
                            "{cfg}: {} role base address is not affine in (τ, m)",
                            role.label()
                        ),
                    )
                })?;
            slots.push(SlotObs {
                shape: (fam.space, fam.buf, fam.kind),
                k: fam.k,
                coeffs: [base, fam.co.dk, fam.co.c1, fam.co.c2, fam.co.c3, fam.co.c4, e1, e2],
                e1_known,
                e2_known,
            });
        }
        roles.insert(role, slots);
    }
    Ok(roles)
}

impl DgemmStaticModel {
    /// Learns the model from the structured probe set: probe, fit,
    /// verify — any inconsistency is a typed fallback.
    pub fn learn() -> Result<DgemmStaticModel, Fallback> {
        let probes = probe_set();
        let mut per_config: Vec<(TiledDgemmConfig, ConfigRoles, EmuEvents)> = Vec::new();
        for &cfg in &probes {
            let (shape, events) = probe_config(cfg)?;
            let roles = roles_of_config(cfg, &shape)?;
            per_config.push((cfg, roles, events));
        }

        // Cross-config coefficient fit, one role at a time.
        let mut roles = Vec::new();
        for role in [Role::Stage, Role::Mac, Role::RetireSep, Role::RetireFused] {
            let with_role: Vec<&(TiledDgemmConfig, ConfigRoles, EmuEvents)> =
                per_config.iter().filter(|(_, r, _)| r.contains_key(&role)).collect();
            if with_role.is_empty() {
                continue;
            }
            let first_slots = &with_role[0].1[&role];
            for (cfg, r, _) in with_role.iter().skip(1).copied() {
                let slots = &r[&role];
                if slots.len() != first_slots.len()
                    || slots.iter().zip(first_slots).any(|(a, b)| a.shape != b.shape)
                {
                    return Err(Fallback::launch(
                        FallbackKind::NonAffine,
                        format!("{cfg}: {} role family layout varies across configs", role.label()),
                    ));
                }
            }
            let mut slot_models = Vec::with_capacity(first_slots.len());
            for si in 0..first_slots.len() {
                let shape = first_slots[si].shape;
                let buf_name = shape.1.map(|b| BUF_NAMES[b]);
                let fit_err = |what: &str| {
                    Fallback::new(
                        FallbackKind::NonAffine,
                        None,
                        Some(shape.0),
                        buf_name,
                        format!(
                            "{} role: {what} has no exact polynomial fit over the probe set",
                            role.label()
                        ),
                    )
                };
                let k_rows: Vec<(Vec<i128>, i128)> = with_role
                    .iter()
                    .map(|(cfg, r, _)| (kbasis(cfg.bs as i128), r[&role][si].k as i128))
                    .collect();
                let k = fit_int_poly(&k_rows, KBASIS_LEN)
                    .ok_or_else(|| fit_err("inner repeat count"))?;
                let mut coeffs: [Vec<i128>; 8] = Default::default();
                for (ci, slot_coeffs) in coeffs.iter_mut().enumerate() {
                    let rows: Vec<(Vec<i128>, i128)> = with_role
                        .iter()
                        .filter(|(_, r, _)| match ci {
                            6 => r[&role][si].e1_known,
                            7 => r[&role][si].e2_known,
                            _ => true,
                        })
                        .map(|(cfg, r, _)| {
                            (abasis(cfg.bs as i128, cfg.n as i128), r[&role][si].coeffs[ci])
                        })
                        .collect();
                    *slot_coeffs = if rows.is_empty() {
                        // Drift never identifiable ⇒ the dimension is
                        // degenerate in every probe AND every target
                        // where the term could matter would need it —
                        // treat as zero only when no probe disagrees.
                        vec![0; ABASIS_LEN]
                    } else {
                        fit_int_poly(&rows, ABASIS_LEN)
                            .ok_or_else(|| fit_err("address coefficient"))?
                    };
                }
                slot_models.push(SlotModel { shape, k, coeffs });
            }
            roles.push((role, slot_models));
        }

        // Per-launch event-count fit.
        let mut counts: [Vec<i128>; 6] = Default::default();
        let field = |e: &EmuEvents, i: usize| match i {
            0 => e.flops,
            1 => e.shared_loads,
            2 => e.shared_stores,
            3 => e.global_loads,
            4 => e.global_stores,
            _ => e.barriers,
        };
        for (i, c) in counts.iter_mut().enumerate() {
            let rows: Vec<(Vec<i128>, i128)> = per_config
                .iter()
                .map(|(cfg, _, ev)| {
                    let t = (cfg.n / cfg.bs) as i128;
                    (cbasis(t, cfg.bs as i128, cfg.g as i128, cfg.r as i128), field(ev, i) as i128)
                })
                .collect();
            *c = fit_int_poly(&rows, CBASIS_LEN).ok_or_else(|| {
                Fallback::launch(
                    FallbackKind::NonAffine,
                    "event counters have no exact polynomial fit over the probe set".to_string(),
                )
            })?;
        }

        Ok(DgemmStaticModel { roles, counts, probe_configs: probes })
    }

    /// Padded geometry `(n′, tiles)` for a (possibly indivisible) config.
    fn padded(cfg: &TiledDgemmConfig) -> (usize, usize) {
        let tiles = cfg.n.div_ceil(cfg.bs);
        (tiles * cfg.bs, tiles)
    }

    /// Instantiates the model at one config as a [`CheckSpace`] of role
    /// groups (in first-occurrence order).
    fn check_space(&self, cfg: &TiledDgemmConfig) -> CheckSpace {
        let (n_pad, tiles) = Self::padded(cfg);
        let p = cfg.products();
        let (bs, nl) = (cfg.bs as i128, n_pad as i128);
        let shared_len = 2 * cfg.bs * cfg.bs;
        let mut groups = Vec::new();
        for (role, slots) in &self.roles {
            let present = match role {
                Role::Stage | Role::Mac | Role::RetireSep => true,
                Role::RetireFused => cfg.r >= 2,
            };
            if !present {
                continue;
            }
            let phase = match role {
                Role::Stage => 0,
                Role::Mac => 1,
                Role::RetireSep => {
                    let m = if cfg.g == 1 && p > 1 { p - 1 } else { 0 };
                    phase_of_retire(m, tiles, cfg.g)
                }
                Role::RetireFused => phase_of_retire(cfg.g - 1, tiles, cfg.g),
            };
            let (tau, prod) = match role {
                Role::Stage | Role::Mac => (tiles, p),
                Role::RetireSep | Role::RetireFused => (1, p),
            };
            let families = slots
                .iter()
                .map(|s| {
                    let ab = abasis(bs, nl);
                    let c = &s.coeffs;
                    CheckFamily {
                        space: s.shape.0,
                        buffer: s.shape.1.map(|b| BUF_NAMES[b].to_string()),
                        len: if s.shape.0 == MemSpace::Shared {
                            shared_len
                        } else {
                            n_pad * n_pad
                        },
                        kind: s.shape.2,
                        k: eval_poly(&s.k, &kbasis(bs)).max(0) as usize,
                        co: Coeffs {
                            c0: eval_poly(&c[0], &ab),
                            dk: eval_poly(&c[1], &ab),
                            c1: eval_poly(&c[2], &ab),
                            c2: eval_poly(&c[3], &ab),
                            c3: eval_poly(&c[4], &ab),
                            c4: eval_poly(&c[5], &ab),
                            e1: eval_poly(&c[6], &ab),
                            e2: eval_poly(&c[7], &ab),
                        },
                    }
                })
                .collect();
            groups.push(CheckGroup {
                phase,
                label: format!("{} phases", role.label()),
                tau,
                prod,
                families,
            });
        }
        // First-occurrence order drives shared coverage: stage, mac,
        // then retires ordered by their representative phase.
        groups.sort_by_key(|g| g.phase);
        CheckSpace {
            groups,
            block: (cfg.bs, cfg.bs),
            grid: (tiles, tiles),
            shared_len,
        }
    }

    /// Statically verifies one config: race / OOB / barrier safety from
    /// the fitted summaries alone. No kernel code runs.
    pub fn verify_config(&self, cfg: &TiledDgemmConfig) -> StaticReport {
        let cs = self.check_space(cfg);
        let (findings, fallbacks) = run_checks(&cs);
        let mut report = StaticReport::new(format!("{cfg}"));
        report.findings = findings;
        report.fallbacks = fallbacks;
        report
    }

    /// Closed-form event counts for one config (padded geometry when
    /// `BS ∤ N`) — the analytic counterpart of a flushed [`EmuEvents`].
    pub fn counts(&self, cfg: &TiledDgemmConfig) -> EmuEvents {
        let (_, tiles) = Self::padded(cfg);
        let basis = cbasis(tiles as i128, cfg.bs as i128, cfg.g as i128, cfg.r as i128);
        let at = |i: usize| {
            let v = eval_poly(&self.counts[i], &basis);
            debug_assert!(v >= 0);
            v as u64
        };
        EmuEvents {
            flops: at(0),
            shared_loads: at(1),
            shared_stores: at(2),
            global_loads: at(3),
            global_stores: at(4),
            barriers: at(5),
        }
    }
}

/// Cross-validation configs: executable (BS | N), disjoint from the
/// probe set, spanning BS 3..32 including both fused and unfused run
/// boundaries.
pub fn validation_set() -> Vec<TiledDgemmConfig> {
    [
        (24, 3, 2, 1),
        (32, 4, 2, 4),
        (32, 8, 8, 1),
        (36, 6, 1, 2),
        (40, 5, 8, 1),
        (48, 6, 4, 2),
        (48, 12, 2, 2),
        (64, 8, 4, 2),
        (64, 16, 2, 4),
        (64, 32, 1, 8),
    ]
    .iter()
    .map(|&(n, bs, g, r)| TiledDgemmConfig { n, bs, g, r })
    .collect()
}

/// Runs one validation config and compares flushed events against the
/// model's closed forms. Returns the `(static, dynamic)` pair.
pub fn validate_counts(model: &DgemmStaticModel, cfg: &TiledDgemmConfig) -> (EmuEvents, EmuEvents) {
    let zeros = vec![0.0; cfg.n * cfg.n];
    let a = GlobalMem::from_slice(&zeros);
    let b = GlobalMem::from_slice(&zeros);
    let c = GlobalMem::from_slice(&zeros);
    let dynamic = EmuDgemm::new(*cfg).run(&a, &b, &c);
    (model.counts(cfg), dynamic)
}

/// One lattice sweep's outcome.
#[derive(Debug, Clone)]
pub struct LatticeSweep {
    /// `"K40c n=8704"`-style label.
    pub label: String,
    /// Configs analyzed.
    pub configs: usize,
    /// Total findings across the sweep.
    pub findings: usize,
    /// Total fallbacks across the sweep.
    pub fallbacks: usize,
    /// Reports of configs that were not proven clean.
    pub dirty: Vec<StaticReport>,
}

/// The fig7/fig8 lattice specs: `(label, arch, n)`.
pub fn fig_lattice_specs() -> Vec<(String, GpuArch, usize)> {
    let mut v = Vec::new();
    for n in [8704usize, 10240] {
        v.push((format!("K40c n={n}"), GpuArch::k40c(), n));
    }
    for n in [10240usize, 14336] {
        v.push((format!("P100 n={n}"), GpuArch::p100_pcie(), n));
    }
    v
}

/// Analytically sweeps every fig7/fig8 lattice config through the
/// fitted model.
pub fn verify_fig_lattices(model: &DgemmStaticModel) -> Vec<LatticeSweep> {
    fig_lattice_specs()
        .into_iter()
        .map(|(label, arch, n)| {
            let configs = TiledDgemmConfig::enumerate(&arch, n, TOTAL_PRODUCTS);
            let mut sweep = LatticeSweep {
                label,
                configs: configs.len(),
                findings: 0,
                fallbacks: 0,
                dirty: Vec::new(),
            };
            for cfg in &configs {
                let report = model.verify_config(cfg);
                sweep.findings += report.findings.len();
                sweep.fallbacks += report.fallbacks.len();
                if !report.proven_clean() {
                    sweep.dirty.push(report);
                }
            }
            sweep
        })
        .collect()
}
