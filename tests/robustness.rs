//! Failure-injection and robustness tests of the measurement methodology:
//! what happens when the meter is miscalibrated, noisy beyond spec, or the
//! protocol budget is squeezed.

use enprop::apps::point::DataPoint;
use enprop::apps::GpuMatMulApp;
use enprop::ep::WeakEpTest;
use enprop::gpusim::{GpuArch, TiledDgemmConfig};
use enprop::pareto::{BiPoint, TradeoffAnalysis};
use enprop::power::{ConstantLoad, EnergySession, MeterSpec, SimulatedWattsUp};
use enprop::stats::protocol::MeasureConfig;
use enprop::units::{Joules, Seconds, Watts};

/// Sweeps the P100 with a meter whose gain is off by `gain`.
fn sweep_with_gain(gain: f64, seed: u64) -> Vec<DataPoint<TiledDgemmConfig>> {
    // Rebuild the runner manually so the gain error can be injected.
    let spec = MeterSpec { gain, ..MeterSpec::default() };
    let meter = SimulatedWattsUp::new(spec, Watts(110.0), seed);
    let mut session = EnergySession::with_baseline_window(meter, Seconds(120.0));
    let app = GpuMatMulApp::new(GpuArch::p100_pcie(), 4);
    app.configs(4096)
        .into_iter()
        .map(|cfg| {
            let e = app.estimate(&cfg);
            let load = ConstantLoad::new(
                e.steady_power + e.warmup_power * (e.warmup_time.ratio(e.time)),
                e.time,
            );
            let r = session.measure(&load);
            DataPoint {
                config: cfg,
                time: e.time,
                dynamic_energy: r.dynamic,
                reps: 1,
                converged: true,
            }
        })
        .collect()
}

/// A 5% multiplicative calibration error rescales every reading, so the
/// *relative* conclusions — weak-EP violation, front membership, savings
/// percentages — survive.
#[test]
fn verdicts_robust_to_meter_gain_error() {
    let clean = sweep_with_gain(1.0, 9);
    let biased = sweep_with_gain(1.05, 9);

    let front = |pts: &[DataPoint<TiledDgemmConfig>]| {
        let cloud: Vec<BiPoint> = pts.iter().map(|p| p.bi_point()).collect();
        TradeoffAnalysis::of(&cloud)
    };
    let f_clean = front(&clean);
    let f_biased = front(&biased);

    // Same number of front points, same savings within noise.
    assert_eq!(f_clean.len(), f_biased.len());
    if let (Some((s1, d1)), Some((s2, d2))) = (f_clean.best_pair(), f_biased.best_pair()) {
        assert!((s1 - s2).abs() < 0.05, "savings {s1} vs {s2}");
        assert!((d1 - d2).abs() < 0.02, "degradation {d1} vs {d2}");
    }

    // Weak EP stays violated either way.
    for pts in [&clean, &biased] {
        let energies: Vec<Joules> = pts.iter().map(|p| p.dynamic_energy).collect();
        assert!(!WeakEpTest::default().run(&energies).holds);
    }
}

/// An absolute-energy statement, by contrast, *is* biased by the gain
/// error — the reason the paper leans on relative savings.
#[test]
fn absolute_energies_are_biased_by_gain_error() {
    let clean = sweep_with_gain(1.0, 9);
    let biased = sweep_with_gain(1.05, 9);
    let total =
        |pts: &[DataPoint<TiledDgemmConfig>]| pts.iter().map(|p| p.dynamic_energy.value()).sum::<f64>();
    let ratio = total(&biased) / total(&clean);
    // The node draws idle + app; a 1.05 gain on the total minus an also-
    // mismeasured baseline inflates dynamic energy noticeably.
    assert!(ratio > 1.03, "ratio {ratio}");
}

/// Squeezing the protocol's repetition budget degrades gracefully: the
/// measurement is flagged as non-converged instead of silently wrong.
#[test]
fn protocol_budget_squeeze_flags_nonconvergence() {
    // A very noisy meter with a tiny repetition budget.
    let spec = MeterSpec { noise_sd_w: 40.0, ..MeterSpec::default() };
    let meter = SimulatedWattsUp::new(spec, Watts(110.0), 4);
    let mut session = EnergySession::with_baseline_window(meter, Seconds(60.0));
    let cfg = MeasureConfig { max_reps: 3, ..MeasureConfig::default() };
    let m = enprop::stats::protocol::measure_until_ci(cfg, || {
        session.measure(&ConstantLoad::new(Watts(20.0), Seconds(5.0))).dynamic.value()
    });
    assert!(!m.converged, "should not converge under a 3-rep budget: {m:?}");
    assert_eq!(m.reps, 3);
}
