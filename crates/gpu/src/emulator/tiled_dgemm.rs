//! The paper's Fig. 5 kernel, executed functionally on the emulator.
//!
//! `dgemmX(C, A, B, N, G, R)` computes `G × R` matrix products
//! `C += A × B` of two dense `N × N` matrices, with per-block
//! shared-memory dimension `BS = X`. Each thread block computes one
//! `BS × BS` sub-matrix `Csub`; each thread one element of it, accumulating
//! tile sub-products staged through shared memory between `__syncthreads`
//! barriers.

use super::exec::{launch, Dim2, ThreadCtx};
use super::mem::{EmuEvents, EventCounters, GlobalMem};
use crate::model::TiledDgemmConfig;

/// The emulated application: a [`TiledDgemmConfig`] run as a real kernel.
///
/// The emulator requires `BS | N` (the CUDA sample the paper builds on
/// assumes full tiles); the analytic model handles padded tiles instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmuDgemm {
    cfg: TiledDgemmConfig,
}

impl EmuDgemm {
    /// Wraps a configuration. Panics unless `BS | N` and the group size is
    /// within the Fig. 5 family limits.
    pub fn new(cfg: TiledDgemmConfig) -> Self {
        assert!(cfg.bs >= 1 && cfg.bs <= 32, "BS out of range: {}", cfg.bs);
        assert!(cfg.n.is_multiple_of(cfg.bs), "emulator requires BS | N ({} % {})", cfg.n, cfg.bs);
        assert!(cfg.g >= 1 && cfg.g <= 8, "G out of range: {}", cfg.g);
        assert!(cfg.r >= 1, "R must be positive");
        Self { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> TiledDgemmConfig {
        self.cfg
    }

    /// Launches the kernel: `C += (G·R) · A·B`, element count `N²` each.
    /// Returns the event counts of the launch.
    pub fn run(&self, a: &GlobalMem, b: &GlobalMem, c: &GlobalMem) -> EmuEvents {
        let TiledDgemmConfig { n, bs, g, r } = self.cfg;
        assert_eq!(a.len(), n * n, "A size mismatch");
        assert_eq!(b.len(), n * n, "B size mismatch");
        assert_eq!(c.len(), n * n, "C size mismatch");

        let tiles = n / bs;
        let events = EventCounters::new();
        launch(
            Dim2::new(tiles, tiles),
            Dim2::new(bs, bs),
            2 * bs * bs,
            &events,
            |ctx: &ThreadCtx<'_>| {
                // `for (int run = 0; run < R; run++) dgemmG{G}(...)`.
                for _run in 0..r {
                    for grp in 0..g {
                        matrix_product(ctx, a, b, c, n, bs);
                        // Inter-product separator within a group body.
                        if grp + 1 < g {
                            ctx.sync_threads();
                        }
                    }
                }
            },
        );
        events.snapshot()
    }
}

/// One device matrix product — the body of `dgemmG1` (Fig. 5 lines 1–21).
fn matrix_product(
    ctx: &ThreadCtx<'_>,
    a: &GlobalMem,
    b: &GlobalMem,
    c: &GlobalMem,
    n: usize,
    bs: usize,
) {
    let (bx, by, tx, ty) = (ctx.bx, ctx.by, ctx.tx, ctx.ty);
    // Shared tiles: As at [0, bs²), Bs at [bs², 2bs²).
    let as_idx = |row: usize, col: usize| row * bs + col;
    let bs_idx = |row: usize, col: usize| bs * bs + row * bs + col;

    let a_begin = n * bs * by;
    let a_end = a_begin + n - 1;
    let a_step = bs;
    let b_step = bs * n;
    let mut csub = 0.0;

    let mut ai = a_begin;
    let mut bi = bs * bx;
    while ai <= a_end {
        // Stage one A tile and one B tile into shared memory.
        ctx.shared_store(as_idx(ty, tx), ctx.global_load(a, ai + n * ty + tx));
        ctx.shared_store(bs_idx(ty, tx), ctx.global_load(b, bi + n * ty + tx));
        ctx.sync_threads();
        // `#pragma unroll` inner product over the tile.
        for k in 0..bs {
            csub += ctx.shared_load(as_idx(ty, k)) * ctx.shared_load(bs_idx(k, tx));
            ctx.count_flops(2);
        }
        ctx.sync_threads();
        ai += a_step;
        bi += b_step;
    }
    // `C[...] += Csub` — a read-modify-write of one element.
    let ci = n * bs * by + bs * bx + n * ty + tx;
    let prev = ctx.global_load(c, ci);
    ctx.global_store(c, ci, prev + csub);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cupti::{CuptiCounter, CuptiReport};

    /// Deterministic host-side fill (SplitMix64, the kernels crate's
    /// pattern) without a cross-crate dependency.
    fn filled(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    /// Host reference: `C + k·A·B`.
    fn reference(a: &[f64], b: &[f64], c0: &[f64], n: usize, k: f64) -> Vec<f64> {
        let mut out = c0.to_vec();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    acc += a[i * n + l] * b[l * n + j];
                }
                out[i * n + j] += k * acc;
            }
        }
        out
    }

    fn max_err(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    fn run_case(n: usize, bs: usize, g: usize, r: usize) -> (Vec<f64>, Vec<f64>, EmuEvents) {
        let av = filled(n * n, 1);
        let bv = filled(n * n, 2);
        let cv = filled(n * n, 3);
        let (a, b, c) =
            (GlobalMem::from_slice(&av), GlobalMem::from_slice(&bv), GlobalMem::from_slice(&cv));
        let emu = EmuDgemm::new(TiledDgemmConfig { n, bs, g, r });
        let events = emu.run(&a, &b, &c);
        let expect = reference(&av, &bv, &cv, n, (g * r) as f64);
        (c.to_vec(), expect, events)
    }

    #[test]
    fn kernel_computes_correct_product_across_bs() {
        for &(n, bs) in &[(8usize, 1usize), (8, 2), (8, 4), (8, 8), (12, 3), (16, 4)] {
            let (got, expect, _) = run_case(n, bs, 1, 1);
            assert!(max_err(&got, &expect) < 1e-10, "n={n} bs={bs}");
        }
    }

    #[test]
    fn g_and_r_accumulate_products() {
        for &(g, r) in &[(1usize, 3usize), (3, 1), (2, 2)] {
            let (got, expect, _) = run_case(8, 4, g, r);
            assert!(max_err(&got, &expect) < 1e-9, "g={g} r={r}");
        }
    }

    #[test]
    fn emulator_events_match_analytic_cupti_model_exactly() {
        for &(n, bs, g, r) in &[(8usize, 4usize, 1usize, 1usize), (8, 2, 2, 2), (12, 4, 3, 1)] {
            let (_, _, ev) = run_case(n, bs, g, r);
            let cfg = TiledDgemmConfig { n, bs, g, r };
            let rep = CuptiReport::of(&cfg);
            let check = |counter, got: u64| {
                assert_eq!(
                    rep.get(counter).true_count,
                    got as u128,
                    "{:?} for n={n} bs={bs} g={g} r={r}",
                    counter
                );
            };
            check(CuptiCounter::FlopCountDp, ev.flops);
            check(CuptiCounter::SharedLoad, ev.shared_loads);
            check(CuptiCounter::SharedStore, ev.shared_stores);
            check(CuptiCounter::GldTransactions, ev.global_loads);
            check(CuptiCounter::GstTransactions, ev.global_stores);
            check(CuptiCounter::BarrierSync, ev.barriers);
        }
    }

    #[test]
    fn event_counts_are_additive_in_workload() {
        // The additivity property, observed on real executions: a compound
        // application (G=2) counts the sum of its two base runs (G=1),
        // modulo the inter-group barrier.
        let (_, _, base) = run_case(8, 4, 1, 1);
        let (_, _, compound) = run_case(8, 4, 2, 1);
        let doubled = base.plus(base);
        assert_eq!(compound.flops, doubled.flops);
        assert_eq!(compound.shared_loads, doubled.shared_loads);
        assert_eq!(compound.global_loads, doubled.global_loads);
        assert_eq!(compound.global_stores, doubled.global_stores);
        // Barriers: one extra per block for the group separator.
        assert_eq!(compound.barriers, doubled.barriers + (8 / 4) * (8 / 4));
    }

    #[test]
    #[should_panic(expected = "BS | N")]
    fn rejects_ragged_tiles() {
        EmuDgemm::new(TiledDgemmConfig { n: 10, bs: 4, g: 1, r: 1 });
    }
}
