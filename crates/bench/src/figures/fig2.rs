//! Fig. 2: the P100 weak-EP illustration at N = 18432 — the full
//! configuration cloud, its two regions, and the Pareto fronts.
//!
//! The paper's four panels: (a) all configurations; (b) the BS ≤ 20 region
//! where optimizing performance also optimizes energy; (c) the BS ≥ 21
//! region with a real trade-off; (d) its Pareto front. Quoted numbers: a
//! 2.5% performance degradation gives 12.5% energy savings on the global
//! front, and the BS ≤ 30 sub-region offers ~24% savings for ~8%
//! degradation.

use super::{front_of, gpu_cloud};
use enprop_apps::point::DataPoint;
use enprop_apps::sizes::FIG2_N;
use enprop_ep::{WeakEpReport, WeakEpTest};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_pareto::TradeoffAnalysis;
use enprop_stats::corr::pearson;
use serde::{Deserialize, Serialize};

/// The generated Fig. 2 data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Matrix size (18432).
    pub n: usize,
    /// The full (BS, G, R) cloud.
    pub cloud: Vec<DataPoint<TiledDgemmConfig>>,
    /// Weak-EP verdict over the cloud.
    pub weak_ep: WeakEpReport,
    /// Pearson correlation of time and energy in the BS ≤ 20 region — the
    /// "optimizing for performance optimizes for dynamic energy" region.
    pub low_bs_time_energy_corr: f64,
    /// Global Pareto front and trade-offs (panel d).
    pub global: TradeoffAnalysis,
    /// Front of the BS 21..=32 trade-off region (panel c).
    pub high_bs_region: TradeoffAnalysis,
    /// Front of the BS ≤ 30 sub-region the paper quotes 24%/8% for.
    pub bs_le_30: TradeoffAnalysis,
}

/// Generates Fig. 2.
pub fn generate() -> Fig2 {
    let cloud = gpu_cloud(GpuArch::p100_pcie(), FIG2_N);
    let energies: Vec<_> = cloud.iter().map(|p| p.dynamic_energy).collect();
    let weak_ep = WeakEpTest::default().run(&energies);

    let low: Vec<&DataPoint<TiledDgemmConfig>> =
        cloud.iter().filter(|p| p.config.bs <= 20).collect();
    let times: Vec<f64> = low.iter().map(|p| p.time.value()).collect();
    let es: Vec<f64> = low.iter().map(|p| p.dynamic_energy.value()).collect();
    let low_bs_time_energy_corr = pearson(&times, &es);

    Fig2 {
        n: FIG2_N,
        global: front_of(&cloud, |_| true),
        high_bs_region: front_of(&cloud, |c| c.bs >= 21),
        bs_le_30: front_of(&cloud, |c| c.bs <= 30),
        weak_ep,
        low_bs_time_energy_corr,
        cloud,
    }
}

/// Renders the figure's headline rows as text.
pub fn render() -> String {
    let f = generate();
    let mut out = format!(
        "P100 PCIe, N = {} ({} configurations)\nweak EP {} (spread {:.1}%)\n\
         BS<=20 region: corr(time, energy) = {:.3} (monotone => perf-opt is energy-opt)\n",
        f.n,
        f.cloud.len(),
        if f.weak_ep.holds { "HOLDS" } else { "VIOLATED" },
        f.weak_ep.rel_spread * 100.0,
        f.low_bs_time_energy_corr,
    );
    let front_rows = |t: &TradeoffAnalysis| -> Vec<Vec<String>> {
        t.front
            .iter()
            .map(|p| {
                vec![
                    format!("{:.4}", p.point.time),
                    format!("{:.1}", p.point.energy),
                    crate::render::pct(p.degradation),
                    crate::render::pct(p.savings),
                ]
            })
            .collect()
    };
    out.push_str(&format!("global Pareto front ({} points):\n", f.global.len()));
    out.push_str(&crate::render::table(
        &["time[s]", "E_d[J]", "degradation", "savings"],
        &front_rows(&f.global),
    ));
    out.push_str(&format!("BS<=30 region front ({} points):\n", f.bs_le_30.len()));
    out.push_str(&crate::render::table(
        &["time[s]", "E_d[J]", "degradation", "savings"],
        &front_rows(&f.bs_le_30),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_ep_is_violated() {
        let f = generate();
        assert!(!f.weak_ep.holds);
        assert!(f.weak_ep.rel_spread > 0.3, "{}", f.weak_ep.rel_spread);
    }

    #[test]
    fn low_bs_region_is_monotone() {
        // In BS ≤ 20 performance and energy improve together.
        let f = generate();
        assert!(f.low_bs_time_energy_corr > 0.9, "{}", f.low_bs_time_energy_corr);
    }

    #[test]
    fn global_front_offers_savings() {
        let f = generate();
        assert!(f.global.len() >= 2, "front size {}", f.global.len());
        let (savings, degradation) = f.global.best_pair().unwrap();
        assert!(savings > 0.10, "savings {savings}");
        assert!(degradation < 0.25, "degradation {degradation}");
    }

    #[test]
    fn fastest_point_is_bs32() {
        let f = generate();
        let idx = f.global.performance_optimal().index;
        // The front indexes the full cloud in input order.
        assert_eq!(f.cloud[idx].config.bs, 32);
    }
}
