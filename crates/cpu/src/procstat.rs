//! `/proc/stat` emulation.
//!
//! The paper measures average CPU utilization through `/proc/stat`: "The
//! first 'cpu' line aggregates the numbers in all of the other 'cpuN'
//! lines, one line per core. Since the multicore CPU processor has 48
//! logical cores, there are 49 lines in total." This module renders and
//! parses that exact format and computes per-core utilization between two
//! snapshots, the way monitoring tools do.

use enprop_units::{Seconds, Utilization};

/// Jiffy counters of one `cpu`/`cpuN` line (the canonical eight fields).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTimes {
    /// Normal-priority user time.
    pub user: u64,
    /// Niced user time.
    pub nice: u64,
    /// Kernel time.
    pub system: u64,
    /// Idle time.
    pub idle: u64,
    /// I/O-wait time.
    pub iowait: u64,
    /// Hardware-interrupt time.
    pub irq: u64,
    /// Software-interrupt time.
    pub softirq: u64,
    /// Involuntary-wait (virtualization) time.
    pub steal: u64,
}

impl CpuTimes {
    /// Total jiffies across all states.
    pub fn total(&self) -> u64 {
        self.user + self.nice + self.system + self.idle + self.iowait + self.irq + self.softirq
            + self.steal
    }

    /// Busy jiffies (everything but idle and iowait).
    pub fn busy(&self) -> u64 {
        self.total() - self.idle - self.iowait
    }

    /// Field-wise sum.
    pub fn plus(&self, o: &CpuTimes) -> CpuTimes {
        CpuTimes {
            user: self.user + o.user,
            nice: self.nice + o.nice,
            system: self.system + o.system,
            idle: self.idle + o.idle,
            iowait: self.iowait + o.iowait,
            irq: self.irq + o.irq,
            softirq: self.softirq + o.softirq,
            steal: self.steal + o.steal,
        }
    }
}

/// A `/proc/stat` snapshot: one line per logical CPU.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProcStat {
    per_cpu: Vec<CpuTimes>,
}

/// Jiffies per second (`USER_HZ`).
pub const USER_HZ: f64 = 100.0;

impl ProcStat {
    /// An all-zero snapshot for `cpus` logical CPUs.
    pub fn zeroed(cpus: usize) -> Self {
        Self { per_cpu: vec![CpuTimes::default(); cpus] }
    }

    /// Builds a snapshot from per-CPU counters.
    pub fn from_cpus(per_cpu: Vec<CpuTimes>) -> Self {
        Self { per_cpu }
    }

    /// Number of logical CPUs.
    pub fn cpus(&self) -> usize {
        self.per_cpu.len()
    }

    /// Per-CPU counters.
    pub fn per_cpu(&self) -> &[CpuTimes] {
        &self.per_cpu
    }

    /// The aggregate `cpu` line: field-wise sum of all `cpuN` lines.
    pub fn aggregate(&self) -> CpuTimes {
        self.per_cpu.iter().fold(CpuTimes::default(), |acc, c| acc.plus(c))
    }

    /// Advances one CPU's counters by `busy`/`idle` seconds (converted to
    /// jiffies; busy time lands in `user`).
    pub fn advance(&mut self, cpu: usize, busy: Seconds, idle: Seconds) {
        assert!(busy.value() >= 0.0 && idle.value() >= 0.0, "times must be non-negative");
        let t = &mut self.per_cpu[cpu];
        t.user += (busy.value() * USER_HZ).round() as u64;
        t.idle += (idle.value() * USER_HZ).round() as u64;
    }

    /// Renders the `/proc/stat` text: the aggregate `cpu` line followed by
    /// one `cpuN` line per logical CPU (49 lines for 48 CPUs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let line = |name: &str, t: &CpuTimes| {
            format!(
                "{} {} {} {} {} {} {} {} {}\n",
                name, t.user, t.nice, t.system, t.idle, t.iowait, t.irq, t.softirq, t.steal
            )
        };
        out.push_str(&line("cpu", &self.aggregate()));
        for (i, t) in self.per_cpu.iter().enumerate() {
            out.push_str(&line(&format!("cpu{i}"), t));
        }
        out
    }

    /// Parses `/proc/stat` text (the `cpu`/`cpuN` lines; other lines such
    /// as `intr`/`ctxt` are ignored). Returns `None` on malformed input or
    /// when the aggregate line disagrees with the per-CPU sum.
    pub fn parse(text: &str) -> Option<Self> {
        let mut aggregate: Option<CpuTimes> = None;
        let mut per_cpu = Vec::new();
        for line in text.lines() {
            let mut it = line.split_whitespace();
            let tag = it.next()?;
            if !tag.starts_with("cpu") {
                continue;
            }
            let mut nums = [0u64; 8];
            for slot in nums.iter_mut() {
                *slot = it.next().and_then(|s| s.parse().ok())?;
            }
            let t = CpuTimes {
                user: nums[0],
                nice: nums[1],
                system: nums[2],
                idle: nums[3],
                iowait: nums[4],
                irq: nums[5],
                softirq: nums[6],
                steal: nums[7],
            };
            if tag == "cpu" {
                aggregate = Some(t);
            } else {
                let idx: usize = tag[3..].parse().ok()?;
                if idx != per_cpu.len() {
                    return None; // out-of-order cpuN lines
                }
                per_cpu.push(t);
            }
        }
        let stat = Self { per_cpu };
        match aggregate {
            Some(agg) if agg == stat.aggregate() => Some(stat),
            _ => None,
        }
    }

    /// Per-CPU utilization between two snapshots:
    /// `Δbusy / Δtotal` per logical CPU.
    pub fn utilization_since(&self, earlier: &ProcStat) -> Vec<Utilization> {
        assert_eq!(self.cpus(), earlier.cpus(), "snapshot CPU count mismatch");
        self.per_cpu
            .iter()
            .zip(&earlier.per_cpu)
            .map(|(now, then)| {
                let dt = now.total().saturating_sub(then.total());
                let db = now.busy().saturating_sub(then.busy());
                if dt == 0 {
                    Utilization::IDLE
                } else {
                    Utilization::new(db as f64 / dt as f64)
                }
            })
            .collect()
    }

    /// Average CPU utilization between two snapshots — the paper's x-axis.
    pub fn average_utilization_since(&self, earlier: &ProcStat) -> Utilization {
        Utilization::mean(&self.utilization_since(earlier))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_one_line_per_cpu_plus_aggregate() {
        let s = ProcStat::zeroed(48);
        let text = s.render();
        assert_eq!(text.lines().count(), 49);
        assert!(text.starts_with("cpu "));
        assert!(text.contains("\ncpu47 "));
    }

    #[test]
    fn aggregate_sums_cpu_lines() {
        let mut s = ProcStat::zeroed(4);
        s.advance(0, Seconds(1.0), Seconds(0.0));
        s.advance(1, Seconds(0.5), Seconds(0.5));
        let agg = s.aggregate();
        assert_eq!(agg.user, 150);
        assert_eq!(agg.idle, 50);
    }

    #[test]
    fn parse_roundtrip() {
        let mut s = ProcStat::zeroed(8);
        for i in 0..8 {
            s.advance(i, Seconds(i as f64), Seconds(8.0 - i as f64));
        }
        let parsed = ProcStat::parse(&s.render()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn parse_rejects_inconsistent_aggregate() {
        let text = "cpu 100 0 0 0 0 0 0 0\ncpu0 10 0 0 0 0 0 0 0\n";
        assert!(ProcStat::parse(text).is_none());
    }

    #[test]
    fn parse_ignores_non_cpu_lines() {
        let mut s = ProcStat::zeroed(2);
        s.advance(0, Seconds(1.0), Seconds(1.0));
        let text = format!("{}intr 12345 0 0\nctxt 999\nbtime 1\n", s.render());
        assert_eq!(ProcStat::parse(&text).unwrap(), s);
    }

    #[test]
    fn utilization_between_snapshots() {
        let before = ProcStat::zeroed(2);
        let mut after = ProcStat::zeroed(2);
        after.advance(0, Seconds(3.0), Seconds(1.0)); // 75% busy
        after.advance(1, Seconds(0.0), Seconds(4.0)); // idle
        let utils = after.utilization_since(&before);
        assert!((utils[0].fraction() - 0.75).abs() < 1e-9);
        assert_eq!(utils[1], Utilization::IDLE);
        let avg = after.average_utilization_since(&before);
        assert!((avg.fraction() - 0.375).abs() < 1e-9);
    }

    #[test]
    fn zero_delta_reports_idle() {
        let s = ProcStat::zeroed(1);
        assert_eq!(s.utilization_since(&s), vec![Utilization::IDLE]);
    }
}
