//! Workspace-wide `unsafe` hygiene audit.
//!
//! Scans every crate under `crates/*/src` and enforces the repo's
//! discipline around the `unsafe` keyword:
//!
//! * every `unsafe {` block and `unsafe impl` carries a `// SAFETY:`
//!   comment on the same line or within the few lines above it,
//!   discharging the obligation at the site;
//! * every `unsafe fn` declaration either documents its contract with a
//!   `# Safety` doc section or is a `#[target_feature]` instantiation
//!   (where the only obligation — ISA availability — is discharged with
//!   a `SAFETY` comment at the dispatch call);
//! * every crate containing `unsafe` code opts into
//!   `#![deny(unsafe_op_in_unsafe_fn)]` in its `lib.rs`, so an unsafe
//!   fn's body cannot silently absorb new unsafe operations without a
//!   visible (and auditable) inner `unsafe` block.
//!
//! The audit is syntactic by design — cheap, dependency-free, and run as
//! a tier-1 test so a new undocumented `unsafe` fails CI, not review.

use std::path::{Path, PathBuf};

/// How far above an `unsafe` site a `SAFETY` comment may sit.
const SAFETY_WINDOW: usize = 8;
/// How far above an `unsafe fn` its `# Safety` doc or `target_feature`
/// attribute may sit (doc sections are longer than site comments).
const FN_WINDOW: usize = 14;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read src dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The code portion of a line: empty for pure comment lines, otherwise
/// the text before any trailing `//` comment. (Naive about `//` inside
/// string literals, which the audited sources do not produce in
/// `unsafe`-bearing lines.)
fn code_part(line: &str) -> &str {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return "";
    }
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does any of `lines[lo..=at]` mention a safety discharge?
fn window_has(lines: &[&str], at: usize, window: usize, needles: &[&str]) -> bool {
    let lo = at.saturating_sub(window);
    lines[lo..=at].iter().any(|l| needles.iter().any(|n| l.contains(n)))
}

#[test]
fn every_unsafe_site_is_documented_and_linted() {
    let crates_dir = workspace_root().join("crates");
    let mut violations = Vec::new();
    for entry in std::fs::read_dir(&crates_dir).expect("read crates/") {
        let krate = entry.expect("dir entry").path();
        let src = krate.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        files.sort();
        let mut crate_has_unsafe = false;
        for file in &files {
            let text = std::fs::read_to_string(file).expect("read source file");
            let lines: Vec<&str> = text.lines().collect();
            let rel = file.strip_prefix(&crates_dir).unwrap_or(file).display().to_string();
            for (i, line) in lines.iter().enumerate() {
                let code = code_part(line);
                if !code.contains("unsafe") {
                    continue;
                }
                let site = code.contains("unsafe {")
                    || code.contains("unsafe{")
                    || code.contains("unsafe impl");
                let decl = code.contains("unsafe fn");
                if site {
                    crate_has_unsafe = true;
                    if !window_has(&lines, i, SAFETY_WINDOW, &["SAFETY"]) {
                        violations.push(format!(
                            "{rel}:{}: `unsafe` block/impl without a SAFETY comment \
                             within {SAFETY_WINDOW} lines",
                            i + 1
                        ));
                    }
                }
                if decl {
                    crate_has_unsafe = true;
                    if !window_has(
                        &lines,
                        i,
                        FN_WINDOW,
                        &["# Safety", "#[target_feature", "SAFETY"],
                    ) {
                        violations.push(format!(
                            "{rel}:{}: `unsafe fn` without a `# Safety` doc section or \
                             `#[target_feature]` attribute within {FN_WINDOW} lines",
                            i + 1
                        ));
                    }
                }
            }
        }
        if crate_has_unsafe {
            let lib = src.join("lib.rs");
            let lib_text = std::fs::read_to_string(&lib).expect("read lib.rs");
            if !lib_text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
                violations.push(format!(
                    "{}: contains `unsafe` code but lib.rs lacks \
                     #![deny(unsafe_op_in_unsafe_fn)]",
                    krate.file_name().unwrap().to_string_lossy()
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "unsafe hygiene violations:\n  {}",
        violations.join("\n  ")
    );
}
