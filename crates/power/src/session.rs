//! HCLWATTSUP-style energy sessions.
//!
//! HCLWATTSUP determines an application's dynamic energy in three steps:
//! capture the node's idle baseline, integrate total power over the run,
//! then report `E_dynamic = E_total − P_idle × t`. [`EnergySession`]
//! reproduces exactly that workflow against the simulated meter.

use crate::source::PowerSource;
use crate::wattsup::SimulatedWattsUp;
use enprop_units::{Joules, Seconds, Watts};

/// The decomposition of one measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReading {
    /// Run length.
    pub duration: Seconds,
    /// Integrated total node energy over the run.
    pub total: Joules,
    /// Static (idle-floor) energy: baseline power × duration.
    pub static_energy: Joules,
    /// Dynamic energy: total − static (clamped at zero: sensor noise can
    /// push a tiny run's total below the baseline).
    pub dynamic: Joules,
}

impl EnergyReading {
    /// Average dynamic power over the run.
    pub fn dynamic_power(&self) -> Watts {
        self.dynamic / self.duration
    }
}

/// A measurement session bound to one simulated meter.
///
/// # Example
/// ```
/// use enprop_power::{EnergySession, SimulatedWattsUp, MeterSpec, ConstantLoad};
/// use enprop_units::{Watts, Seconds};
///
/// let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 42);
/// let mut session = EnergySession::with_baseline_window(meter, Seconds(120.0));
/// let app = ConstantLoad::new(Watts(150.0), Seconds(60.0));
/// let r = session.measure(&app);
/// // Dynamic energy ≈ 150 W × 60 s = 9 kJ (within meter noise).
/// assert!((r.dynamic.value() - 9000.0).abs() < 200.0);
/// ```
#[derive(Debug)]
pub struct EnergySession {
    meter: SimulatedWattsUp,
    baseline: Watts,
    baseline_window: Seconds,
}

impl EnergySession {
    /// Opens a session, capturing the idle baseline over `window` the way
    /// HCLWATTSUP does before any application run.
    pub fn with_baseline_window(mut meter: SimulatedWattsUp, window: Seconds) -> Self {
        let trace = meter.record_idle(window);
        let baseline = trace.mean_power().expect("baseline window too short");
        Self { meter, baseline, baseline_window: window }
    }

    /// The captured idle baseline.
    pub fn baseline(&self) -> Watts {
        self.baseline
    }

    /// Restarts the session from `seed`: the meter's noise stream is reset
    /// and the idle baseline is re-captured over the original window, so the
    /// session is bitwise-identical to one freshly opened with a meter
    /// seeded with `seed`. This is the primitive the parallel sweep engine
    /// uses to decouple a configuration's measurement noise from the worker
    /// thread it happens to land on.
    pub fn reseed(&mut self, seed: u64) {
        self.meter.reseed(seed);
        let trace = self.meter.record_idle(self.baseline_window);
        self.baseline = trace.mean_power().expect("baseline window too short");
    }

    /// Measures one application run and decomposes its energy.
    pub fn measure(&mut self, app: &dyn PowerSource) -> EnergyReading {
        let trace = self.meter.record(app);
        let duration = trace.duration();
        let total = trace.energy();
        let static_energy = self.baseline * duration;
        let dynamic = Joules((total - static_energy).value().max(0.0));
        EnergyReading { duration, total, static_energy, dynamic }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CompositeLoad, ConstantLoad, PiecewiseLoad};
    use crate::wattsup::MeterSpec;

    fn quiet_session(idle: f64) -> EnergySession {
        let spec = MeterSpec { noise_sd_w: 0.0, resolution_w: 0.0, ..MeterSpec::default() };
        let meter = SimulatedWattsUp::new(spec, Watts(idle), 5);
        EnergySession::with_baseline_window(meter, Seconds(10.0))
    }

    #[test]
    fn decomposition_identity() {
        let mut s = quiet_session(90.0);
        let app = ConstantLoad::new(Watts(150.0), Seconds(20.0));
        let r = s.measure(&app);
        assert!((r.total - r.static_energy - r.dynamic).abs().value() < 1e-9);
        assert!((r.dynamic.value() - 150.0 * 20.0).abs() < 1e-6, "{:?}", r);
        assert!((r.dynamic_power().value() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_matches_idle_floor_without_noise() {
        let s = quiet_session(87.5);
        assert!((s.baseline().value() - 87.5).abs() < 1e-9);
    }

    #[test]
    fn dynamic_clamped_non_negative() {
        // Miscalibrated meter underreads the run: dynamic would go negative.
        let spec =
            MeterSpec { noise_sd_w: 0.0, resolution_w: 0.0, gain: 1.0, ..MeterSpec::default() };
        let meter = SimulatedWattsUp::new(spec, Watts(100.0), 5);
        let mut s = EnergySession::with_baseline_window(meter, Seconds(10.0));
        struct Nothing;
        impl PowerSource for Nothing {
            fn power_at(&self, _t: Seconds) -> Watts {
                Watts::ZERO
            }
            fn duration(&self) -> Seconds {
                Seconds(5.0)
            }
        }
        let r = s.measure(&Nothing);
        assert!(r.dynamic.value() >= 0.0);
        assert!(r.dynamic.value() < 1.0);
    }

    #[test]
    fn warmup_component_visible_in_dynamic_energy() {
        // Compute at 150 W for 10 s plus a 58 W component for the first 2 s —
        // the paper's Fig. 6 mechanism.
        let mut s = quiet_session(90.0);
        let compute = ConstantLoad::new(Watts(150.0), Seconds(10.0));
        let warm = PiecewiseLoad::from_segments(vec![(Seconds(2.0), Watts(58.0))]);
        let app = CompositeLoad::new(compute, warm);
        let r = s.measure(&app);
        let expected = 150.0 * 10.0 + 58.0 * 2.0;
        assert!((r.dynamic.value() - expected).abs() < 60.0, "{:?}", r);
    }

    #[test]
    fn reseeded_session_equals_fresh_session() {
        let app = ConstantLoad::new(Watts(150.0), Seconds(40.0));
        let mut used = {
            let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 3);
            EnergySession::with_baseline_window(meter, Seconds(120.0))
        };
        used.measure(&app); // advance the noise stream
        used.reseed(17);
        let mut fresh = {
            let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 17);
            EnergySession::with_baseline_window(meter, Seconds(120.0))
        };
        assert_eq!(used.baseline(), fresh.baseline());
        assert_eq!(used.measure(&app), fresh.measure(&app));
    }

    #[test]
    fn noisy_session_close_to_truth() {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 11);
        let mut s = EnergySession::with_baseline_window(meter, Seconds(300.0));
        let app = ConstantLoad::new(Watts(150.0), Seconds(100.0));
        let r = s.measure(&app);
        assert!((r.dynamic.value() - 15000.0).abs() / 15000.0 < 0.02, "{:?}", r);
    }
}
