//! The parallel sweep engine's determinism contract, end to end: every
//! measured sweep is bitwise-identical at 1, 2, and 8 worker threads, and
//! the SplitMix64 seed splitter hands every configuration a distinct,
//! enumeration-order-independent RNG stream.

use enprop::apps::{
    fft2d::{Fft2dApp, Processor},
    split_seed, CpuDgemmApp, GpuMatMulApp, RetryPolicy, SweepExecutor,
};
use enprop::cpusim::BlasFlavor;
use enprop::gpusim::GpuArch;
use enprop::power::FaultPlan;
use proptest::prelude::*;

/// Executors with the same seed at the three canonical thread counts.
fn executors(seed: u64) -> [SweepExecutor; 3] {
    [
        SweepExecutor::serial(seed),
        SweepExecutor::new(seed).with_threads(2),
        SweepExecutor::new(seed).with_threads(8),
    ]
}

#[test]
fn gpu_sweep_identical_at_1_2_8_threads() {
    let app = GpuMatMulApp::new(GpuArch::k40c(), 4);
    let [e1, e2, e8] = executors(31);
    let base = app.sweep_measured(2048, &e1);
    assert!(!base.is_empty());
    assert_eq!(base, app.sweep_measured(2048, &e2));
    assert_eq!(base, app.sweep_measured(2048, &e8));
}

#[test]
fn cpu_sweep_identical_at_1_2_8_threads() {
    let app = CpuDgemmApp::haswell();
    let [e1, e2, e8] = executors(17);
    let base = app.sweep_measured(4096, BlasFlavor::OpenBlas, &e1, 40);
    assert!(!base.is_empty());
    assert_eq!(base, app.sweep_measured(4096, BlasFlavor::OpenBlas, &e2, 40));
    assert_eq!(base, app.sweep_measured(4096, BlasFlavor::OpenBlas, &e8, 40));
}

#[test]
fn fft_sweep_identical_at_1_2_8_threads() {
    let sizes = [256usize, 512, 1024, 2048, 4096, 8192];
    for proc in Processor::catalog() {
        let app = Fft2dApp::new(proc);
        let [e1, e2, e8] = executors(23);
        let base = app.sweep_measured(&sizes, &e1);
        assert_eq!(base.len(), sizes.len());
        assert_eq!(base, app.sweep_measured(&sizes, &e2));
        assert_eq!(base, app.sweep_measured(&sizes, &e8));
    }
}

#[test]
fn faulty_gpu_sweep_identical_at_1_2_8_threads() {
    // Retries draw their noise from per-attempt seed substreams, so even a
    // sweep where measurements fail and re-run must stay bitwise-identical
    // at every thread count — points, failure records, and retry counts.
    let app = GpuMatMulApp::new(GpuArch::k40c(), 4);
    let policy = RetryPolicy::attempts(2);
    let plan = FaultPlan::transient(0.2);
    let [e1, e2, e8] = executors(31);
    let base = app.sweep_measured_robust(2048, &e1, policy, plan);
    assert!(!base.points.is_empty());
    assert!(base.retried > 0, "20% fault rate never triggered a retry");
    assert_eq!(base, app.sweep_measured_robust(2048, &e2, policy, plan));
    assert_eq!(base, app.sweep_measured_robust(2048, &e8, policy, plan));
}

#[test]
fn faulty_cpu_sweep_identical_at_1_2_8_threads() {
    let app = CpuDgemmApp::haswell();
    let policy = RetryPolicy::attempts(2);
    let plan = FaultPlan::transient(0.2);
    let [e1, e2, e8] = executors(17);
    let base = app.sweep_measured_robust(4096, BlasFlavor::OpenBlas, &e1, 40, policy, plan);
    assert!(!base.points.is_empty());
    assert_eq!(
        base,
        app.sweep_measured_robust(4096, BlasFlavor::OpenBlas, &e2, 40, policy, plan)
    );
    assert_eq!(
        base,
        app.sweep_measured_robust(4096, BlasFlavor::OpenBlas, &e8, 40, policy, plan)
    );
}

proptest! {
    /// Distinctness: within one sweep, no two configuration indices ever
    /// share a derived seed (no cross-talk between their noise streams).
    #[test]
    fn config_seeds_are_distinct(seed in 0u64..u64::MAX, span in 1usize..512) {
        let mut seen = std::collections::HashSet::new();
        for index in 0..span {
            prop_assert!(
                seen.insert(split_seed(seed, index)),
                "duplicate stream for index {index} under sweep seed {seed}"
            );
        }
    }

    /// Order independence: the seed of configuration `i` is a pure
    /// function of `(sweep_seed, i)` — the same whether derived first,
    /// last, through an executor, or interleaved with any other indices.
    #[test]
    fn config_seeds_are_order_independent(
        seed in 0u64..u64::MAX,
        a in 0usize..4096,
        b in 0usize..4096,
    ) {
        let forward = (split_seed(seed, a), split_seed(seed, b));
        let reverse = (split_seed(seed, b), split_seed(seed, a));
        prop_assert_eq!(forward.0, reverse.1);
        prop_assert_eq!(forward.1, reverse.0);
        let exec = SweepExecutor::serial(seed);
        prop_assert_eq!(exec.config_seed(a), forward.0);
        prop_assert_eq!(exec.config_seed(b), forward.1);
    }

    /// Different sweep seeds give different per-config streams.
    #[test]
    fn sweep_seed_reaches_every_config(s1 in 0u64..u64::MAX, s2 in 0u64..u64::MAX) {
        prop_assume!(s1 != s2);
        for index in [0usize, 1, 7, 100] {
            prop_assert_ne!(split_seed(s1, index), split_seed(s2, index));
        }
    }
}
