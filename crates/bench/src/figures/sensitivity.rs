//! Calibration-sensitivity analysis.
//!
//! The GPU power-model constants are *calibrated* (DESIGN.md §2), so a
//! fair question is whether the reproduced conclusions depend on exact
//! values or on the mechanisms. This analysis perturbs every calibrated
//! constant by ±20% (one at a time) and checks which of the paper's
//! structural conclusions survive each perturbation:
//!
//! 1. the K40c global front is a singleton at BS = 32;
//! 2. the P100 global front has ≥ 2 points with ≥ 25% max savings;
//! 3. Fig. 6 non-additivity at N = 5120 exceeds 5% and decays by N = 18432.

use super::{front_of, gpu_cloud};
use enprop_apps::SweepExecutor;
use enprop_gpusim::{GpuArch, TiledDgemm, TiledDgemmConfig};
use serde::{Deserialize, Serialize};

/// The perturbable calibrated constants.
const PARAMS: [&str; 5] =
    ["active_base_w", "compute_w", "occ_exponent", "memory_w", "warmup_power_w"];

/// Outcome of one (parameter, direction) perturbation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Perturbation {
    /// Which constant was scaled.
    pub parameter: String,
    /// The scale factor applied (0.8 or 1.2).
    pub factor: f64,
    /// Conclusion 1: K40c singleton global front at BS = 32.
    pub k40c_singleton: bool,
    /// Conclusion 2: P100 multi-point front with large savings.
    pub p100_tradeoff: bool,
    /// Conclusion 3: non-additivity present and decaying.
    pub nonadditivity_decays: bool,
}

impl Perturbation {
    /// All three conclusions survive this perturbation.
    pub fn all_survive(&self) -> bool {
        self.k40c_singleton && self.p100_tradeoff && self.nonadditivity_decays
    }
}

/// The full sensitivity report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Every perturbation's outcome.
    pub perturbations: Vec<Perturbation>,
    /// Fraction of perturbations under which all conclusions survive.
    pub survival_rate: f64,
}

/// Scales one named power-model constant of `arch` by `factor`.
fn perturb(mut arch: GpuArch, parameter: &str, factor: f64) -> GpuArch {
    let p = &mut arch.power;
    match parameter {
        "active_base_w" => p.active_base_w *= factor,
        "compute_w" => p.compute_w *= factor,
        "occ_exponent" => p.occ_exponent *= factor,
        "memory_w" => p.memory_w *= factor,
        "warmup_power_w" => p.warmup_power_w *= factor,
        other => panic!("unknown parameter {other}"),
    }
    arch
}

fn k40c_singleton(arch: GpuArch) -> bool {
    let cloud = gpu_cloud(arch, 10240);
    let front = front_of(&cloud, |_| true);
    front.is_singleton() && cloud[front.performance_optimal().index].config.bs == 32
}

fn p100_tradeoff(arch: GpuArch) -> bool {
    let front = front_of(&gpu_cloud(arch, 10240), |_| true);
    front.len() >= 2 && front.best_pair().map(|(s, _)| s >= 0.25).unwrap_or(false)
}

fn nonadditivity_decays(arch: GpuArch) -> bool {
    let model = TiledDgemm::new(arch);
    let nonadd = |n: usize| {
        let e1 = model
            .estimate(&TiledDgemmConfig { n, bs: 16, g: 1, r: 1 })
            .dynamic_energy()
            .value();
        let e4 = model
            .estimate(&TiledDgemmConfig { n, bs: 16, g: 4, r: 1 })
            .dynamic_energy()
            .value();
        (4.0 * e1 - e4) / (4.0 * e1)
    };
    let small = nonadd(5120);
    let large = nonadd(18432);
    small > 0.05 && large < 0.5 * small
}

/// Runs the full one-at-a-time ±20% sweep over all available cores.
pub fn generate() -> Sensitivity {
    generate_with(&SweepExecutor::new(0))
}

/// [`generate`] with an explicit executor: the ten perturbations (each
/// two clouds plus a non-additivity decay check) fan out over its
/// workers. All evaluations are noise-free, so the seed is irrelevant.
pub fn generate_with(exec: &SweepExecutor) -> Sensitivity {
    let grid: Vec<(&str, f64)> = PARAMS
        .iter()
        .flat_map(|&parameter| [0.8, 1.2].into_iter().map(move |factor| (parameter, factor)))
        .collect();
    let perturbations = exec.map(&grid, |&(parameter, factor), _seed| {
        let k40 = perturb(GpuArch::k40c(), parameter, factor);
        let p100 = perturb(GpuArch::p100_pcie(), parameter, factor);
        Perturbation {
            parameter: parameter.to_string(),
            factor,
            k40c_singleton: k40c_singleton(k40),
            p100_tradeoff: p100_tradeoff(p100.clone()),
            nonadditivity_decays: nonadditivity_decays(p100),
        }
    });
    let survivors = perturbations.iter().filter(|p| p.all_survive()).count();
    let survival_rate = survivors as f64 / perturbations.len() as f64;
    Sensitivity { perturbations, survival_rate }
}

/// Renders the sensitivity table.
pub fn render() -> String {
    let s = generate();
    let rows: Vec<Vec<String>> = s
        .perturbations
        .iter()
        .map(|p| {
            let mark = |b: bool| if b { "✓".to_string() } else { "✗".to_string() };
            vec![
                p.parameter.clone(),
                format!("×{:.1}", p.factor),
                mark(p.k40c_singleton),
                mark(p.p100_tradeoff),
                mark(p.nonadditivity_decays),
            ]
        })
        .collect();
    let mut out = crate::render::table(
        &["parameter", "scale", "K40c singleton", "P100 tradeoff", "non-add decay"],
        &rows,
    );
    out.push_str(&format!(
        "all conclusions survive {:.0}% of ±20% perturbations\n",
        s.survival_rate * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_conclusions_hold() {
        assert!(k40c_singleton(GpuArch::k40c()));
        assert!(p100_tradeoff(GpuArch::p100_pcie()));
        assert!(nonadditivity_decays(GpuArch::p100_pcie()));
    }

    #[test]
    fn conclusions_are_mostly_robust() {
        let s = generate();
        assert_eq!(s.perturbations.len(), 10);
        // The structural conclusions should survive the clear majority of
        // ±20% one-at-a-time perturbations — they come from mechanisms,
        // not knife-edge constants.
        assert!(s.survival_rate >= 0.7, "survival rate {}", s.survival_rate);
    }

    #[test]
    fn p100_tradeoff_robust_to_every_perturbation() {
        // The boost mechanism towers over ±20% noise.
        for p in generate().perturbations {
            assert!(p.p100_tradeoff, "{} ×{}", p.parameter, p.factor);
        }
    }

    #[test]
    #[should_panic(expected = "unknown parameter")]
    fn unknown_parameter_rejected() {
        perturb(GpuArch::k40c(), "nonsense", 1.0);
    }
}
