//! Standalone sweep-serving daemon.
//!
//! ```text
//! enprop-serve [--addr HOST:PORT] [--threads N] [--cache DIR]
//! ```
//!
//! Binds the address (default `127.0.0.1:7271`), prints the resolved
//! address and the persistent-store load report, then serves until killed.

use enprop_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7271".to_string();
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.threads = v,
                None => return usage("--threads needs an integer"),
            },
            "--cache" => match args.next() {
                Some(v) => config.cache_dir = Some(PathBuf::from(v)),
                None => return usage("--cache needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let server = match Server::start(config, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("enprop-serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = server.cache_load_report();
    println!("enprop-serve: listening on http://{}", server.addr());
    if report.replayed > 0 || report.torn_tail_bytes > 0 {
        println!(
            "enprop-serve: cache store replayed {} entr{} ({} torn-tail byte(s) discarded)",
            report.replayed,
            if report.replayed == 1 { "y" } else { "ies" },
            report.torn_tail_bytes
        );
    }
    println!("enprop-serve: POST /sweep, GET /stats, GET /healthz");
    server.serve_forever();
    ExitCode::SUCCESS
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("enprop-serve: {error}");
    }
    eprintln!("usage: enprop-serve [--addr HOST:PORT] [--threads N] [--cache DIR]");
    if error.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}
