//! Bench + regeneration of Fig. 7 (K40c local Pareto fronts at N = 8704
//! and N = 10240).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::fig7;

fn bench(c: &mut Criterion) {
    println!("{}", fig7::render());
    c.bench_function("fig7/generate", |b| b.iter(fig7::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
