//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [all|table1|fig1|fig2|fig4|fig6|fig7|fig8|theory|headline|bench-json|sanitize|
//!        verify-static|serve]
//!       [--json DIR] [--measured [SEED]] [--threads N] [--faults [RATE]] [--check]
//!       [--checkpoint DIR] [--resume] [--all] [--full] [--self-test] [--sample K]
//!       [--port PORT] [--cache DIR]
//! ```
//!
//! With `--json DIR` each generated artifact is additionally written as a
//! JSON file (the source of the numbers in `EXPERIMENTS.md`). With
//! `--measured`, Figs. 7 and 8 are regenerated through the full noisy
//! measurement methodology (simulated WattsUp + Student-t protocol)
//! instead of the noise-free analytic model. `--threads N` sets the sweep
//! worker count (default: all available cores); the output is
//! bitwise-identical at any thread count. `--faults RATE` (default 0.05)
//! additionally injects transient meter faults at that per-measurement
//! rate: each configuration retries up to 3 times on a fresh seed
//! substream, exhausted configurations are skipped with a reported count,
//! and the surviving output is still bitwise-identical at any thread
//! count.
//!
//! With `--checkpoint DIR` the measured Fig. 7/8 sweeps write a durable
//! append-only journal of completed configurations under `DIR` (one
//! subdirectory per panel size). `--resume` replays a journal left by an
//! interrupted run and measures only the unfinished configurations;
//! resumed output is bitwise-identical to an uninterrupted run at any
//! thread count. Without `--resume`, an existing journal is an error —
//! a stale directory is never silently overwritten.
//!
//! The `bench-json` subcommand times (a) the Fig. 7 measured sweep
//! serially and in parallel, verifying both produce identical results,
//! (b) the functional emulator running tiled DGEMM on the retired
//! OS-thread engine vs the barrier-phase interpreter (N = 128 by default
//! — the OS-thread engine spawns one thread per CUDA thread and dominates
//! the benchmark's wall-clock; `--full` restores the historical N = 256
//! workload; either way the JSON `workload` string names the size used),
//! and (c) a fault-injection smoke sweep — the K40c N = 8704 workload (102
//! configurations) under a 5% transient-failure rate with the default
//! 3-attempt retry policy, run at 1, 2, and 8 threads and compared for
//! exact equality of both the surviving points and the exhausted-retry
//! set, and (d) a checkpoint-recovery drill — the same fault sweep run
//! journaled, killed mid-journal by deterministic crash injection (the
//! final record torn), then resumed at 1, 2, and 8 threads and compared
//! bitwise against the uninterrupted run, with the journal's wall-clock
//! overhead measured — and writes everything, including `host_cores`, to
//! `BENCH_sweep.json`. Five further sections measure this tree's fast
//! paths: `emulator_batch` (the explicit-SIMD batched SoA phase bodies vs
//! the scalar per-thread interpreter AND vs the same batch bodies pinned
//! to the scalar-sse2 tier — the PR 7 auto-vectorized baseline — with
//! results and counters compared exactly), `host_kernels` (the packed
//! 4 × 8 register-tiled DGEMM vs the retained unpacked baseline in
//! GFLOPS, plus the twiddle-hoisted 2-D FFT), `host_kernels_mt` (the
//! multi-threaded packed DGEMM and chunk-claiming 2-D FFT vs their serial
//! forms, bitwise-identical across 1/2/8 threads), `sanitize_sampled`
//! (1-in-8 sampled monitoring vs full monitoring vs the scalar baseline),
//! and `sanitize_batched` (full monitoring riding the batched bulk trace
//! path vs per-access scalar-hook monitoring vs the uninstrumented scalar
//! interpreter, findings compared exactly). Every kernel-related section
//! records the selected SIMD dispatch path (`avx512` / `avx2` /
//! `scalar-sse2` for the emulator, `avx2` / `scalar` for the host
//! kernels) as a `simd_dispatch` field. With `--check` it exits non-zero
//! on a performance regression: sweep parallel speedup < 1.5× at ≥ 4
//! threads (enforced only when the host has ≥ 4 cores — on fewer cores
//! wall-clock speedup is physically impossible and the gate reduces to
//! the bitwise-identity check; the skip is recorded in the JSON as a
//! self-describing `speedup_gate` object), phase-interpreter speedup over
//! the legacy engine < 10×, batched-vs-scalar emulator speedup < 2×,
//! explicit-SIMD speedup over the pinned scalar-sse2 batch bodies < 1.3×
//! (skipped self-describingly when the host dispatches scalar-sse2),
//! packed-vs-unpacked DGEMM speedup < 1.5×, a multi-threaded host kernel
//! that is not bitwise-identical to its serial form at 1/2/8 threads (the
//! MT *speedup* gate follows the `speedup_gate` convention and is skipped
//! on small hosts), sampled-sanitizer overhead above 3× over the scalar
//! baseline at k = 8 (or a sampled run that misses a self-test fixture),
//! batched-monitoring overhead above 8× over the uninstrumented scalar
//! baseline (or batched-monitoring findings that differ from the scalar
//! monitored run, or a fixture missed), a fault-smoke sweep that loses
//! configurations without recording them, fault-smoke output that differs
//! across thread counts, a sanitized DGEMM run that reports findings, a
//! resumed sweep that is not bitwise-identical to the uninterrupted one,
//! a torn journal record that is not detected and dropped, a replayed +
//! recomputed count that does not cover the sweep, or journal overhead
//! above 10% (measured as an interleaved median-of-5 so scheduler jitter
//! cannot masquerade as a journal cost or saving).
//!
//! The `serve_throughput` section exercises the `enprop-serve` daemon
//! end-to-end: an in-process server on an ephemeral loopback port, a
//! freshly computed (`no_cache`) sweep compared bitwise against the cold
//! cached response and against a warm cache hit, then the mixed hot/cold
//! load generator (8 concurrent clients). `--check` fails on any
//! non-identical body, a failed request, or a zero cache-hit rate; on a
//! host where loopback sockets cannot bind, the section records a
//! self-describing `socket_gate` skip instead (the same convention as
//! `speedup_gate`). The `serve` subcommand runs the daemon in the
//! foreground (`--port PORT`, default 7271; `--cache DIR` enables the
//! persistent result store; `--threads N` caps sweep workers).
//!
//! The `sanitize` subcommand runs the `enprop-sanitize` checkers
//! (racecheck / memcheck / synccheck / prelaunch) over every shipped
//! DGEMM and FFT configuration, prints one line per launch plus every
//! diagnostic, and exits non-zero if any launch is not clean. `--all`
//! widens the sweep (N = 128 DGEMM tiles, maximal groups, larger FFTs);
//! `--sample K` monitors 1-in-K blocks, selected deterministically from
//! the run seed, for production-scale sweeps; `--json DIR` writes the
//! machine-readable `SANITIZE_report.json`; `--self-test` instead runs
//! the seeded buggy-kernel corpus (always unsampled, whatever `--sample`
//! says) and exits non-zero unless each fixture is caught by exactly its
//! intended checker.
//!
//! The `verify-static` subcommand proves the same safety properties
//! *without executing the swept configurations*: the `enprop-staticcheck`
//! analyzer learns the tiled-DGEMM family from a set of tiny instrumented
//! probe launches (every access fitted to a verified affine form, every
//! coefficient refitted as an exact integer polynomial in the config
//! parameters), then analytically sweeps every fig7/fig8 lattice
//! configuration — race, out-of-bounds, and barrier checks plus
//! closed-form event counts, in microseconds per config. It also re-runs
//! the static analyzer over the seeded buggy fixture corpus (each must be
//! flagged by the same checker, naming the same phase and buffer as the
//! dynamic sanitizer) and cross-validates the closed-form counters
//! bitwise against flushed `EmuEvents` on executable validation configs.
//! `--json DIR` writes `VERIFY_static.json`; the exit code is non-zero on
//! any finding, fallback, missed fixture, parity failure, or count
//! mismatch. The matching `static_verify` section of `bench-json` times
//! the full static pipeline (model learning + four-lattice analytic
//! sweep) against the dynamic `sanitize --all` instrumented sweep and,
//! with `--check`, fails unless the static path is at least 10x faster,
//! the lattices are proven clean, all fixtures are caught with dynamic
//! parity, and every validated count is bitwise-exact.

use enprop_apps::checkpoint::{CrashPlan, SweepCheckpoint};
use enprop_apps::{GpuMatMulApp, RetryPolicy, SweepExecutor, SweepFailure};
use enprop_bench::figures;
use enprop_gpusim::emulator::{EmuDgemm, ForceScalar, GlobalMem, SimdPath, WavePlan};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_power::FaultPlan;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Default transient-failure rate for `--faults` and the smoke sweep.
const DEFAULT_FAULT_RATE: f64 = 0.05;

/// The run seed feeding `SampleSpec` block selection under
/// `sanitize --sample K` — the same 42 every other `repro` subcommand
/// defaults to, so a sampled report is reproducible across runs and
/// machines without any extra flag.
const SANITIZE_SAMPLE_SEED: u64 = 42;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut json_dir: Option<String> = None;
    let mut measured: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut faults: Option<f64> = None;
    let mut check = false;
    let mut full = false;
    let mut sanitize_all = false;
    let mut self_test = false;
    let mut sample_k: Option<u64> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut port: u16 = 7271;
    let mut serve_cache: Option<String> = None;
    let mut it = args.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => {
                json_dir = Some(it.next().unwrap_or_else(|| usage("missing --json DIR")))
            }
            "--check" => check = true,
            "--checkpoint" => {
                checkpoint_dir =
                    Some(it.next().unwrap_or_else(|| usage("missing --checkpoint DIR")))
            }
            "--resume" => resume = true,
            "--all" => sanitize_all = true,
            "--full" => full = true,
            "--self-test" => self_test = true,
            "--sample" => {
                let k = it
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or_else(|| usage("--sample requires a positive integer K"));
                sample_k = Some(k.max(1));
            }
            "--measured" => {
                let seed = it
                    .peek()
                    .and_then(|s| s.parse::<u64>().ok())
                    .inspect(|_| {
                        it.next();
                    })
                    .unwrap_or(42);
                measured = Some(seed);
            }
            "--threads" => {
                let n = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage("--threads requires a positive integer"));
                threads = Some(n.max(1));
            }
            "--faults" => {
                let rate = it
                    .peek()
                    .and_then(|s| s.parse::<f64>().ok())
                    .inspect(|_| {
                        it.next();
                    })
                    .unwrap_or(DEFAULT_FAULT_RATE);
                if !(0.0..=1.0).contains(&rate) {
                    usage("--faults RATE must be within [0, 1]");
                }
                faults = Some(rate);
            }
            "--port" => {
                port = it
                    .next()
                    .and_then(|s| s.parse::<u16>().ok())
                    .unwrap_or_else(|| usage("--port requires a port number"));
            }
            "--cache" => {
                serve_cache =
                    Some(it.next().unwrap_or_else(|| usage("missing --cache DIR")))
            }
            "-h" | "--help" => usage(""),
            other => which = other.to_string(),
        }
    }

    if resume && checkpoint_dir.is_none() {
        usage("--resume requires --checkpoint DIR");
    }
    if checkpoint_dir.is_some() && measured.is_none() {
        usage("--checkpoint only applies to the measured sweeps; add --measured [SEED]");
    }
    let checkpoint = checkpoint_dir.as_deref().map(|dir| (dir, resume));

    if which == "bench-json" {
        bench_sweep(
            threads,
            faults.unwrap_or(DEFAULT_FAULT_RATE),
            json_dir.as_deref(),
            check,
            full,
        );
        return;
    }

    if which == "sanitize" {
        run_sanitize(sanitize_all, self_test, sample_k, json_dir.as_deref());
        return;
    }

    if which == "serve" {
        run_serve(port, threads, serve_cache.as_deref());
        return;
    }

    if which == "verify-static" {
        run_verify_static(json_dir.as_deref());
        return;
    }

    let artifacts: Vec<&str> = match which.as_str() {
        "all" => vec![
            "table1", "fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "theory", "headline",
            "ablations", "sensitivity",
        ],
        one @ ("table1" | "fig1" | "fig2" | "fig4" | "fig6" | "fig7" | "fig8" | "theory"
        | "headline" | "ablations" | "sensitivity") => vec![one],
        other => usage(&format!("unknown artifact '{other}'")),
    };

    for name in artifacts {
        println!("==================== {} ====================", title(name));
        let (text, json) = run(name, measured, threads, faults, checkpoint);
        println!("{text}");
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json dir");
            let path = format!("{dir}/{name}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(json.as_bytes()).expect("write json");
            eprintln!("wrote {path}");
        }
    }
}

fn title(name: &str) -> &'static str {
    match name {
        "table1" => "Table I: platform specifications",
        "fig1" => "Fig. 1: strong EP (E_d vs W, 2-D FFT)",
        "fig2" => "Fig. 2: P100 weak EP and Pareto regions (N = 18432)",
        "fig4" => "Fig. 4: CPU power/performance vs utilization (N = 17408)",
        "fig6" => "Fig. 6: dynamic-energy non-additivity in G",
        "fig7" => "Fig. 7: K40c local Pareto fronts (N = 8704, 10240)",
        "fig8" => "Fig. 8: P100 global Pareto fronts (N = 10240, 14336)",
        "theory" => "Sec. III: two-core nonproportionality theorem",
        "headline" => "Headline savings over the workload grid",
        "ablations" => "Ablations: which mechanism produces which artifact",
        "sensitivity" => "Calibration sensitivity: +/-20% parameter sweeps",
        _ => unreachable!(),
    }
}

/// An executor with `seed`, honouring an explicit `--threads` override.
fn executor(seed: u64, threads: Option<usize>) -> SweepExecutor {
    match threads {
        Some(n) => SweepExecutor::new(seed).with_threads(n),
        None => SweepExecutor::new(seed),
    }
}

/// Routes one checkpointed figure generation: reports per-size resume
/// accounting on stderr and turns a journal error into a clean exit.
fn checkpointed<P>(
    name: &str,
    result: Result<(Vec<P>, Vec<figures::CheckpointSummary>), enprop_apps::CheckpointError>,
) -> Vec<P> {
    let (panels, summaries) = result.unwrap_or_else(|e| {
        eprintln!("error: {name} checkpoint: {e}");
        std::process::exit(2);
    });
    for s in &summaries {
        eprintln!(
            "{name} N = {}: {} replayed from journal, {} measured{}",
            s.n,
            s.replayed,
            s.executed,
            if s.torn_tail_bytes > 0 {
                format!(" ({}-byte torn record dropped)", s.torn_tail_bytes)
            } else {
                String::new()
            }
        );
    }
    panels
}

fn run(
    name: &str,
    measured: Option<u64>,
    threads: Option<usize>,
    faults: Option<f64>,
    checkpoint: Option<(&str, bool)>,
) -> (String, String) {
    // Figs. 7/8 optionally run through the full noisy methodology, with
    // `--faults` additionally routing them through the fault-injecting
    // meter and the retrying sweep, and `--checkpoint` journaling each
    // completed configuration so an interrupted run can `--resume`.
    if let Some(seed) = measured {
        match name {
            "fig7" => {
                let exec = executor(seed, threads);
                let panels = match (checkpoint, faults) {
                    (Some((dir, resume)), rate) => checkpointed(
                        name,
                        figures::fig7::generate_measured_robust_checkpointed(
                            &exec,
                            RetryPolicy::default(),
                            rate.map_or_else(FaultPlan::none, FaultPlan::transient),
                            Path::new(dir),
                            resume,
                        ),
                    ),
                    (None, Some(rate)) => figures::fig7::generate_measured_robust_with(
                        &exec,
                        RetryPolicy::default(),
                        FaultPlan::transient(rate),
                    ),
                    (None, None) => figures::fig7::generate_measured_with(&exec),
                };
                let text = panels
                    .iter()
                    .map(|p| {
                        format!(
                            "K40c (measured, seed {seed}), N = {}: global front {} pt(s), \
                             local front {} pt(s), failed configs {}, local best {:?}\n",
                            p.n,
                            p.global.len(),
                            p.local.len(),
                            p.failed_configs,
                            p.local.best_pair()
                        )
                    })
                    .collect();
                return (text, to_json(&panels));
            }
            "fig8" => {
                let exec = executor(seed, threads);
                let panels = match (checkpoint, faults) {
                    (Some((dir, resume)), rate) => checkpointed(
                        name,
                        figures::fig8::generate_measured_robust_checkpointed(
                            &exec,
                            RetryPolicy::default(),
                            rate.map_or_else(FaultPlan::none, FaultPlan::transient),
                            Path::new(dir),
                            resume,
                        ),
                    ),
                    (None, Some(rate)) => figures::fig8::generate_measured_robust_with(
                        &exec,
                        RetryPolicy::default(),
                        FaultPlan::transient(rate),
                    ),
                    (None, None) => figures::fig8::generate_measured_with(&exec),
                };
                let text = panels
                    .iter()
                    .map(|p| {
                        format!(
                            "P100 (measured, seed {seed}), N = {}: global front {} pt(s), \
                             failed configs {}, best {:?}\n",
                            p.n,
                            p.global.len(),
                            p.failed_configs,
                            p.global.best_pair()
                        )
                    })
                    .collect();
                return (text, to_json(&panels));
            }
            _ => {}
        }
    }
    match name {
        "table1" => (figures::table1::render(), to_json(&figures::table1::generate())),
        "fig1" => (figures::fig1::render(), to_json(&figures::fig1::generate())),
        "fig2" => (figures::fig2::render(), to_json(&figures::fig2::generate())),
        "fig4" => (figures::fig4::render(), to_json(&figures::fig4::generate())),
        "fig6" => (figures::fig6::render(), to_json(&figures::fig6::generate())),
        "fig7" => (figures::fig7::render(), to_json(&figures::fig7::generate())),
        "fig8" => (figures::fig8::render(), to_json(&figures::fig8::generate())),
        "theory" => (figures::theory::render(), to_json(&figures::theory::generate())),
        "headline" => {
            let h = figures::headline::generate_with(&executor(0, threads));
            (figures::headline::render(), to_json(&h))
        }
        "ablations" => {
            let a = figures::ablations::generate_with(&executor(0, threads));
            (figures::ablations::render(), to_json(&a))
        }
        "sensitivity" => {
            let s = figures::sensitivity::generate_with(&executor(0, threads));
            (figures::sensitivity::render(), to_json(&s))
        }
        _ => unreachable!(),
    }
}

/// The `sanitize` subcommand: sweep every shipped kernel configuration
/// through the checkers (or, with `self_test`, the seeded buggy-kernel
/// corpus) and exit non-zero unless the outcome is what a healthy tree
/// must produce — zero findings for the shipped kernels, and exactly the
/// intended checker firing for every fixture. With `--sample K` the sweep
/// monitors 1-in-K blocks (deterministically selected from the run seed);
/// the self-test corpus is always run unsampled, so `--sample` must never
/// cost it a catch.
fn run_sanitize(all: bool, self_test: bool, sample_k: Option<u64>, json_dir: Option<&str>) {
    if self_test {
        if sample_k.is_some() {
            eprintln!("self-test: corpus always runs unsampled; --sample ignored");
        }
        let corpus = enprop_sanitize::fixtures::self_test();
        let mut missed = 0usize;
        for (expected, rep) in &corpus {
            let caught =
                !rep.findings.is_empty() && rep.findings.iter().all(|f| f.checker == *expected);
            println!(
                "{}  {} — {} finding(s), {} suppressed (expected {})",
                if caught { "caught" } else { "MISSED" },
                rep.kernel,
                rep.findings.len(),
                rep.suppressed,
                expected.as_str()
            );
            if let Some(first) = rep.findings.first() {
                println!("        {first}");
            }
            if !caught {
                missed += 1;
            }
        }
        println!(
            "self-test: {}/{} fixtures caught by their intended checker",
            corpus.len() - missed,
            corpus.len()
        );
        if missed > 0 {
            std::process::exit(1);
        }
        return;
    }

    let arch = GpuArch::k40c();
    let sample = sample_k
        .map_or_else(enprop_sanitize::SampleSpec::full, |k| {
            enprop_sanitize::SampleSpec::one_in(k, SANITIZE_SAMPLE_SEED)
        });
    let report = enprop_sanitize::sanitize_all_sampled(&arch, all, sample);
    for k in &report.kernels {
        if k.clean() {
            if sample.is_full() {
                println!("clean  {} — {} block(s)", k.kernel, k.blocks);
            } else {
                println!(
                    "clean  {} — {} of {} block(s) monitored",
                    k.kernel, k.monitored_blocks, k.blocks
                );
            }
        } else {
            println!(
                "DIRTY  {} — {} finding(s), {} suppressed",
                k.kernel,
                k.findings.len(),
                k.suppressed
            );
            for f in k.findings.iter().take(8) {
                println!("        {f}");
            }
            if k.findings.len() > 8 {
                println!("        ... and {} more", k.findings.len() - 8);
            }
        }
    }
    let monitored: usize = report.kernels.iter().map(|k| k.monitored_blocks).sum();
    let blocks: usize = report.kernels.iter().map(|k| k.blocks).sum();
    println!(
        "sanitize: {} launch(es) on {}, {} of {} block(s) monitored{}, {} finding(s){}",
        report.kernels.len(),
        report.arch,
        monitored,
        blocks,
        if sample.is_full() {
            String::new()
        } else {
            format!(" (1-in-{} sampling, seed {SANITIZE_SAMPLE_SEED})", sample.rate())
        },
        report.total_findings(),
        if report.clean() { " — all clean" } else { "" }
    );

    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/SANITIZE_report.json");
        let mut f = std::fs::File::create(&path).expect("create SANITIZE_report.json");
        f.write_all(to_json(&report).as_bytes()).expect("write SANITIZE_report.json");
        eprintln!("wrote {path}");
    }

    if !report.clean() {
        std::process::exit(1);
    }
}

/// Self-describing state of the parallel-speedup `--check` gate, so a
/// JSON consumer can tell an *earned* pass from a physically-forced skip
/// on a small host instead of inferring it from a missing assertion.
#[derive(serde::Serialize)]
struct SpeedupGate {
    /// The wall-clock speedup threshold was actually asserted.
    enforced: bool,
    /// The gate was skipped (1-core hosts: speedup is physically
    /// impossible, only bitwise identity is checked).
    skipped: bool,
    /// Cores available to the process when the decision was made.
    host_cores: usize,
    /// Why the gate was skipped, `None` when it was enforced.
    reason: Option<String>,
}

#[derive(serde::Serialize)]
struct SweepBench {
    workload: String,
    configs: usize,
    threads: usize,
    serial_secs: f64,
    parallel_secs: f64,
    serial_configs_per_sec: f64,
    parallel_configs_per_sec: f64,
    speedup: f64,
    bitwise_identical: bool,
    /// Whether the `--check` speedup gate applies to this run, and if
    /// not, why.
    speedup_gate: SpeedupGate,
}

#[derive(serde::Serialize)]
struct EmulatorBench {
    workload: String,
    blocks: usize,
    /// SIMD tier the phase interpreter's batched bodies dispatched to.
    simd_dispatch: String,
    legacy_secs: f64,
    phase_secs: f64,
    legacy_blocks_per_sec: f64,
    phase_blocks_per_sec: f64,
    speedup: f64,
    results_identical: bool,
}

#[derive(serde::Serialize)]
struct FaultSmoke {
    workload: String,
    fault_rate: f64,
    retry_attempts: usize,
    /// Configurations attempted.
    configs: usize,
    /// Configurations that produced a point (possibly after retries).
    measured: usize,
    /// Configurations that exhausted every retry.
    failed: usize,
    /// Configurations that needed more than one attempt (either way).
    retried: usize,
    /// The exact exhausted-retry set, for the report.
    failed_configs: Vec<String>,
    /// The full failure records (configuration, attempts spent, final
    /// error) behind `failed_configs`, machine-readable.
    failures: Vec<SweepFailure<TiledDgemmConfig>>,
    /// Whether the 1-, 2-, and 8-thread runs produced identical sweeps
    /// (points *and* failure records).
    identical_across_threads: bool,
}

/// The checkpoint-recovery drill: the fault-smoke sweep journaled, killed
/// mid-journal by deterministic crash injection, and resumed.
#[derive(serde::Serialize)]
struct CheckpointRecovery {
    workload: String,
    /// Configurations in the sweep.
    configs: usize,
    /// Unjournaled single-thread sweep wall-clock.
    plain_secs: f64,
    /// The same sweep with every completed configuration journaled
    /// (append + fdatasync per record), single-thread.
    journaled_secs: f64,
    /// `journaled_secs / plain_secs` — the durability tax.
    journal_overhead_ratio: f64,
    /// Durable records the crashed run had journaled before the kill.
    crash_after_records: usize,
    /// Bytes of the torn final record the injected crash left behind.
    torn_bytes_injected: usize,
    /// Bytes of torn trailing record detected and dropped at resume —
    /// must equal `torn_bytes_injected`.
    torn_bytes_dropped: u64,
    /// Configurations replayed from the journal by the resume.
    replayed: usize,
    /// Configurations the resume had to measure again.
    recomputed: usize,
    /// Resumes at 1, 2, and 8 threads all match the uninterrupted sweep
    /// bitwise (points *and* failure records).
    resumed_identical_across_threads: bool,
}

#[derive(serde::Serialize)]
struct SanitizeOverhead {
    workload: String,
    /// SIMD tier of the batched phase bodies both sides run on.
    simd_dispatch: String,
    /// Uninstrumented serial phase-interpreter run (best of 3).
    uninstrumented_secs: f64,
    /// The same launch under a `LaunchMonitor` (best of 3).
    sanitized_secs: f64,
    /// `sanitized_secs / uninstrumented_secs`.
    overhead_ratio: f64,
    /// Findings from the sanitized run — must be 0 for the shipped kernel.
    findings: usize,
    /// The sanitized run left the output bitwise-identical.
    results_identical: bool,
}

/// The batched SoA fast path vs the scalar per-thread interpreter, both
/// uninstrumented and serial, with results and event-counter totals
/// compared exactly — plus the explicit-SIMD bodies vs the same batch
/// bodies pinned to the scalar-sse2 tier (the PR 7 auto-vectorized
/// baseline).
#[derive(serde::Serialize)]
struct EmulatorBatchBench {
    workload: String,
    blocks: usize,
    /// SIMD tier the production batched bodies dispatched to.
    simd_dispatch: String,
    /// Scalar per-thread phase loop (`ScalarProbe` baseline), best of 3.
    scalar_secs: f64,
    /// Batched SoA phase bodies (the production `NoSink` path, explicit
    /// SIMD at `simd_dispatch`), best of 3.
    batched_secs: f64,
    /// The same batch bodies pinned to the scalar-sse2 tier — PR 7's
    /// auto-vectorized loops — best of 3.
    autovec_batched_secs: f64,
    scalar_blocks_per_sec: f64,
    batched_blocks_per_sec: f64,
    /// `scalar_secs / batched_secs` — gated >= 2x by `--check`.
    speedup: f64,
    /// `autovec_batched_secs / batched_secs` — gated >= 1.3x by `--check`
    /// whenever `simd_dispatch` is not `scalar-sse2` (on a scalar host the
    /// two paths are the same code and the gate is skipped).
    simd_speedup: f64,
    /// The batched output is bitwise-identical to the scalar output.
    results_identical: bool,
    /// The batched event-counter totals equal the scalar totals exactly.
    counters_identical: bool,
    /// The explicit-SIMD output and counters are bitwise-identical to the
    /// pinned scalar-sse2 batch bodies.
    simd_results_identical: bool,
}

/// Packed register-tiled host DGEMM vs the unpacked blocked baseline, and
/// the twiddle-hoisted 2-D FFT, in GFLOPS.
#[derive(serde::Serialize)]
struct HostKernelsBench {
    /// DGEMM problem shape, e.g. `m=k=n=256, bs=64`.
    dgemm_shape: String,
    /// Unpacked three-loop blocked kernel (the old `dgemm_blocked`),
    /// best of 3.
    dgemm_unpacked_secs: f64,
    /// Packed-panel 4x4 register-tiled kernel, best of 3.
    dgemm_packed_secs: f64,
    dgemm_unpacked_gflops: f64,
    dgemm_packed_gflops: f64,
    /// `unpacked_secs / packed_secs` — gated >= 1.5x by `--check`.
    dgemm_speedup: f64,
    /// Packed output matches the unpacked baseline to 1e-8 absolute.
    dgemm_results_match: bool,
    /// 2-D FFT shape, e.g. `512 x 512`.
    fft2d_shape: String,
    /// Serial twiddle-hoisted 2-D FFT, best of 3.
    fft2d_secs: f64,
    /// By the paper's work measure `5 N^2 log2 N`.
    fft2d_gflops: f64,
    /// Instruction-set tier the host DGEMM driver dispatched to
    /// (`avx2` or `scalar`).
    simd_dispatch: String,
}

/// Multi-threaded host kernels (PR 8): the packed DGEMM run over
/// cursor-claimed row slabs and the chunk-claiming 2-D FFT, against their
/// serial forms. Identity is bitwise at every thread count; the wall-clock
/// speedup gate follows the `speedup_gate` convention (skipped
/// self-describingly on hosts that cannot speed up).
#[derive(serde::Serialize)]
struct HostKernelsMt {
    workload: String,
    /// Instruction-set tier the packed DGEMM driver dispatched to.
    simd_dispatch: String,
    /// Worker count of the timed MT runs below (identity is additionally
    /// checked at 1, 2, and 8 threads).
    threads: usize,
    /// Serial packed DGEMM, best of 3.
    dgemm_serial_secs: f64,
    /// `dgemm_blocked_mt` at `threads` workers, best of 3.
    dgemm_mt_secs: f64,
    /// `dgemm_serial_secs / dgemm_mt_secs`.
    dgemm_speedup: f64,
    /// MT output bitwise-equals the serial output at 1, 2, and 8 threads.
    dgemm_identical_across_threads: bool,
    /// Serial 2-D FFT, best of 3.
    fft2d_serial_secs: f64,
    /// `fft2d_parallel` at `threads` workers, best of 3.
    fft2d_mt_secs: f64,
    /// `fft2d_serial_secs / fft2d_mt_secs`.
    fft2d_speedup: f64,
    /// Parallel output bitwise-equals the serial output at 1, 2, and 8
    /// threads.
    fft2d_identical_across_threads: bool,
    /// Whether the `--check` MT speedup gate applies to this run, and if
    /// not, why (1-core hosts cannot speed up; identity is still gated).
    speedup_gate: SpeedupGate,
}

/// 1-in-k sampled sanitizing vs full monitoring vs the uninstrumented
/// scalar interpreter (the path the monitor instruments), plus the
/// self-test corpus run with sampling requested.
#[derive(serde::Serialize)]
struct SanitizeSampled {
    workload: String,
    /// The sampling denominator benchmarked (`--sample K` with K = 8).
    sample_k: u64,
    blocks: usize,
    /// Blocks the sampled run actually monitored.
    monitored_blocks: usize,
    /// Uninstrumented scalar serial run, best of 3 — the baseline, since
    /// monitored blocks run on the scalar path.
    scalar_secs: f64,
    /// Every block monitored, best of 3.
    full_secs: f64,
    /// 1-in-k blocks monitored, best of 3.
    sampled_secs: f64,
    /// `sampled_secs / scalar_secs` — gated <= 3x by `--check`.
    overhead_vs_scalar: f64,
    /// `full_secs / sampled_secs`, what sampling buys (informative).
    speedup_vs_full: f64,
    /// Findings from the sampled run — must be 0 for the shipped kernel.
    findings: usize,
    /// The sampled run left the output bitwise-identical.
    results_identical: bool,
    /// Self-test fixtures caught by their intended checker when sampling
    /// is requested (the corpus always runs unsampled by design) — must
    /// equal `selftest_total`.
    selftest_caught: usize,
    selftest_total: usize,
    /// SIMD tier of the batched bodies the unmonitored blocks run on.
    simd_dispatch: String,
}

/// Full monitoring riding the batched bulk trace path (PR 8 —
/// `MonitorSink::BULK` consumes per-phase access batches) vs per-access
/// scalar-hook monitoring (pinned via `ForceScalar`) vs the
/// uninstrumented scalar interpreter.
#[derive(serde::Serialize)]
struct SanitizeBatched {
    workload: String,
    /// SIMD tier of the batched bodies the monitored run executes.
    simd_dispatch: String,
    /// Uninstrumented scalar-interpreter baseline, best of 3.
    scalar_secs: f64,
    /// Full monitoring through the per-access scalar hooks
    /// (`ForceScalar` pins the interpreter loop), best of 2.
    monitored_scalar_secs: f64,
    /// Full monitoring riding the batched bulk trace path, best of 3.
    monitored_batched_secs: f64,
    /// `monitored_batched_secs / scalar_secs` — gated <= 8x by `--check`.
    overhead_vs_scalar: f64,
    /// `monitored_scalar_secs / monitored_batched_secs` — what the bulk
    /// path buys over per-access monitoring (informative).
    speedup_vs_scalar_monitoring: f64,
    /// Findings from the batched-monitored run — must be 0 for the
    /// shipped kernel.
    findings: usize,
    /// The batched-monitored findings equal the scalar-monitored findings
    /// exactly (count, order, and content).
    findings_identical: bool,
    /// Both monitored runs left the output bitwise-identical to the
    /// uninstrumented run.
    results_identical: bool,
    /// Self-test fixtures still caught with the bulk-capable sink — must
    /// equal `selftest_total`.
    selftest_caught: usize,
    selftest_total: usize,
}

/// The sweep-serving daemon exercised end-to-end in-process: request
/// bytes must be a pure function of the request (cold compute, warm hit,
/// and a cache-bypassing recomputation all bitwise-equal), and the mixed
/// hot/cold concurrent load must produce hits and identical hot bodies.
#[derive(serde::Serialize)]
struct ServeThroughput {
    workload: String,
    /// Concurrent load-generator clients.
    clients: usize,
    /// Total requests the load generator issued.
    requests: usize,
    /// Requests answered 200 with a well-formed body.
    ok: usize,
    /// Wall-clock of the load run, seconds.
    secs: f64,
    requests_per_sec: f64,
    /// `hits / (hits + misses)` over the load run — gated > 0 by `--check`.
    cache_hit_rate: f64,
    /// `X-Cache: hit` responses in the load run.
    hits: usize,
    /// `X-Cache: miss` responses in the load run.
    misses: usize,
    /// Every hot key's responses were byte-identical across all clients.
    hot_bodies_identical: bool,
    /// A `no_cache` recomputation equals the cached body bitwise — the
    /// cache serves *exact* results, not stale approximations.
    cached_equals_fresh: bool,
    /// The warm cache hit replayed the cold body bitwise.
    hit_equals_cold: bool,
    /// Whether the daemon could run at all, and if not, why (hosts
    /// without loopback sockets skip self-describingly).
    socket_gate: SpeedupGate,
}

#[derive(serde::Serialize)]
struct BenchReport {
    /// Host cores available to the process — the physical ceiling on any
    /// wall-clock parallel speedup reported below.
    host_cores: usize,
    sweep: SweepBench,
    emulator: EmulatorBench,
    emulator_batch: EmulatorBatchBench,
    host_kernels: HostKernelsBench,
    host_kernels_mt: HostKernelsMt,
    fault_smoke: FaultSmoke,
    checkpoint_recovery: CheckpointRecovery,
    sanitize_overhead: SanitizeOverhead,
    sanitize_sampled: SanitizeSampled,
    sanitize_batched: SanitizeBatched,
    static_verify: StaticVerifyBench,
    serve_throughput: ServeThroughput,
}

/// The `static_verify` bench section: the static launch-space verifier's
/// full pipeline (probe-based model learning + the analytic sweep of
/// every fig7/fig8 lattice config) timed against the dynamic
/// `sanitize --all` instrumented sweep, plus the fixture corpus and the
/// closed-form counter cross-validation.
#[derive(serde::Serialize)]
struct StaticVerifyBench {
    /// Workload description.
    workload: String,
    /// Tiny instrumented probe launches the family model learned from.
    probe_launches: usize,
    /// Lattice configurations verified analytically across all four
    /// fig7/fig8 sweeps.
    lattice_configs: usize,
    /// Static findings across the lattice sweep (a clean tree has 0).
    findings: usize,
    /// Static fallbacks across the lattice sweep (0: every config was
    /// actually proven, none silently handed back to the dynamic path).
    fallbacks: usize,
    /// Seeded buggy fixtures flagged statically by exactly the intended
    /// checker.
    fixtures_flagged: usize,
    /// Fixtures whose static diagnostics name the same checker / phase /
    /// buffer as the dynamic sanitizer's findings.
    fixtures_parity: usize,
    /// Fixtures in the corpus.
    fixtures_total: usize,
    /// Executable validation configs whose closed-form event counts
    /// equal the flushed `EmuEvents` bitwise.
    counts_exact: usize,
    /// Executable validation configs run.
    counts_validated: usize,
    /// Model learning wall-clock (probe + fit + verify).
    learn_secs: f64,
    /// Analytic four-lattice sweep wall-clock.
    sweep_secs: f64,
    /// Total static wall-clock (`learn_secs + sweep_secs`).
    static_secs: f64,
    /// Dynamic reference: the `sanitize --all` instrumented sweep.
    dynamic_secs: f64,
    /// `dynamic_secs / static_secs`.
    speedup: f64,
    /// The dynamic reference sweep was itself clean (context for the
    /// zero-findings claim, not a gated value — the `sanitize_overhead`
    /// section owns that gate).
    dynamic_clean: bool,
}

/// Times the Fig. 7 measured workload (K40c, N = 8704 and 10240) serially
/// and in parallel, checks bitwise identity; times the emulator old-vs-new
/// engines on tiled DGEMM (N = 128, or 256 with `full`); writes
/// `BENCH_sweep.json`. With `check`, exits non-zero on a perf regression
/// (see module docs).
fn bench_sweep(
    threads: Option<usize>,
    fault_rate: f64,
    json_dir: Option<&str>,
    check: bool,
    full: bool,
) {
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let app = GpuMatMulApp::new(GpuArch::k40c(), 8);
    let sizes = [8704usize, 10240];
    let serial = SweepExecutor::serial(42);
    let parallel = executor(42, threads);

    let start = Instant::now();
    let serial_pts: Vec<_> = sizes.iter().map(|&n| app.sweep_measured(n, &serial)).collect();
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel_pts: Vec<_> = sizes.iter().map(|&n| app.sweep_measured(n, &parallel)).collect();
    let parallel_secs = start.elapsed().as_secs_f64();

    let configs: usize = serial_pts.iter().map(|pts| pts.len()).sum();
    let bitwise_identical = serial_pts == parallel_pts;
    let speedup_gate = if parallel.threads() < 4 {
        SpeedupGate {
            enforced: false,
            skipped: true,
            host_cores,
            reason: Some(format!(
                "gate applies only at >= 4 threads; this run used {}",
                parallel.threads()
            )),
        }
    } else if host_cores < 4 {
        SpeedupGate {
            enforced: false,
            skipped: true,
            host_cores,
            reason: Some(format!(
                "host has {host_cores} core(s), so wall-clock parallel speedup is \
                 physically impossible; bitwise identity is still verified"
            )),
        }
    } else {
        SpeedupGate { enforced: true, skipped: false, host_cores, reason: None }
    };
    let sweep = SweepBench {
        workload: "fig7 measured sweep (K40c, N = 8704 + 10240)".into(),
        configs,
        threads: parallel.threads(),
        serial_secs,
        parallel_secs,
        serial_configs_per_sec: configs as f64 / serial_secs,
        parallel_configs_per_sec: configs as f64 / parallel_secs,
        speedup: serial_secs / parallel_secs,
        bitwise_identical,
        speedup_gate,
    };

    println!(
        "sweep: {} configurations, {} thread(s): serial {:.2}s ({:.0} cfg/s), \
         parallel {:.2}s ({:.0} cfg/s), speedup {:.2}x, identical: {}",
        sweep.configs,
        sweep.threads,
        sweep.serial_secs,
        sweep.serial_configs_per_sec,
        sweep.parallel_secs,
        sweep.parallel_configs_per_sec,
        sweep.speedup,
        sweep.bitwise_identical
    );
    assert!(bitwise_identical, "parallel sweep diverged from serial output");

    let emulator = bench_emulator_engines(full);
    println!(
        "emulator: {} ({} blocks, {}): legacy {:.2}s ({:.0} blk/s), \
         phase {:.3}s ({:.0} blk/s), speedup {:.1}x, identical: {}",
        emulator.workload,
        emulator.blocks,
        emulator.simd_dispatch,
        emulator.legacy_secs,
        emulator.legacy_blocks_per_sec,
        emulator.phase_secs,
        emulator.phase_blocks_per_sec,
        emulator.speedup,
        emulator.results_identical
    );
    assert!(emulator.results_identical, "phase engine diverged from legacy engine");

    let emulator_batch = bench_emulator_batch();
    println!(
        "emulator batch: {} ({} blocks, {}): scalar {:.3}s ({:.0} blk/s), \
         autovec {:.3}s, batched {:.3}s ({:.0} blk/s), speedup {:.2}x \
         (simd {:.2}x), identical: {} (counters: {}, simd: {})",
        emulator_batch.workload,
        emulator_batch.blocks,
        emulator_batch.simd_dispatch,
        emulator_batch.scalar_secs,
        emulator_batch.scalar_blocks_per_sec,
        emulator_batch.autovec_batched_secs,
        emulator_batch.batched_secs,
        emulator_batch.batched_blocks_per_sec,
        emulator_batch.speedup,
        emulator_batch.simd_speedup,
        emulator_batch.results_identical,
        emulator_batch.counters_identical,
        emulator_batch.simd_results_identical
    );
    assert!(emulator_batch.results_identical, "batched path diverged from scalar output");
    assert!(emulator_batch.counters_identical, "batched path diverged from scalar counters");
    assert!(
        emulator_batch.simd_results_identical,
        "explicit-SIMD bodies diverged from the pinned scalar-sse2 batch bodies"
    );

    let host_kernels = bench_host_kernels();
    println!(
        "host kernels: dgemm {}: unpacked {:.3}s ({:.2} GFLOPS), \
         packed {:.3}s ({:.2} GFLOPS), speedup {:.2}x, match: {}; \
         fft2d {}: {:.3}s ({:.2} GFLOPS)",
        host_kernels.dgemm_shape,
        host_kernels.dgemm_unpacked_secs,
        host_kernels.dgemm_unpacked_gflops,
        host_kernels.dgemm_packed_secs,
        host_kernels.dgemm_packed_gflops,
        host_kernels.dgemm_speedup,
        host_kernels.dgemm_results_match,
        host_kernels.fft2d_shape,
        host_kernels.fft2d_secs,
        host_kernels.fft2d_gflops
    );
    assert!(host_kernels.dgemm_results_match, "packed DGEMM diverged from the unpacked baseline");

    let host_kernels_mt = bench_host_kernels_mt(host_cores);
    println!(
        "host kernels mt: {} ({}, {} thread(s)): dgemm serial {:.3}s, \
         mt {:.3}s ({:.2}x), identical across 1/2/8: {}; \
         fft2d serial {:.3}s, mt {:.3}s ({:.2}x), identical across 1/2/8: {}",
        host_kernels_mt.workload,
        host_kernels_mt.simd_dispatch,
        host_kernels_mt.threads,
        host_kernels_mt.dgemm_serial_secs,
        host_kernels_mt.dgemm_mt_secs,
        host_kernels_mt.dgemm_speedup,
        host_kernels_mt.dgemm_identical_across_threads,
        host_kernels_mt.fft2d_serial_secs,
        host_kernels_mt.fft2d_mt_secs,
        host_kernels_mt.fft2d_speedup,
        host_kernels_mt.fft2d_identical_across_threads
    );
    assert!(
        host_kernels_mt.dgemm_identical_across_threads,
        "multi-threaded DGEMM diverged from the serial kernel"
    );
    assert!(
        host_kernels_mt.fft2d_identical_across_threads,
        "parallel 2-D FFT diverged from the serial kernel"
    );

    let fault_smoke = bench_fault_smoke(fault_rate);
    println!(
        "fault smoke: {} at {:.0}% transient rate, {} attempt(s): \
         {} measured + {} failed of {} configs ({} retried), \
         identical across 1/2/8 threads: {}",
        fault_smoke.workload,
        fault_smoke.fault_rate * 100.0,
        fault_smoke.retry_attempts,
        fault_smoke.measured,
        fault_smoke.failed,
        fault_smoke.configs,
        fault_smoke.retried,
        fault_smoke.identical_across_threads
    );
    if !fault_smoke.failed_configs.is_empty() {
        println!("fault smoke: exhausted retries on {}", fault_smoke.failed_configs.join(", "));
    }

    let checkpoint_recovery = bench_checkpoint_recovery(fault_rate);
    println!(
        "checkpoint recovery: {}: plain {:.2}s, journaled {:.2}s ({:.3}x overhead); \
         crashed after {} record(s) + {} torn byte(s), resume dropped {} torn byte(s), \
         replayed {} + recomputed {} of {} configs, \
         resumed identical across 1/2/8 threads: {}",
        checkpoint_recovery.workload,
        checkpoint_recovery.plain_secs,
        checkpoint_recovery.journaled_secs,
        checkpoint_recovery.journal_overhead_ratio,
        checkpoint_recovery.crash_after_records,
        checkpoint_recovery.torn_bytes_injected,
        checkpoint_recovery.torn_bytes_dropped,
        checkpoint_recovery.replayed,
        checkpoint_recovery.recomputed,
        checkpoint_recovery.configs,
        checkpoint_recovery.resumed_identical_across_threads
    );

    let sanitize_overhead = bench_sanitize_overhead();
    println!(
        "sanitize overhead: {}: uninstrumented {:.3}s, sanitized {:.3}s \
         ({:.1}x), {} finding(s), identical: {}",
        sanitize_overhead.workload,
        sanitize_overhead.uninstrumented_secs,
        sanitize_overhead.sanitized_secs,
        sanitize_overhead.overhead_ratio,
        sanitize_overhead.findings,
        sanitize_overhead.results_identical
    );

    let sanitize_sampled = bench_sanitize_sampled();
    println!(
        "sanitize sampled: {} (k = {}): scalar {:.3}s, full {:.3}s, \
         sampled {:.3}s ({:.2}x over scalar, {:.2}x faster than full), \
         {} of {} block(s) monitored, {} finding(s), identical: {}, \
         self-test {}/{}",
        sanitize_sampled.workload,
        sanitize_sampled.sample_k,
        sanitize_sampled.scalar_secs,
        sanitize_sampled.full_secs,
        sanitize_sampled.sampled_secs,
        sanitize_sampled.overhead_vs_scalar,
        sanitize_sampled.speedup_vs_full,
        sanitize_sampled.monitored_blocks,
        sanitize_sampled.blocks,
        sanitize_sampled.findings,
        sanitize_sampled.results_identical,
        sanitize_sampled.selftest_caught,
        sanitize_sampled.selftest_total
    );

    let sanitize_batched = bench_sanitize_batched();
    println!(
        "sanitize batched: {} ({}): scalar {:.3}s, monitored scalar {:.3}s, \
         monitored batched {:.3}s ({:.2}x over scalar, {:.2}x faster than \
         scalar monitoring), {} finding(s), findings identical: {}, \
         results identical: {}, self-test {}/{}",
        sanitize_batched.workload,
        sanitize_batched.simd_dispatch,
        sanitize_batched.scalar_secs,
        sanitize_batched.monitored_scalar_secs,
        sanitize_batched.monitored_batched_secs,
        sanitize_batched.overhead_vs_scalar,
        sanitize_batched.speedup_vs_scalar_monitoring,
        sanitize_batched.findings,
        sanitize_batched.findings_identical,
        sanitize_batched.results_identical,
        sanitize_batched.selftest_caught,
        sanitize_batched.selftest_total
    );
    assert!(
        sanitize_batched.findings_identical,
        "batched-monitoring findings diverged from the scalar monitored run"
    );
    assert!(
        sanitize_batched.results_identical,
        "a monitored run diverged from the uninstrumented scalar output"
    );

    let static_verify = bench_static_verify();
    println!(
        "static verify: {}: dynamic {:.2}s, static {:.3}s (learn {:.3}s + sweep {:.3}s), \
         speedup {:.1}x; {} lattice config(s), {} finding(s), {} fallback(s); \
         fixtures {}/{} caught ({} parity); counts exact {}/{}",
        static_verify.workload,
        static_verify.dynamic_secs,
        static_verify.static_secs,
        static_verify.learn_secs,
        static_verify.sweep_secs,
        static_verify.speedup,
        static_verify.lattice_configs,
        static_verify.findings,
        static_verify.fallbacks,
        static_verify.fixtures_flagged,
        static_verify.fixtures_total,
        static_verify.fixtures_parity,
        static_verify.counts_exact,
        static_verify.counts_validated
    );

    let serve_throughput = bench_serve_throughput(host_cores);
    if serve_throughput.socket_gate.skipped {
        println!(
            "serve throughput: SKIPPED — {}",
            serve_throughput.socket_gate.reason.as_deref().unwrap_or("unknown reason")
        );
    } else {
        println!(
            "serve throughput: {} ({} clients): {}/{} ok, {:.0} req/s, \
             hit rate {:.2} ({} hits / {} misses), hot identical: {}, \
             cached == fresh: {}, hit == cold: {}",
            serve_throughput.workload,
            serve_throughput.clients,
            serve_throughput.ok,
            serve_throughput.requests,
            serve_throughput.requests_per_sec,
            serve_throughput.cache_hit_rate,
            serve_throughput.hits,
            serve_throughput.misses,
            serve_throughput.hot_bodies_identical,
            serve_throughput.cached_equals_fresh,
            serve_throughput.hit_equals_cold
        );
    }

    let report = BenchReport {
        host_cores,
        sweep,
        emulator,
        emulator_batch,
        host_kernels,
        host_kernels_mt,
        fault_smoke,
        checkpoint_recovery,
        sanitize_overhead,
        sanitize_sampled,
        sanitize_batched,
        static_verify,
        serve_throughput,
    };

    let dir = json_dir.unwrap_or(".");
    std::fs::create_dir_all(dir).expect("create json dir");
    let path = format!("{dir}/BENCH_sweep.json");
    let mut f = std::fs::File::create(&path).expect("create BENCH_sweep.json");
    f.write_all(to_json(&report).as_bytes()).expect("write BENCH_sweep.json");
    eprintln!("wrote {path}");

    if check {
        run_perf_gate(&report);
    }
}

/// Old-vs-new engine comparison: tiled DGEMM at BS = 16 — a grid of
/// 256-thread blocks through the retired OS-thread engine and the phase
/// interpreter, same inputs, results compared bitwise. Defaults to
/// N = 128 (an 8 × 8 grid): the OS-thread engine spawns one OS thread per
/// CUDA thread and used to spend ~15 s of the benchmark's wall-clock on
/// the N = 256 workload; `full` restores that historical size. The
/// workload string names the size actually used.
fn bench_emulator_engines(full: bool) -> EmulatorBench {
    let n = if full { 256usize } else { 128 };
    let bs = 16usize;
    let cfg = TiledDgemmConfig { n, bs, g: 1, r: 1 };
    let blocks = (n / bs) * (n / bs);
    let host_a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
    let host_b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
    let emu = EmuDgemm::new(cfg);

    let (a, b, c_legacy) =
        (GlobalMem::from_slice(&host_a), GlobalMem::from_slice(&host_b), GlobalMem::zeroed(n * n));
    let start = Instant::now();
    emu.run_legacy(&a, &b, &c_legacy);
    let legacy_secs = start.elapsed().as_secs_f64();

    // The phase run is fast enough to jitter; take the best of three.
    let mut phase_secs = f64::INFINITY;
    let mut c_phase = GlobalMem::zeroed(n * n);
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        emu.with_wave(WavePlan::auto()).run(&a, &b, &c);
        phase_secs = phase_secs.min(start.elapsed().as_secs_f64());
        c_phase = c;
    }

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    EmulatorBench {
        workload: format!(
            "tiled DGEMM (N = {n}, BS = {bs}, G = 1, R = 1{})",
            if full { "" } else { "; default-reduced, --full restores N = 256" }
        ),
        blocks,
        simd_dispatch: SimdPath::detect().as_str().to_string(),
        legacy_secs,
        phase_secs,
        legacy_blocks_per_sec: blocks as f64 / legacy_secs,
        phase_blocks_per_sec: blocks as f64 / phase_secs,
        speedup: legacy_secs / phase_secs,
        results_identical: bits(&c_legacy) == bits(&c_phase),
    }
}

/// Instrumentation cost of the sanitizer on tiled DGEMM at N = 256,
/// BS = 16: the serial phase interpreter with the no-op sink (which
/// monomorphizes away) vs the same launch under a `LaunchMonitor`. Since
/// PR 8 the monitored side rides the batched bulk trace path
/// (`MonitorSink::BULK` consumes per-phase access batches), so this ratio
/// prices full monitoring against the *batched* fast path — the
/// apples-to-apples cost against the scalar interpreter is in the
/// `sanitize_batched` section. Both sides run serially so the ratio
/// isolates the shadow-memory cost rather than parallelism, and both are
/// best-of-3.
fn bench_sanitize_overhead() -> SanitizeOverhead {
    let n = 256usize;
    let bs = 16usize;
    let cfg = TiledDgemmConfig { n, bs, g: 1, r: 1 };
    let host_a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
    let host_b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
    let emu = EmuDgemm::new(cfg).with_wave(WavePlan::fixed(1));

    let (a, b) = (GlobalMem::from_slice(&host_a), GlobalMem::from_slice(&host_b));
    let mut plain_secs = f64::INFINITY;
    let mut c_plain = GlobalMem::zeroed(n * n);
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        emu.run(&a, &b, &c);
        plain_secs = plain_secs.min(start.elapsed().as_secs_f64());
        c_plain = c;
    }

    let mut sanitized_secs = f64::INFINITY;
    let mut c_sanitized = GlobalMem::zeroed(n * n);
    let mut findings = 0usize;
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let mut table = enprop_sanitize::BufferTable::new();
        table.register(a.id(), "A", n * n);
        table.register(b.id(), "B", n * n);
        table.register(c.id(), "C", n * n);
        let monitor = enprop_sanitize::LaunchMonitor::new(table, 2 * bs * bs);
        let start = Instant::now();
        emu.run_monitored(
            &a,
            &b,
            &c,
            |_, _| {
                monitor.begin_block();
                monitor.sink()
            },
            |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
        );
        sanitized_secs = sanitized_secs.min(start.elapsed().as_secs_f64());
        let out = monitor.finish();
        findings = out.findings.len() + out.suppressed;
        c_sanitized = c;
    }

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    SanitizeOverhead {
        workload: "tiled DGEMM (N = 256, BS = 16, G = 1, R = 1), serial waves".into(),
        simd_dispatch: SimdPath::detect().as_str().to_string(),
        uninstrumented_secs: plain_secs,
        sanitized_secs,
        overhead_ratio: sanitized_secs / plain_secs,
        findings,
        results_identical: bits(&c_plain) == bits(&c_sanitized),
    }
}

/// Batched-vs-scalar comparison on the uninstrumented interpreter: tiled
/// DGEMM at N = 256, BS = 16, serial waves. The scalar side runs through
/// `run_unbatched` (a transparent non-inert sink pins the per-thread phase
/// loop); the batched side is the production `run` path with its
/// explicit-SIMD SoA phase bodies; a third side pins the same batch
/// bodies to the scalar-sse2 tier (PR 7's auto-vectorized loops) to price
/// the explicit SIMD alone. Results and event-counter totals must all
/// match exactly.
fn bench_emulator_batch() -> EmulatorBatchBench {
    let n = 256usize;
    let bs = 16usize;
    let cfg = TiledDgemmConfig { n, bs, g: 1, r: 1 };
    let blocks = (n / bs) * (n / bs);
    let host_a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
    let host_b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
    let emu = EmuDgemm::new(cfg).with_wave(WavePlan::fixed(1));
    let (a, b) = (GlobalMem::from_slice(&host_a), GlobalMem::from_slice(&host_b));

    let mut scalar_secs = f64::INFINITY;
    let mut c_scalar = GlobalMem::zeroed(n * n);
    let mut ev_scalar = Default::default();
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        let ev = emu.run_unbatched(&a, &b, &c);
        scalar_secs = scalar_secs.min(start.elapsed().as_secs_f64());
        c_scalar = c;
        ev_scalar = ev;
    }

    let mut batched_secs = f64::INFINITY;
    let mut c_batched = GlobalMem::zeroed(n * n);
    let mut ev_batched = Default::default();
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        let ev = emu.run(&a, &b, &c);
        batched_secs = batched_secs.min(start.elapsed().as_secs_f64());
        c_batched = c;
        ev_batched = ev;
    }

    let pinned = EmuDgemm::new(cfg).with_wave(WavePlan::fixed(1)).with_simd(SimdPath::ScalarSse2);
    let mut autovec_batched_secs = f64::INFINITY;
    let mut c_pinned = GlobalMem::zeroed(n * n);
    let mut ev_pinned = Default::default();
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        let ev = pinned.run(&a, &b, &c);
        autovec_batched_secs = autovec_batched_secs.min(start.elapsed().as_secs_f64());
        c_pinned = c;
        ev_pinned = ev;
    }

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    EmulatorBatchBench {
        workload: "tiled DGEMM (N = 256, BS = 16, G = 1, R = 1), serial waves".into(),
        blocks,
        simd_dispatch: emu.simd().as_str().to_string(),
        scalar_secs,
        batched_secs,
        autovec_batched_secs,
        scalar_blocks_per_sec: blocks as f64 / scalar_secs,
        batched_blocks_per_sec: blocks as f64 / batched_secs,
        speedup: scalar_secs / batched_secs,
        simd_speedup: autovec_batched_secs / batched_secs,
        results_identical: bits(&c_scalar) == bits(&c_batched),
        counters_identical: ev_scalar == ev_batched,
        simd_results_identical: bits(&c_batched) == bits(&c_pinned) && ev_batched == ev_pinned,
    }
}

/// Host-kernel throughput: the packed 4x4 register-tiled DGEMM against
/// the retained unpacked blocked baseline (same shape and block size,
/// `2 m k n` flops), plus the serial twiddle-hoisted 2-D FFT by the
/// paper's `5 N^2 log2 N` work measure. All timings best-of-3.
fn bench_host_kernels() -> HostKernelsBench {
    use enprop_kernels::{dgemm_blocked, dgemm_blocked_unpacked, fft2d_serial, Complex};

    let (m, k, n, bs) = (256usize, 256usize, 256usize, 64usize);
    let a: Vec<f64> = (0..m * k).map(|i| ((i % 11) as f64 - 5.0) * 0.25).collect();
    let b: Vec<f64> = (0..k * n).map(|i| ((i % 13) as f64 - 6.0) * 0.125).collect();
    let c0: Vec<f64> = (0..m * n).map(|i| ((i % 7) as f64 - 3.0) * 0.5).collect();
    let flops = 2.0 * m as f64 * k as f64 * n as f64;

    // The two kernels alternate within each round so scheduler noise on a
    // shared host hits both sides alike; best-of-7 per side.
    let mut unpacked_secs = f64::INFINITY;
    let mut packed_secs = f64::INFINITY;
    let mut c_unpacked = Vec::new();
    let mut c_packed = Vec::new();
    for _ in 0..7 {
        let mut c = c0.clone();
        let start = Instant::now();
        dgemm_blocked_unpacked(1.25, &a, &b, 0.75, &mut c, m, k, n, bs);
        unpacked_secs = unpacked_secs.min(start.elapsed().as_secs_f64());
        c_unpacked = c;

        let mut c = c0.clone();
        let start = Instant::now();
        dgemm_blocked(1.25, &a, &b, 0.75, &mut c, m, k, n, bs);
        packed_secs = packed_secs.min(start.elapsed().as_secs_f64());
        c_packed = c;
    }

    let max_abs_diff = c_unpacked
        .iter()
        .zip(&c_packed)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);

    let fft_n = 512usize;
    let signal: Vec<Complex> = (0..fft_n * fft_n)
        .map(|i| Complex::new(((i % 17) as f64 - 8.0) * 0.1, ((i % 19) as f64 - 9.0) * 0.1))
        .collect();
    let mut fft2d_secs = f64::INFINITY;
    for _ in 0..3 {
        let mut x = signal.clone();
        let start = Instant::now();
        fft2d_serial(&mut x, fft_n);
        fft2d_secs = fft2d_secs.min(start.elapsed().as_secs_f64());
    }
    let fft_work = enprop_kernels::fft2d_work(fft_n);

    HostKernelsBench {
        dgemm_shape: format!("m=k=n={m}, bs={bs}, alpha=1.25, beta=0.75"),
        dgemm_unpacked_secs: unpacked_secs,
        dgemm_packed_secs: packed_secs,
        dgemm_unpacked_gflops: flops / unpacked_secs / 1e9,
        dgemm_packed_gflops: flops / packed_secs / 1e9,
        dgemm_speedup: unpacked_secs / packed_secs,
        dgemm_results_match: max_abs_diff < 1e-8,
        fft2d_shape: format!("{fft_n} x {fft_n}"),
        fft2d_secs,
        fft2d_gflops: fft_work / fft2d_secs / 1e9,
        simd_dispatch: enprop_kernels::simd_dispatch().to_string(),
    }
}

/// Multi-threaded host kernels against their serial forms: the packed
/// DGEMM over cursor-claimed row slabs (`dgemm_blocked_mt`) and the
/// chunk-claiming 2-D FFT (`fft2d_parallel`). Output must be
/// bitwise-identical to the serial kernel at 1, 2, and 8 threads — the
/// slab/row decompositions never reorder any element's arithmetic — and
/// the 8-thread wall-clock is reported. The speedup gate follows the
/// `speedup_gate` convention: on hosts under 4 cores wall-clock speedup
/// is physically impossible, so only identity is gated.
fn bench_host_kernels_mt(host_cores: usize) -> HostKernelsMt {
    use enprop_kernels::{dgemm_blocked, dgemm_blocked_mt, fft2d_parallel, fft2d_serial, Complex};

    let threads = 8usize;
    let fbits = |s: &[f64]| s.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    let cbits = |s: &[Complex]| {
        s.iter().flat_map(|c| [c.re.to_bits(), c.im.to_bits()]).collect::<Vec<_>>()
    };

    let (m, k, n, bs) = (256usize, 256usize, 256usize, 64usize);
    let a: Vec<f64> = (0..m * k).map(|i| ((i % 11) as f64 - 5.0) * 0.25).collect();
    let b: Vec<f64> = (0..k * n).map(|i| ((i % 13) as f64 - 6.0) * 0.125).collect();
    let c0: Vec<f64> = (0..m * n).map(|i| ((i % 7) as f64 - 3.0) * 0.5).collect();

    let mut dgemm_serial_secs = f64::INFINITY;
    let mut c_serial = Vec::new();
    for _ in 0..3 {
        let mut c = c0.clone();
        let start = Instant::now();
        dgemm_blocked(1.25, &a, &b, 0.75, &mut c, m, k, n, bs);
        dgemm_serial_secs = dgemm_serial_secs.min(start.elapsed().as_secs_f64());
        c_serial = c;
    }
    let dgemm_reference = fbits(&c_serial);

    let mut dgemm_mt_secs = f64::INFINITY;
    let mut dgemm_identical_across_threads = true;
    for t in [1usize, 2, threads] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut c = c0.clone();
            let start = Instant::now();
            dgemm_blocked_mt(1.25, &a, &b, 0.75, &mut c, m, k, n, bs, t);
            best = best.min(start.elapsed().as_secs_f64());
            dgemm_identical_across_threads &= fbits(&c) == dgemm_reference;
        }
        if t == threads {
            dgemm_mt_secs = best;
        }
    }

    let fft_n = 512usize;
    let signal: Vec<Complex> = (0..fft_n * fft_n)
        .map(|i| Complex::new(((i % 17) as f64 - 8.0) * 0.1, ((i % 19) as f64 - 9.0) * 0.1))
        .collect();
    let mut fft2d_serial_secs = f64::INFINITY;
    let mut fft_serial = Vec::new();
    for _ in 0..3 {
        let mut x = signal.clone();
        let start = Instant::now();
        fft2d_serial(&mut x, fft_n);
        fft2d_serial_secs = fft2d_serial_secs.min(start.elapsed().as_secs_f64());
        fft_serial = x;
    }
    let fft_reference = cbits(&fft_serial);

    let mut fft2d_mt_secs = f64::INFINITY;
    let mut fft2d_identical_across_threads = true;
    for t in [1usize, 2, threads] {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut x = signal.clone();
            let start = Instant::now();
            fft2d_parallel(&mut x, fft_n, t);
            best = best.min(start.elapsed().as_secs_f64());
            fft2d_identical_across_threads &= cbits(&x) == fft_reference;
        }
        if t == threads {
            fft2d_mt_secs = best;
        }
    }

    let speedup_gate = if host_cores < 4 {
        SpeedupGate {
            enforced: false,
            skipped: true,
            host_cores,
            reason: Some(format!(
                "host has {host_cores} core(s), so wall-clock MT-kernel speedup is \
                 physically impossible; bitwise identity is still verified"
            )),
        }
    } else {
        SpeedupGate { enforced: true, skipped: false, host_cores, reason: None }
    };

    HostKernelsMt {
        workload: format!("dgemm m=k=n={m}, bs={bs}; fft2d {fft_n} x {fft_n}"),
        simd_dispatch: enprop_kernels::simd_dispatch().to_string(),
        threads,
        dgemm_serial_secs,
        dgemm_mt_secs,
        dgemm_speedup: dgemm_serial_secs / dgemm_mt_secs,
        dgemm_identical_across_threads,
        fft2d_serial_secs,
        fft2d_mt_secs,
        fft2d_speedup: fft2d_serial_secs / fft2d_mt_secs,
        fft2d_identical_across_threads,
        speedup_gate,
    }
}

/// Sampled-sanitizer cost at k = 8 on tiled DGEMM (N = 256, BS = 16,
/// serial waves): the uninstrumented *scalar* interpreter is the baseline
/// (monitored blocks run on the scalar path, so it is the path sampling
/// dilutes), full monitoring and 1-in-8 sampling are measured against it,
/// and the self-test corpus is re-run with sampling requested to prove
/// the corpus's unsampled-by-design rule keeps every fixture caught.
fn bench_sanitize_sampled() -> SanitizeSampled {
    let n = 256usize;
    let bs = 16usize;
    let sample_k = 8u64;
    let cfg = TiledDgemmConfig { n, bs, g: 1, r: 1 };
    let tiles = n / bs;
    let host_a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
    let host_b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
    let emu = EmuDgemm::new(cfg).with_wave(WavePlan::fixed(1));
    let (a, b) = (GlobalMem::from_slice(&host_a), GlobalMem::from_slice(&host_b));

    let mut scalar_secs = f64::INFINITY;
    let mut c_scalar = GlobalMem::zeroed(n * n);
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        emu.run_unbatched(&a, &b, &c);
        scalar_secs = scalar_secs.min(start.elapsed().as_secs_f64());
        c_scalar = c;
    }

    // One monitored run under `spec`, best of 3: (secs, monitored blocks,
    // findings incl. suppressed, output).
    let monitored_run = |spec: enprop_sanitize::SampleSpec| {
        let mut best_secs = f64::INFINITY;
        let mut c_out = GlobalMem::zeroed(n * n);
        let mut monitored = 0usize;
        let mut findings = 0usize;
        for _ in 0..3 {
            let c = GlobalMem::zeroed(n * n);
            let mut table = enprop_sanitize::BufferTable::new();
            table.register(a.id(), "A", n * n);
            table.register(b.id(), "B", n * n);
            table.register(c.id(), "C", n * n);
            let monitor = enprop_sanitize::LaunchMonitor::new(table, 2 * bs * bs);
            let mut count = 0usize;
            let start = Instant::now();
            emu.run_monitored_sampled(
                &a,
                &b,
                &c,
                |bx, by| spec.selects(tiles, bx, by),
                |_, _| {
                    count += 1;
                    monitor.begin_block();
                    monitor.sink()
                },
                |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
            );
            best_secs = best_secs.min(start.elapsed().as_secs_f64());
            let out = monitor.finish();
            findings = out.findings.len() + out.suppressed;
            monitored = count;
            c_out = c;
        }
        (best_secs, monitored, findings, c_out)
    };

    let (full_secs, _, _, _) = monitored_run(enprop_sanitize::SampleSpec::full());
    let spec = enprop_sanitize::SampleSpec::one_in(sample_k, SANITIZE_SAMPLE_SEED);
    let (sampled_secs, monitored_blocks, findings, c_sampled) = monitored_run(spec);

    let corpus = enprop_sanitize::fixtures::self_test();
    let selftest_total = corpus.len();
    let selftest_caught = corpus
        .iter()
        .filter(|(expected, rep)| {
            !rep.findings.is_empty() && rep.findings.iter().all(|f| f.checker == *expected)
        })
        .count();

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    SanitizeSampled {
        workload: "tiled DGEMM (N = 256, BS = 16, G = 1, R = 1), serial waves".into(),
        sample_k,
        blocks: tiles * tiles,
        monitored_blocks,
        scalar_secs,
        full_secs,
        sampled_secs,
        overhead_vs_scalar: sampled_secs / scalar_secs,
        speedup_vs_full: full_secs / sampled_secs,
        findings,
        results_identical: bits(&c_scalar) == bits(&c_sampled),
        selftest_caught,
        selftest_total,
        simd_dispatch: SimdPath::detect().as_str().to_string(),
    }
}

/// Full monitoring on the batched bulk trace path vs per-access
/// scalar-hook monitoring vs the uninstrumented scalar interpreter, all
/// on tiled DGEMM (N = 256, BS = 16, serial waves). `ForceScalar` pins
/// the per-access side; findings are compared rendering-exact, outputs
/// bitwise. This is the section behind the `--check` rule that full
/// monitoring must cost no more than 8x the uninstrumented *scalar*
/// interpreter now that shadow updates ride the batched path.
fn bench_sanitize_batched() -> SanitizeBatched {
    let n = 256usize;
    let bs = 16usize;
    let cfg = TiledDgemmConfig { n, bs, g: 1, r: 1 };
    let host_a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
    let host_b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
    let emu = EmuDgemm::new(cfg).with_wave(WavePlan::fixed(1));
    let (a, b) = (GlobalMem::from_slice(&host_a), GlobalMem::from_slice(&host_b));

    let mut scalar_secs = f64::INFINITY;
    let mut c_scalar = GlobalMem::zeroed(n * n);
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let start = Instant::now();
        emu.run_unbatched(&a, &b, &c);
        scalar_secs = scalar_secs.min(start.elapsed().as_secs_f64());
        c_scalar = c;
    }

    let render = |findings: &[enprop_sanitize::Finding]| {
        findings.iter().map(|f| format!("{f:?}")).collect::<Vec<_>>()
    };

    // One fully-monitored run per round: bulk rides `monitor.sink()`
    // straight (MonitorSink::BULK consumes phase batches), scalar wraps it
    // in ForceScalar to pin the per-access interpreter loop.
    let mut monitored_batched_secs = f64::INFINITY;
    let mut batched_findings = Vec::new();
    let mut batched_suppressed = 0usize;
    let mut c_batched = GlobalMem::zeroed(n * n);
    for _ in 0..3 {
        let c = GlobalMem::zeroed(n * n);
        let mut table = enprop_sanitize::BufferTable::new();
        table.register(a.id(), "A", n * n);
        table.register(b.id(), "B", n * n);
        table.register(c.id(), "C", n * n);
        let monitor = enprop_sanitize::LaunchMonitor::new(table, 2 * bs * bs);
        let start = Instant::now();
        emu.run_monitored(
            &a,
            &b,
            &c,
            |_, _| {
                monitor.begin_block();
                monitor.sink()
            },
            |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
        );
        monitored_batched_secs = monitored_batched_secs.min(start.elapsed().as_secs_f64());
        let out = monitor.finish();
        batched_findings = render(&out.findings);
        batched_suppressed = out.suppressed;
        c_batched = c;
    }

    let mut monitored_scalar_secs = f64::INFINITY;
    let mut scalar_findings = Vec::new();
    let mut scalar_suppressed = 0usize;
    let mut c_mon_scalar = GlobalMem::zeroed(n * n);
    for _ in 0..2 {
        let c = GlobalMem::zeroed(n * n);
        let mut table = enprop_sanitize::BufferTable::new();
        table.register(a.id(), "A", n * n);
        table.register(b.id(), "B", n * n);
        table.register(c.id(), "C", n * n);
        let monitor = enprop_sanitize::LaunchMonitor::new(table, 2 * bs * bs);
        let start = Instant::now();
        emu.run_monitored(
            &a,
            &b,
            &c,
            |_, _| {
                monitor.begin_block();
                ForceScalar(monitor.sink())
            },
            |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
        );
        monitored_scalar_secs = monitored_scalar_secs.min(start.elapsed().as_secs_f64());
        let out = monitor.finish();
        scalar_findings = render(&out.findings);
        scalar_suppressed = out.suppressed;
        c_mon_scalar = c;
    }

    let corpus = enprop_sanitize::fixtures::self_test();
    let selftest_total = corpus.len();
    let selftest_caught = corpus
        .iter()
        .filter(|(expected, rep)| rep.findings.iter().any(|f| f.checker == *expected))
        .count();

    let bits = |m: &GlobalMem| m.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    SanitizeBatched {
        workload: "tiled DGEMM (N = 256, BS = 16, G = 1, R = 1), serial waves".into(),
        simd_dispatch: SimdPath::detect().as_str().to_string(),
        scalar_secs,
        monitored_scalar_secs,
        monitored_batched_secs,
        overhead_vs_scalar: monitored_batched_secs / scalar_secs,
        speedup_vs_scalar_monitoring: monitored_scalar_secs / monitored_batched_secs,
        findings: batched_findings.len() + batched_suppressed,
        findings_identical: batched_findings == scalar_findings
            && batched_suppressed == scalar_suppressed,
        results_identical: bits(&c_batched) == bits(&c_scalar)
            && bits(&c_mon_scalar) == bits(&c_scalar),
        selftest_caught,
        selftest_total,
    }
}

/// The fault-injection smoke sweep: the Fig. 7 K40c workload at N = 8704
/// (102 configurations) through a meter that drops `fault_rate` of all
/// reads, with the default 3-attempt retry policy, run at 1, 2, and
/// 8 threads. Every configuration must come back as either a point or a
/// recorded failure, and all three runs must agree exactly — points and
/// failure records both.
fn bench_fault_smoke(fault_rate: f64) -> FaultSmoke {
    let app = GpuMatMulApp::new(GpuArch::k40c(), 8);
    let n = 8704usize;
    let policy = RetryPolicy::default();
    let plan = FaultPlan::transient(fault_rate);

    let sweeps: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            let exec = SweepExecutor::new(42).with_threads(t);
            app.sweep_measured_robust(n, &exec, policy, plan)
        })
        .collect();
    let identical_across_threads = sweeps.windows(2).all(|w| w[0] == w[1]);
    let s = &sweeps[0];

    FaultSmoke {
        workload: format!("fig7 measured sweep (K40c, N = {n})"),
        fault_rate,
        retry_attempts: policy.max_attempts,
        configs: s.total,
        measured: s.points.len(),
        failed: s.failures.len(),
        retried: s.retried,
        failed_configs: s
            .failures
            .iter()
            .map(|f| format!("BS={} G={} R={}", f.config.bs, f.config.g, f.config.r))
            .collect(),
        failures: s.failures.clone(),
        identical_across_threads,
    }
}

/// Median of a timing sample (sorts in place; odd-length upper median for
/// even counts — fine for ratio-of-medians at the sizes used here).
fn median(samples: &mut [f64]) -> f64 {
    assert!(!samples.is_empty(), "median of an empty sample");
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Copies a flat journal directory (MANIFEST.json + segment files) so one
/// crashed journal can seed several independent resume attempts.
fn copy_journal(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create journal copy dir");
    for entry in std::fs::read_dir(src).expect("read journal dir") {
        let entry = entry.expect("read journal dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy journal file");
    }
}

/// The checkpoint-recovery drill behind `BENCH_sweep.json`'s
/// `checkpoint_recovery` section: run the fault-smoke sweep (K40c,
/// N = 8704, 102 configurations) plain and journaled — interleaved over
/// 5 rounds at one thread, ratio of medians — to price the durability
/// tax, then run it with an injected crash
/// that kills the journal writer mid-sweep — tearing the final record —
/// and resume the crashed journal at 1, 2, and 8 threads, requiring every
/// resume to be bitwise-identical to the uninterrupted sweep.
fn bench_checkpoint_recovery(fault_rate: f64) -> CheckpointRecovery {
    let app = GpuMatMulApp::new(GpuArch::k40c(), 8);
    let n = 8704usize;
    let policy = RetryPolicy::default();
    let plan = FaultPlan::transient(fault_rate);
    let exec1 = SweepExecutor::new(42).with_threads(1);
    let manifest = app.checkpoint_manifest(n, &exec1, &policy, &plan);

    let root = std::env::temp_dir()
        .join(format!("enprop-bench-checkpoint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Reference sweep and the durability tax, single-threaded. The two
    // sides are interleaved within each of 5 rounds and the ratio is
    // taken over per-side *medians*, so a one-off scheduler stall cannot
    // masquerade as a journal cost — or a saving (best-of-2 once reported
    // a 0.94x "overhead", i.e. pure timing noise at this ~percent scale).
    let mut plain_rounds = Vec::with_capacity(5);
    let mut journaled_rounds = Vec::with_capacity(5);
    let mut plain = None;
    for round in 0..5 {
        let start = Instant::now();
        let sweep = app.sweep_measured_robust(n, &exec1, policy, plan);
        plain_rounds.push(start.elapsed().as_secs_f64());
        plain = Some(sweep);

        let journaled_dir = root.join(format!("journaled-{round}"));
        let checkpoint = SweepCheckpoint::fresh(&journaled_dir, manifest.clone())
            .expect("fresh journal for the overhead run");
        let start = Instant::now();
        let journaled = app
            .sweep_measured_robust_resumable(n, &exec1, policy, plan, checkpoint)
            .expect("journaled sweep");
        journaled_rounds.push(start.elapsed().as_secs_f64());
        assert!(
            journaled.sweep == *plain.as_ref().expect("plain sweep ran"),
            "journaled sweep diverged from the plain sweep"
        );
    }
    let plain = plain.expect("plain sweep ran");
    let configs = plain.total;
    let plain_secs = median(&mut plain_rounds);
    let journaled_secs = median(&mut journaled_rounds);

    // Crash mid-journal: kill the writer after about half the records are
    // durable, with a 9-byte torn frame dangling past the last good one.
    let crash_after = configs / 2;
    let torn_bytes = 9usize;
    let crashed_dir = root.join("crashed");
    let mut checkpoint = SweepCheckpoint::fresh(&crashed_dir, manifest.clone())
        .expect("fresh journal for the crash run");
    checkpoint.arm_crash(CrashPlan::kill_after(crash_after).with_torn_bytes(torn_bytes));
    let crashed = app
        .sweep_measured_robust_resumable(n, &exec1, policy, plan, checkpoint)
        .expect("crash-armed sweep");
    assert!(crashed.crashed, "the armed crash plan never fired");

    // Resume the same crashed journal at 1, 2, and 8 threads — each from
    // its own copy, since a successful resume completes the journal.
    let mut replayed = 0usize;
    let mut recomputed = 0usize;
    let mut torn_bytes_dropped = 0u64;
    let mut resumed_identical_across_threads = true;
    for threads in [1usize, 2, 8] {
        let dir = root.join(format!("resume-t{threads}"));
        copy_journal(&crashed_dir, &dir);
        let exec = SweepExecutor::new(42).with_threads(threads);
        let checkpoint = SweepCheckpoint::resume(&dir, &manifest).expect("resume journal");
        let resumed = app
            .sweep_measured_robust_resumable(n, &exec, policy, plan, checkpoint)
            .expect("resumed sweep");
        resumed_identical_across_threads &= resumed.sweep == plain;
        replayed = resumed.replayed;
        recomputed = resumed.executed;
        torn_bytes_dropped = resumed.torn_tail_bytes;
    }

    let _ = std::fs::remove_dir_all(&root);
    CheckpointRecovery {
        workload: format!("fig7 measured sweep (K40c, N = {n}), fault rate {fault_rate}"),
        configs,
        plain_secs,
        journaled_secs,
        journal_overhead_ratio: journaled_secs / plain_secs,
        crash_after_records: crash_after,
        torn_bytes_injected: torn_bytes,
        torn_bytes_dropped,
        replayed,
        recomputed,
        resumed_identical_across_threads,
    }
}

/// The `--check` perf gate. Exits non-zero on regression so a scheduler
/// regression like PR 2's 0.98× sweep "speedup" cannot land silently.
fn run_perf_gate(report: &BenchReport) {
    let mut failures = Vec::new();

    if report.emulator.speedup < 10.0 {
        failures.push(format!(
            "emulator phase-interpreter speedup {:.1}x over the legacy engine is below 10x",
            report.emulator.speedup
        ));
    }

    let batch = &report.emulator_batch;
    if batch.speedup < 2.0 {
        failures.push(format!(
            "batched emulator speedup {:.2}x over the scalar interpreter is below 2x",
            batch.speedup
        ));
    }
    if !batch.results_identical || !batch.counters_identical {
        failures.push(
            "batched emulator path diverged from the scalar interpreter \
             (results or counters)"
                .to_string(),
        );
    }
    if batch.simd_dispatch == "scalar-sse2" {
        eprintln!(
            "check: skipping explicit-SIMD speedup gate — host dispatches scalar-sse2, \
             so the explicit-SIMD bodies and the pinned baseline are the same code"
        );
    } else if batch.simd_speedup < 1.3 {
        failures.push(format!(
            "explicit-SIMD ({}) speedup {:.2}x over the pinned scalar-sse2 batch bodies \
             is below 1.3x",
            batch.simd_dispatch, batch.simd_speedup
        ));
    }
    if !batch.simd_results_identical {
        failures.push(
            "explicit-SIMD batch bodies diverged from the pinned scalar-sse2 bodies \
             (results or counters)"
                .to_string(),
        );
    }

    let host = &report.host_kernels;
    if host.dgemm_speedup < 1.5 {
        failures.push(format!(
            "packed DGEMM speedup {:.2}x over the unpacked blocked baseline is below 1.5x",
            host.dgemm_speedup
        ));
    }
    if !host.dgemm_results_match {
        failures.push("packed DGEMM output diverged from the unpacked baseline".to_string());
    }

    let mt = &report.host_kernels_mt;
    if !mt.dgemm_identical_across_threads {
        failures.push(
            "multi-threaded DGEMM is not bitwise-identical to the serial kernel \
             at 1/2/8 threads"
                .to_string(),
        );
    }
    if !mt.fft2d_identical_across_threads {
        failures.push(
            "parallel 2-D FFT is not bitwise-identical to the serial kernel \
             at 1/2/8 threads"
                .to_string(),
        );
    }
    if mt.speedup_gate.enforced {
        if mt.dgemm_speedup < 1.3 {
            failures.push(format!(
                "multi-threaded DGEMM speedup {:.2}x at {} threads is below 1.3x \
                 (host has {} cores)",
                mt.dgemm_speedup, mt.threads, mt.speedup_gate.host_cores
            ));
        }
        if mt.fft2d_speedup < 1.3 {
            failures.push(format!(
                "parallel 2-D FFT speedup {:.2}x at {} threads is below 1.3x \
                 (host has {} cores)",
                mt.fft2d_speedup, mt.threads, mt.speedup_gate.host_cores
            ));
        }
    } else if let Some(reason) = &mt.speedup_gate.reason {
        eprintln!("check: skipping MT host-kernel speedup gate — {reason}");
    }

    let gate = &report.sweep.speedup_gate;
    if gate.enforced {
        if report.sweep.speedup < 1.5 {
            failures.push(format!(
                "fig7 measured-sweep parallel speedup {:.2}x at {} threads is below 1.5x \
                 (host has {} cores)",
                report.sweep.speedup, report.sweep.threads, gate.host_cores
            ));
        }
    } else if let Some(reason) = &gate.reason {
        eprintln!("check: skipping sweep-speedup gate — {reason}");
    }

    let smoke = &report.fault_smoke;
    if smoke.measured + smoke.failed != smoke.configs {
        failures.push(format!(
            "fault smoke lost configurations: {} measured + {} failed != {} attempted",
            smoke.measured, smoke.failed, smoke.configs
        ));
    }
    if !smoke.identical_across_threads {
        failures.push(
            "fault smoke output differs across 1/2/8 threads — retry seed-splitting \
             is no longer deterministic"
                .to_string(),
        );
    }

    let recovery = &report.checkpoint_recovery;
    if !recovery.resumed_identical_across_threads {
        failures.push(
            "checkpoint recovery: a resumed sweep diverged from the uninterrupted run"
                .to_string(),
        );
    }
    if recovery.replayed + recovery.recomputed != recovery.configs {
        failures.push(format!(
            "checkpoint recovery lost configurations: {} replayed + {} recomputed != {}",
            recovery.replayed, recovery.recomputed, recovery.configs
        ));
    }
    if recovery.torn_bytes_dropped != recovery.torn_bytes_injected as u64 {
        failures.push(format!(
            "checkpoint recovery: crash left {} torn byte(s) but resume dropped {}",
            recovery.torn_bytes_injected, recovery.torn_bytes_dropped
        ));
    }
    if recovery.journal_overhead_ratio > 1.10 {
        failures.push(format!(
            "checkpoint journal overhead {:.3}x exceeds the 1.10x budget",
            recovery.journal_overhead_ratio
        ));
    }

    let sanitize = &report.sanitize_overhead;
    if sanitize.findings != 0 {
        failures.push(format!(
            "sanitized DGEMM reported {} finding(s) on the shipped kernel",
            sanitize.findings
        ));
    }
    if !sanitize.results_identical {
        failures
            .push("sanitized DGEMM output diverged from the uninstrumented run".to_string());
    }

    let sampled = &report.sanitize_sampled;
    if sampled.overhead_vs_scalar > 3.0 {
        failures.push(format!(
            "sampled-sanitizer overhead {:.2}x at k = {} exceeds the 3x budget",
            sampled.overhead_vs_scalar, sampled.sample_k
        ));
    }
    if sampled.findings != 0 {
        failures.push(format!(
            "sampled sanitizer reported {} finding(s) on the shipped kernel",
            sampled.findings
        ));
    }
    if !sampled.results_identical {
        failures.push("sampled-sanitizer output diverged from the scalar run".to_string());
    }
    if sampled.selftest_caught != sampled.selftest_total {
        failures.push(format!(
            "sampling cost the self-test corpus {} fixture(s): {}/{} caught",
            sampled.selftest_total - sampled.selftest_caught,
            sampled.selftest_caught,
            sampled.selftest_total
        ));
    }

    let batched_mon = &report.sanitize_batched;
    if batched_mon.overhead_vs_scalar > 8.0 {
        failures.push(format!(
            "batched-monitoring overhead {:.2}x over the uninstrumented scalar \
             interpreter exceeds the 8x budget",
            batched_mon.overhead_vs_scalar
        ));
    }
    if batched_mon.findings != 0 {
        failures.push(format!(
            "batched monitoring reported {} finding(s) on the shipped kernel",
            batched_mon.findings
        ));
    }
    if !batched_mon.findings_identical {
        failures.push(
            "batched-monitoring findings differ from the scalar monitored run".to_string(),
        );
    }
    if !batched_mon.results_identical {
        failures.push(
            "a monitored run diverged from the uninstrumented scalar output".to_string(),
        );
    }
    if batched_mon.selftest_caught != batched_mon.selftest_total {
        failures.push(format!(
            "the bulk-capable sink cost the self-test corpus {} fixture(s): {}/{} caught",
            batched_mon.selftest_total - batched_mon.selftest_caught,
            batched_mon.selftest_caught,
            batched_mon.selftest_total
        ));
    }

    let stat = &report.static_verify;
    if stat.findings != 0 || stat.fallbacks != 0 {
        failures.push(format!(
            "static verifier did not prove the sweep lattice clean: {} finding(s), \
             {} fallback(s) across {} config(s)",
            stat.findings, stat.fallbacks, stat.lattice_configs
        ));
    }
    if stat.fixtures_flagged != stat.fixtures_total || stat.fixtures_parity != stat.fixtures_total
    {
        failures.push(format!(
            "static verifier missed seeded fixtures: {}/{} flagged, {}/{} with dynamic \
             parity",
            stat.fixtures_flagged, stat.fixtures_total, stat.fixtures_parity,
            stat.fixtures_total
        ));
    }
    if stat.counts_exact != stat.counts_validated {
        failures.push(format!(
            "closed-form event counts diverged from flushed counters on {} of {} \
             validation config(s)",
            stat.counts_validated - stat.counts_exact,
            stat.counts_validated
        ));
    }
    if stat.static_secs * 10.0 > stat.dynamic_secs {
        failures.push(format!(
            "static lattice verification ({:.3}s) is not >= 10x faster than the dynamic \
             sanitize --all sweep ({:.2}s): speedup {:.1}x",
            stat.static_secs, stat.dynamic_secs, stat.speedup
        ));
    }

    let serve = &report.serve_throughput;
    if serve.socket_gate.enforced {
        if !serve.cached_equals_fresh {
            failures.push(
                "serve: a cache-bypassing recomputation is not bitwise-identical to \
                 the cached body"
                    .to_string(),
            );
        }
        if !serve.hit_equals_cold {
            failures.push(
                "serve: a warm cache hit did not replay the cold body bitwise".to_string(),
            );
        }
        if !serve.hot_bodies_identical {
            failures.push(
                "serve: concurrent clients saw different bytes for the same hot key"
                    .to_string(),
            );
        }
        if serve.cache_hit_rate <= 0.0 {
            failures.push(format!(
                "serve: cache hit rate {:.2} under the hot/cold load — deduplication \
                 is not happening",
                serve.cache_hit_rate
            ));
        }
        if serve.ok != serve.requests {
            failures.push(format!(
                "serve: only {}/{} load-generator requests succeeded",
                serve.ok, serve.requests
            ));
        }
    } else if let Some(reason) = &serve.socket_gate.reason {
        eprintln!("check: skipping serve-throughput gate — {reason}");
    }

    if failures.is_empty() {
        eprintln!("check: all performance gates passed");
    } else {
        for f in &failures {
            eprintln!("check FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// The `serve_throughput` bench section: an in-process daemon on an
/// ephemeral loopback port, the three-way bitwise-identity check (cold
/// miss == warm hit == `no_cache` recomputation), then the mixed hot/cold
/// concurrent load. Hosts where loopback cannot bind record a
/// self-describing skip instead of failing.
fn bench_serve_throughput(host_cores: usize) -> ServeThroughput {
    use enprop_serve::{LoadOptions, ServeConfig, Server, SweepRequest};

    let options = LoadOptions {
        clients: 8,
        requests_per_client: 6,
        hot_keys: 3,
        seed_base: 42,
        arch: "k40c".to_string(),
        n: 512,
        products: 4,
        chunk: 16,
    };
    let workload = format!(
        "gpu-matmul sweep service (k40c, N = {}, {} products, chunk {})",
        options.n, options.products, options.chunk
    );
    let skipped = |reason: String| ServeThroughput {
        workload: workload.clone(),
        clients: options.clients,
        requests: 0,
        ok: 0,
        secs: 0.0,
        requests_per_sec: 0.0,
        cache_hit_rate: 0.0,
        hits: 0,
        misses: 0,
        hot_bodies_identical: false,
        cached_equals_fresh: false,
        hit_equals_cold: false,
        socket_gate: SpeedupGate {
            enforced: false,
            skipped: true,
            host_cores,
            reason: Some(reason),
        },
    };

    let config = ServeConfig { threads: 0, ..ServeConfig::default() };
    let server = match Server::start(config, "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            return skipped(format!(
                "cannot bind a loopback socket ({e}); the serve section needs local \
                 TCP and is skipped, not failed, where the host forbids it"
            ))
        }
    };

    // Three-way bitwise identity on one hot key before the load runs:
    // cold compute (fills the cache), warm hit (replays it), and a
    // `no_cache` recomputation (proves the cached bytes are exact).
    let key_request = |no_cache: bool| SweepRequest {
        arch: options.arch.clone(),
        n: options.n,
        products: options.products,
        seed: options.seed_base,
        chunk: options.chunk,
        no_cache,
    };
    let post = |request: &SweepRequest| {
        enprop_serve::http::http_request(
            server.addr(),
            "POST",
            "/sweep",
            request.to_json().as_bytes(),
        )
    };
    let cold = match post(&key_request(false)) {
        Ok(r) if r.status == 200 => r.body,
        Ok(r) => {
            server.shutdown();
            return skipped(format!("cold sweep request answered status {}", r.status));
        }
        Err(e) => {
            server.shutdown();
            return skipped(format!("cold sweep request failed: {e}"));
        }
    };
    let hit = post(&key_request(false)).map(|r| r.body).unwrap_or_default();
    let fresh = post(&key_request(true)).map(|r| r.body).unwrap_or_default();
    let hit_equals_cold = !cold.is_empty() && hit == cold;
    let cached_equals_fresh = !cold.is_empty() && fresh == cold;

    let load = enprop_serve::run_load(server.addr(), &options);
    for error in &load.errors {
        eprintln!("serve load: {error}");
    }
    let report = ServeThroughput {
        workload,
        clients: options.clients,
        requests: load.requests,
        ok: load.ok,
        secs: load.secs,
        requests_per_sec: load.requests_per_sec,
        cache_hit_rate: load.cache_hit_rate,
        hits: load.hits,
        misses: load.misses,
        hot_bodies_identical: load.hot_identical,
        cached_equals_fresh,
        hit_equals_cold,
        socket_gate: SpeedupGate {
            enforced: true,
            skipped: false,
            host_cores,
            reason: None,
        },
    };
    server.shutdown();
    report
}

/// Common core of the `static_verify` section and the `verify-static`
/// subcommand: learn the DGEMM family model, analytically sweep the four
/// fig7/fig8 lattices, re-verify the fixture corpus, and cross-validate
/// the closed-form counters. The dynamic `sanitize --all` reference
/// sweep is timed first so the speedup compares full coverage against
/// full coverage.
fn bench_static_verify() -> StaticVerifyBench {
    use enprop_staticcheck::dgemm::{validate_counts, validation_set};
    use enprop_staticcheck::fixtures::analyze_fixtures;
    use enprop_staticcheck::{verify_fig_lattices, DgemmStaticModel};

    let start = Instant::now();
    let dynamic_report = enprop_sanitize::sanitize_all(&GpuArch::k40c(), true);
    let dynamic_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let model = DgemmStaticModel::learn();
    let learn_secs = start.elapsed().as_secs_f64();

    let (probe_launches, lattice_configs, findings, fallbacks, sweep_secs) = match &model {
        Ok(m) => {
            let start = Instant::now();
            let sweeps = verify_fig_lattices(m);
            let sweep_secs = start.elapsed().as_secs_f64();
            (
                m.probe_configs.len(),
                sweeps.iter().map(|s| s.configs).sum(),
                sweeps.iter().map(|s| s.findings).sum(),
                sweeps.iter().map(|s| s.fallbacks).sum(),
                sweep_secs,
            )
        }
        // A model that cannot be learned is a fallback of the whole
        // lattice: the gate fails on `fallbacks != 0`.
        Err(_) => (0, 0, 0, 1, 0.0),
    };

    let outcomes = analyze_fixtures();
    let fixtures_flagged = outcomes.iter().filter(|o| o.caught).count();
    let fixtures_parity = outcomes.iter().filter(|o| o.parity).count();

    let vals = validation_set();
    let counts_exact = match &model {
        Ok(m) => vals
            .iter()
            .filter(|cfg| {
                let (stat, dynamic) = validate_counts(m, cfg);
                stat == dynamic
            })
            .count(),
        Err(_) => 0,
    };

    let static_secs = learn_secs + sweep_secs;
    StaticVerifyBench {
        workload: "fig7/fig8 lattice race/OOB/barrier safety + event counts".into(),
        probe_launches,
        lattice_configs,
        findings,
        fallbacks,
        fixtures_flagged,
        fixtures_parity,
        fixtures_total: outcomes.len(),
        counts_exact,
        counts_validated: vals.len(),
        learn_secs,
        sweep_secs,
        static_secs,
        dynamic_secs,
        speedup: dynamic_secs / static_secs,
        dynamic_clean: dynamic_report.clean(),
    }
}

/// The `verify-static` subcommand: proves race / out-of-bounds / barrier
/// safety and closed-form event counts for every fig7/fig8 lattice
/// configuration analytically, re-verifies the seeded buggy fixture
/// corpus statically (with dynamic-diagnostic parity), and exits
/// non-zero on any finding, fallback, missed fixture, or count mismatch.
fn run_verify_static(json_dir: Option<&str>) {
    use enprop_staticcheck::dgemm::{validate_counts, validation_set};
    use enprop_staticcheck::fixtures::analyze_fixtures;
    use enprop_staticcheck::{verify_fig_lattices, DgemmStaticModel};

    let mut failed = false;

    let start = Instant::now();
    let model = match DgemmStaticModel::learn() {
        Ok(m) => m,
        Err(fb) => {
            eprintln!("verify-static: cannot learn the DGEMM family model: {fb}");
            std::process::exit(1);
        }
    };
    let learn_secs = start.elapsed().as_secs_f64();
    println!(
        "verify-static: DGEMM family model learned and verified from {} tiny probe \
         launches in {:.3}s",
        model.probe_configs.len(),
        learn_secs
    );

    let start = Instant::now();
    let sweeps = verify_fig_lattices(&model);
    let sweep_secs = start.elapsed().as_secs_f64();
    for s in &sweeps {
        let clean = s.findings == 0 && s.fallbacks == 0;
        println!(
            "verify-static: {}: {} configuration(s) — {} finding(s), {} fallback(s){}",
            s.label,
            s.configs,
            s.findings,
            s.fallbacks,
            if clean { "; proven race/OOB/barrier-clean" } else { "" }
        );
        for r in &s.dirty {
            for f in &r.findings {
                println!("  {}: {f}", r.label);
            }
            for fb in &r.fallbacks {
                println!("  {}: {fb}", r.label);
            }
        }
        failed |= !clean;
    }
    let total: usize = sweeps.iter().map(|s| s.configs).sum();
    println!(
        "verify-static: analytic sweep of {total} lattice configuration(s) in {sweep_secs:.3}s"
    );

    let outcomes = analyze_fixtures();
    for o in &outcomes {
        let ok = o.caught && o.parity;
        println!(
            "verify-static: {} {} — {} static finding(s) (expected {}), dynamic parity: {}",
            if ok { "caught" } else { "MISSED" },
            o.label,
            o.report.findings.len(),
            o.expected.as_str(),
            o.parity
        );
        if let Some(f) = o.report.findings.first() {
            println!("  {f}");
        }
        for fb in &o.report.fallbacks {
            println!("  {fb}");
        }
        failed |= !ok;
    }

    let vals = validation_set();
    let mut counts_exact = 0usize;
    for cfg in &vals {
        let (stat, dynamic) = validate_counts(&model, cfg);
        if stat == dynamic {
            counts_exact += 1;
        } else {
            println!(
                "verify-static: COUNT MISMATCH at {cfg}: static {stat:?} != flushed {dynamic:?}"
            );
            failed = true;
        }
    }
    println!(
        "verify-static: closed-form event counts bitwise-exact on {counts_exact}/{} \
         executed validation configuration(s)",
        vals.len()
    );

    if let Some(dir) = json_dir {
        #[derive(serde::Serialize)]
        struct LatticeJson {
            label: String,
            configs: usize,
            findings: usize,
            fallbacks: usize,
        }
        #[derive(serde::Serialize)]
        struct FixtureJson {
            label: String,
            expected: &'static str,
            findings: usize,
            caught: bool,
            parity: bool,
        }
        #[derive(serde::Serialize)]
        struct VerifyStaticJson {
            probe_launches: usize,
            learn_secs: f64,
            sweep_secs: f64,
            lattices: Vec<LatticeJson>,
            fixtures: Vec<FixtureJson>,
            counts_exact: usize,
            counts_validated: usize,
            clean: bool,
        }
        let artifact = VerifyStaticJson {
            probe_launches: model.probe_configs.len(),
            learn_secs,
            sweep_secs,
            lattices: sweeps
                .iter()
                .map(|s| LatticeJson {
                    label: s.label.clone(),
                    configs: s.configs,
                    findings: s.findings,
                    fallbacks: s.fallbacks,
                })
                .collect(),
            fixtures: outcomes
                .iter()
                .map(|o| FixtureJson {
                    label: o.label.clone(),
                    expected: o.expected.as_str(),
                    findings: o.report.findings.len(),
                    caught: o.caught,
                    parity: o.parity,
                })
                .collect(),
            counts_exact,
            counts_validated: vals.len(),
            clean: !failed,
        };
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/VERIFY_static.json");
        let mut f = std::fs::File::create(&path).expect("create VERIFY_static.json");
        f.write_all(to_json(&artifact).as_bytes()).expect("write VERIFY_static.json");
        eprintln!("wrote {path}");
    }

    if failed {
        eprintln!("verify-static: FAILED");
        std::process::exit(1);
    }
    println!(
        "verify-static: all {total} lattice configuration(s) proven clean, {}/{} fixtures \
         caught with parity, counts exact",
        outcomes.iter().filter(|o| o.caught && o.parity).count(),
        outcomes.len()
    );
}

/// The `serve` subcommand: runs the sweep daemon in the foreground until
/// killed.
fn run_serve(port: u16, threads: Option<usize>, cache_dir: Option<&str>) {
    use enprop_serve::{ServeConfig, Server};

    let config = ServeConfig {
        threads: threads.unwrap_or(0),
        cache_dir: cache_dir.map(std::path::PathBuf::from),
        ..ServeConfig::default()
    };
    let addr = format!("127.0.0.1:{port}");
    let server = match Server::start(config, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let report = server.cache_load_report();
    println!("serve: listening on http://{}", server.addr());
    if report.replayed > 0 || report.torn_tail_bytes > 0 {
        println!(
            "serve: cache store replayed {} entr{} ({} torn-tail byte(s) discarded)",
            report.replayed,
            if report.replayed == 1 { "y" } else { "ies" },
            report.torn_tail_bytes
        );
    }
    println!("serve: POST /sweep, GET /stats, GET /healthz (Ctrl-C to stop)");
    server.serve_forever();
}

fn to_json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string_pretty(v).expect("serialize artifact")
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [all|table1|fig1|fig2|fig4|fig6|fig7|fig8|theory|headline|bench-json|\
         sanitize|verify-static|serve] [--json DIR] [--measured [SEED]] [--threads N] [--faults [RATE]] \
         [--check] [--checkpoint DIR] [--resume] [--all] [--full] [--self-test] [--sample K] \
         [--port PORT] [--cache DIR]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
