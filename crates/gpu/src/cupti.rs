//! CUPTI-style performance-event readings.
//!
//! The paper selects model variables for linear energy-predictive models
//! from CUPTI events using the *additivity* property, and reports that
//! "many key events and metrics overflow for large matrix sizes (N > 2048)
//! and reported inaccurate counts". Both behaviours are modeled: true
//! counts are derived analytically from the kernel configuration, and the
//! *reported* value wraps at 2³² like the hardware counters did.

use crate::model::TiledDgemmConfig;
use serde::{Deserialize, Serialize};

/// The event counters the toolkit exposes for the tiled DGEMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CuptiCounter {
    /// Double-precision flop count.
    FlopCountDp,
    /// Shared-memory load transactions (tile reads in the inner product).
    SharedLoad,
    /// Shared-memory store transactions (tile fills).
    SharedStore,
    /// Global-memory load transactions.
    GldTransactions,
    /// Global-memory store transactions.
    GstTransactions,
    /// `__syncthreads()` barrier executions (per block).
    BarrierSync,
}

impl CuptiCounter {
    /// Every exposed counter.
    pub const ALL: [CuptiCounter; 6] = [
        CuptiCounter::FlopCountDp,
        CuptiCounter::SharedLoad,
        CuptiCounter::SharedStore,
        CuptiCounter::GldTransactions,
        CuptiCounter::GstTransactions,
        CuptiCounter::BarrierSync,
    ];

    /// The CUPTI-style event name.
    pub fn name(&self) -> &'static str {
        match self {
            CuptiCounter::FlopCountDp => "flop_count_dp",
            CuptiCounter::SharedLoad => "shared_load",
            CuptiCounter::SharedStore => "shared_store",
            CuptiCounter::GldTransactions => "gld_transactions",
            CuptiCounter::GstTransactions => "gst_transactions",
            CuptiCounter::BarrierSync => "barrier_sync",
        }
    }
}

/// One counter reading: the true count and the value a 32-bit hardware
/// counter would report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CuptiReading {
    /// Which counter.
    pub counter: CuptiCounter,
    /// The true (unbounded) event count.
    pub true_count: u128,
    /// The reported value: `true_count mod 2³²`.
    pub reported: u32,
}

impl CuptiReading {
    /// Whether the hardware counter wrapped — the paper's "overflow …
    /// reported inaccurate counts".
    pub fn overflowed(&self) -> bool {
        self.true_count > u32::MAX as u128
    }
}

/// The full event report of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CuptiReport {
    /// One reading per exposed counter.
    pub readings: Vec<CuptiReading>,
}

impl CuptiReport {
    /// Derives the true event counts of one launch of `cfg` analytically
    /// from the Fig. 5 kernel structure.
    pub fn of(cfg: &TiledDgemmConfig) -> Self {
        let tiles = cfg.n.div_ceil(cfg.bs) as u128;
        let bs = cfg.bs as u128;
        let blocks = tiles * tiles;
        let threads = bs * bs;
        let products = cfg.products() as u128;

        // Per product: every thread runs `tiles` tile steps; each step
        // fills one element of As and Bs (2 shared stores), reads 2·BS
        // shared values in the unrolled inner loop, and performs BS FMAs
        // (2 flops each). Each step issues 2 global loads per thread; the
        // C write-back is one global load (+=) and one store per thread.
        let per_thread_steps = tiles;
        let flops = products * blocks * threads * per_thread_steps * bs * 2;
        let shared_store = products * blocks * threads * per_thread_steps * 2;
        let shared_load = products * blocks * threads * per_thread_steps * bs * 2;
        let gld = products * (blocks * threads * per_thread_steps * 2 + blocks * threads);
        let gst = products * blocks * threads;
        // Two barriers per tile step (after fill, after the inner loop),
        // plus G−1 inter-group barriers per run of a group, counted per block.
        let barriers = products * blocks * per_thread_steps * 2
            + (cfg.r as u128) * (cfg.g as u128 - 1) * blocks;

        let reading = |counter, true_count: u128| CuptiReading {
            counter,
            true_count,
            reported: (true_count % (1u128 << 32)) as u32,
        };
        Self {
            readings: vec![
                reading(CuptiCounter::FlopCountDp, flops),
                reading(CuptiCounter::SharedLoad, shared_load),
                reading(CuptiCounter::SharedStore, shared_store),
                reading(CuptiCounter::GldTransactions, gld),
                reading(CuptiCounter::GstTransactions, gst),
                reading(CuptiCounter::BarrierSync, barriers),
            ],
        }
    }

    /// Looks up one counter's reading.
    pub fn get(&self, counter: CuptiCounter) -> CuptiReading {
        *self
            .readings
            .iter()
            .find(|r| r.counter == counter)
            .expect("all counters are always populated")
    }

    /// True when any counter in the report wrapped.
    pub fn any_overflow(&self) -> bool {
        self.readings.iter().any(|r| r.overflowed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, bs: usize, g: usize, r: usize) -> TiledDgemmConfig {
        TiledDgemmConfig { n, bs, g, r }
    }

    #[test]
    fn flop_count_matches_2n3() {
        // For BS | N there is no padding: flops = products × 2 N³.
        let rep = CuptiReport::of(&cfg(1024, 16, 1, 1));
        let flops = rep.get(CuptiCounter::FlopCountDp);
        assert_eq!(flops.true_count, 2 * 1024u128.pow(3));
    }

    #[test]
    fn counts_are_additive_in_g_and_r() {
        // The additivity property: a compound application's count equals
        // the sum of its base applications' counts.
        let base = CuptiReport::of(&cfg(512, 16, 1, 1));
        let g4 = CuptiReport::of(&cfg(512, 16, 4, 1));
        let r4 = CuptiReport::of(&cfg(512, 16, 1, 4));
        for c in CuptiCounter::ALL {
            if c == CuptiCounter::BarrierSync {
                continue; // barriers gain the inter-group syncs
            }
            assert_eq!(g4.get(c).true_count, 4 * base.get(c).true_count, "{}", c.name());
            assert_eq!(r4.get(c).true_count, 4 * base.get(c).true_count, "{}", c.name());
        }
        // Inter-group barriers make the barrier count super-additive.
        assert!(
            g4.get(CuptiCounter::BarrierSync).true_count
                > 4 * base.get(CuptiCounter::BarrierSync).true_count
        );
    }

    #[test]
    fn overflow_appears_beyond_n_2048() {
        // The paper: events overflow for N > 2048. flop_count_dp at
        // N = 2048 is 2·2048³ ≈ 1.7e10 > 2³² — wrapped.
        let big = CuptiReport::of(&cfg(4096, 32, 1, 1));
        assert!(big.get(CuptiCounter::FlopCountDp).overflowed());
        assert!(big.any_overflow());
        let small = CuptiReport::of(&cfg(256, 16, 1, 1));
        assert!(!small.get(CuptiCounter::FlopCountDp).overflowed());
    }

    #[test]
    fn reported_value_wraps_mod_2_32() {
        let rep = CuptiReport::of(&cfg(4096, 32, 1, 1));
        let r = rep.get(CuptiCounter::FlopCountDp);
        assert_eq!(r.reported as u128, r.true_count % (1u128 << 32));
        assert_ne!(r.reported as u128, r.true_count);
    }

    #[test]
    fn padded_tiles_increase_counts() {
        // N = 1000, BS = 16 → padded to 1008.
        let rep = CuptiReport::of(&cfg(1000, 16, 1, 1));
        let flops = rep.get(CuptiCounter::FlopCountDp).true_count;
        assert!(flops > 2 * 1000u128.pow(3));
        assert_eq!(flops, 2 * 1008u128.pow(3));
    }

    #[test]
    fn counter_names_are_cupti_style() {
        assert_eq!(CuptiCounter::FlopCountDp.name(), "flop_count_dp");
        assert_eq!(CuptiCounter::GldTransactions.name(), "gld_transactions");
    }
}
