//! Microbenchmark of the functional GPU emulator running the paper's
//! Fig. 5 kernel, across tile sizes — the executable form of the kernel
//! whose analytic model drives Figs. 2, 6, 7, 8 — plus an old-vs-new
//! engine comparison (retired OS-thread engine vs the barrier-phase
//! interpreter) at one fixed shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enprop_gpusim::emulator::{EmuDgemm, GlobalMem};
use enprop_gpusim::TiledDgemmConfig;

fn bench_emulator(c: &mut Criterion) {
    let n = 16;
    let host_a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 - 3.0).collect();
    let host_b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();

    let mut g = c.benchmark_group("emulator_tiled_dgemm");
    g.sample_size(10);
    for &bs in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |bch, &bs| {
            bch.iter(|| {
                let a = GlobalMem::from_slice(&host_a);
                let b = GlobalMem::from_slice(&host_b);
                let cm = GlobalMem::zeroed(n * n);
                let emu = EmuDgemm::new(TiledDgemmConfig { n, bs, g: 1, r: 1 });
                emu.run(&a, &b, &cm)
            })
        });
    }
    g.finish();

    // Engine comparison at one shape small enough for the legacy engine's
    // OS-thread spawns to stay benchable.
    let mut g = c.benchmark_group("emulator_engines");
    g.sample_size(10);
    let emu = EmuDgemm::new(TiledDgemmConfig { n, bs: 8, g: 1, r: 1 });
    g.bench_function("phase", |bch| {
        bch.iter(|| {
            let a = GlobalMem::from_slice(&host_a);
            let b = GlobalMem::from_slice(&host_b);
            let cm = GlobalMem::zeroed(n * n);
            emu.run(&a, &b, &cm)
        })
    });
    g.bench_function("legacy", |bch| {
        bch.iter(|| {
            let a = GlobalMem::from_slice(&host_a);
            let b = GlobalMem::from_slice(&host_b);
            let cm = GlobalMem::zeroed(n * n);
            emu.run_legacy(&a, &b, &cm)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_emulator);
criterion_main!(benches);
