//! A tour of the EP metrics from the literature the paper surveys (§II-B),
//! computed on the simulated Haswell node's measured power/utilization
//! curve — Ryckbosch et al.'s area metric, Hsu & Poole's integrated gap,
//! and Barroso & Hölzle's dynamic range.
//!
//! ```text
//! cargo run --release --example ep_metrics_tour
//! ```

use enprop::apps::CpuDgemmApp;
use enprop::cpusim::BlasFlavor;
use enprop::ep::{dynamic_range, ep_metric_area, ep_metric_hsu_poole, proportionality_gap};
use enprop::units::{Utilization, Watts};

fn main() {
    let app = CpuDgemmApp::haswell();
    // Build the power-vs-utilization curve from the configuration sweep
    // (taking, per utilization bin, the median power — EP metrics consume
    // a curve, not the full non-functional scatter).
    let sweep = app.sweep_exact(17408, BlasFlavor::IntelMkl);
    let mut binned: Vec<Vec<f64>> = vec![Vec::new(); 21];
    for p in &sweep {
        let u = p.avg_utilization.fraction();
        let idx = ((u * 20.0).round() as usize).min(20);
        binned[idx].push(p.point.dynamic_power().value());
    }
    let idle_floor = 2.0; // background OS draw in the model's terms
    let mut curve: Vec<(Utilization, Watts)> = vec![(Utilization::IDLE, Watts(idle_floor))];
    for (i, bucket) in binned.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let mut b = bucket.clone();
        b.sort_by(|a, c| a.partial_cmp(c).expect("NaN power"));
        let median = b[b.len() / 2];
        curve.push((Utilization::new(i as f64 / 20.0), Watts(median)));
    }

    println!("Haswell dynamic-power curve ({} utilization bins):", curve.len());
    for (u, p) in &curve {
        let bar = "#".repeat((p.value() / 4.0) as usize);
        println!("  {:>5.0}% | {bar} {:.1} W", u.percent(), p.value());
    }

    let idle = curve.first().expect("non-empty curve").1;
    let peak = curve.last().expect("non-empty curve").1;
    println!("\nEP metrics over the median curve:");
    println!("  Ryckbosch area metric:    {:.3}  (1.0 = perfectly proportional)", ep_metric_area(&curve));
    println!("  Hsu–Poole integrated gap: {:.3}", ep_metric_hsu_poole(&curve));
    println!("  Barroso–Hölzle dynamic range: {:.1}×", dynamic_range(idle, peak));

    // The proportionality gap at a mid-load point — where servers live.
    let (u_mid, p_mid) = curve[curve.len() / 2];
    println!(
        "  proportionality gap at {:.0}% load: {:+.1}% of peak",
        u_mid.percent(),
        proportionality_gap(u_mid, p_mid, idle, peak) * 100.0
    );
    println!(
        "\n(but remember Fig. 4: the full scatter is NON-functional — the curve\n\
         above hides up to ~66% power spread at equal utilization)"
    );
}
