//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, implemented over
//! `std::thread::scope` (stable since 1.63). The API contract matches
//! crossbeam's: the scope closure receives a handle whose `spawn` passes
//! the scope back into each worker closure (so workers can spawn
//! siblings), `scope` returns `Err` with the panic payload if any
//! unjoined child panicked, and `ScopedJoinHandle::join` surfaces
//! individual panics.

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as std_thread;

    /// Payload of a propagated panic.
    pub type Panic = Box<dyn Any + Send + 'static>;

    /// A scope handle: spawns threads that may borrow from the enclosing
    /// environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again,
        /// mirroring crossbeam's signature (`|_| ...` at most call sites).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Handle to one scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T, Panic> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle, joining all spawned threads before
    /// returning. A panic from an unjoined child (or from `f` itself)
    /// comes back as `Err`, matching crossbeam rather than std's
    /// propagation.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Panic>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let n = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_reported_as_err() {
        let result = crate::thread::scope(|s| {
            s.spawn::<_, ()>(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
