//! The content-addressed result cache.
//!
//! Deterministic seed-splitting makes a sweep response a pure function of
//! its canonical request key, so caching is *exact*: a hit returns bytes
//! bitwise-identical to what a fresh computation would produce. This
//! generalizes the gpusim `ProductProfile` one-deep memoization to a
//! shared, persistent store keyed by the whole request.
//!
//! Three layers:
//!
//! * an in-memory map from canonical key to the complete response body;
//! * in-flight dedup: concurrent requests for the same key coalesce onto
//!   one computation — the first claims a [`PendingEntry`], the rest block
//!   until it is filled (or abandoned) and then share the bytes;
//! * an on-disk append-only log using the same CRC-guarded framing as
//!   `enprop_apps::checkpoint` (`[len u32 LE][crc32 u32 LE][JSON body]`),
//!   loaded tolerantly: a torn or corrupt tail — the signature of a kill
//!   mid-append — is dropped and truncated away, and every record before
//!   it replays. CRC and truncation behaviour mirror the journal's
//!   torn-write contract.

use enprop_apps::checkpoint::crc32;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Frame header: `[body_len u32 LE][crc32(body) u32 LE]` — identical to the
/// checkpoint journal's framing.
const FRAME_HEADER_LEN: usize = 8;

/// FNV-1a 64-bit over the canonical key — the content address. Collisions
/// are irrelevant for correctness (the map is keyed by the full canonical
/// string; the hash only names entries in headers and logs).
pub fn content_hash(canonical: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One persisted cache entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheRecord {
    /// The canonical request key.
    key: String,
    /// The complete response body (NDJSON text).
    body: String,
}

/// Counters the `/stats` endpoint and the throughput bench report.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

/// A point-in-time view of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStatsSnapshot {
    /// Requests answered from a completed entry.
    pub hits: u64,
    /// Requests that had to compute (and then filled the cache).
    pub misses: u64,
    /// Requests that joined an in-flight computation for the same key
    /// (counted as hits as well: no work was done for them).
    pub coalesced: u64,
}

impl CacheStats {
    fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

/// Cache slot state: a computation in flight, or the finished bytes.
enum Slot {
    InFlight,
    Ready(Arc<Vec<u8>>),
}

struct DiskLog {
    path: PathBuf,
    file: File,
}

/// What the on-disk load found, for logs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReportDisk {
    /// Entries replayed from the clean prefix.
    pub replayed: usize,
    /// Bytes of torn/corrupt tail dropped and truncated away.
    pub torn_tail_bytes: u64,
}

/// The shared result cache. All methods take `&self`; the cache is wrapped
/// in an `Arc` and shared across connection handler threads.
pub struct ResultCache {
    map: Mutex<HashMap<String, Slot>>,
    ready: Condvar,
    disk: Option<Mutex<DiskLog>>,
    stats: CacheStats,
    /// What loading the persistent store found.
    load_report: LoadReportDisk,
}

/// Outcome of a cache probe.
pub enum Lookup<'a> {
    /// The complete response body — serve it verbatim.
    Hit(Arc<Vec<u8>>),
    /// This caller owns the computation: compute, then
    /// [`fill`](PendingEntry::fill) (dropping unfilled releases waiters).
    Miss(PendingEntry<'a>),
}

/// The claim a cache miss holds while computing. Filling publishes the
/// bytes to every waiter and appends them to the persistent store;
/// dropping without filling (the computation panicked or errored) removes
/// the in-flight marker so a waiter can claim the key instead.
pub struct PendingEntry<'a> {
    cache: &'a ResultCache,
    key: String,
    filled: bool,
}

fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ResultCache {
    /// An in-memory-only cache.
    pub fn in_memory() -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
            disk: None,
            stats: CacheStats::default(),
            load_report: LoadReportDisk::default(),
        }
    }

    /// A cache backed by `dir/cache.log`. Existing entries are replayed
    /// into memory; a torn or corrupt tail (kill mid-append) is dropped and
    /// the file truncated to the clean prefix.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("cache.log");
        let mut file =
            OpenOptions::new().create(true).read(true).append(true).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (records, clean_len) = scan_frames(&bytes);
        let torn = bytes.len() as u64 - clean_len;
        if torn > 0 {
            // Drop the tail exactly as the checkpoint journal does: the
            // clean prefix is authoritative, the torn suffix never happened.
            file.set_len(clean_len)?;
            file.seek(io::SeekFrom::End(0))?;
        }
        let mut map = HashMap::new();
        let replayed = records.len();
        for r in records {
            // Last-wins is fine: identical keys carry identical bodies (the
            // determinism contract), so replays are idempotent.
            map.insert(r.key, Slot::Ready(Arc::new(r.body.into_bytes())));
        }
        Ok(Self {
            map: Mutex::new(map),
            ready: Condvar::new(),
            disk: Some(Mutex::new(DiskLog { path, file })),
            stats: CacheStats::default(),
            load_report: LoadReportDisk { replayed, torn_tail_bytes: torn },
        })
    }

    /// What loading the persistent store found (zeros for in-memory).
    pub fn load_report(&self) -> LoadReportDisk {
        self.load_report
    }

    /// Completed entries currently in memory.
    pub fn entries(&self) -> usize {
        lock_unpoisoned(&self.map)
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Counter snapshot for `/stats`.
    pub fn stats(&self) -> CacheStatsSnapshot {
        self.stats.snapshot()
    }

    /// Probes `key`: a completed entry is a [`Lookup::Hit`]; an in-flight
    /// one blocks until its owner fills or abandons it; an absent one
    /// claims the key and returns [`Lookup::Miss`].
    pub fn lookup_or_begin(&self, key: &str) -> Lookup<'_> {
        let mut map = lock_unpoisoned(&self.map);
        loop {
            match map.get(key) {
                Some(Slot::Ready(body)) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Hit(Arc::clone(body));
                }
                Some(Slot::InFlight) => {
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    // Block until the owner fills or abandons the entry,
                    // then re-probe: on fill we hit; on abandon we claim.
                    map = self
                        .ready
                        .wait(map)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    map.insert(key.to_string(), Slot::InFlight);
                    return Lookup::Miss(PendingEntry {
                        cache: self,
                        key: key.to_string(),
                        filled: false,
                    });
                }
            }
        }
    }

    /// Publishes `body` under `key` and appends it to the persistent store.
    fn publish(&self, key: &str, body: Arc<Vec<u8>>) -> io::Result<()> {
        {
            let mut map = lock_unpoisoned(&self.map);
            map.insert(key.to_string(), Slot::Ready(Arc::clone(&body)));
        }
        self.ready.notify_all();
        if let Some(disk) = &self.disk {
            let record = CacheRecord {
                key: key.to_string(),
                body: String::from_utf8_lossy(&body).into_owned(),
            };
            let json = serde_json::to_string(&record)
                .map_err(|e| io::Error::other(e.to_string()))?;
            let mut log = lock_unpoisoned(disk);
            let frame = encode_frame(json.as_bytes());
            log.file.write_all(&frame)?;
            // One fsync per filled entry: entries are whole responses, so
            // group-commit buys nothing and durability is the point.
            log.file.sync_data()?;
        }
        Ok(())
    }

    /// The persistent store's path, if any (tests inject torn tails).
    pub fn disk_path(&self) -> Option<PathBuf> {
        self.disk.as_ref().map(|d| lock_unpoisoned(d).path.clone())
    }
}

impl PendingEntry<'_> {
    /// Publishes the computed body; waiters wake and serve these bytes.
    /// Disk append errors are returned but the in-memory entry is already
    /// published — the daemon keeps serving, merely without durability.
    pub fn fill(mut self, body: Vec<u8>) -> (Arc<Vec<u8>>, io::Result<()>) {
        self.filled = true;
        let body = Arc::new(body);
        let disk_result = self.cache.publish(&self.key, Arc::clone(&body));
        (body, disk_result)
    }
}

impl Drop for PendingEntry<'_> {
    fn drop(&mut self) {
        if self.filled {
            return;
        }
        // The computation died: release the claim so a waiter can retry
        // instead of blocking forever on an entry nobody will fill.
        let mut map = lock_unpoisoned(&self.cache.map);
        if matches!(map.get(&self.key), Some(Slot::InFlight)) {
            map.remove(&self.key);
        }
        drop(map);
        self.cache.ready.notify_all();
    }
}

/// Encodes one frame exactly as `enprop_apps::checkpoint` does.
fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    frame.extend_from_slice(&u32::try_from(body.len()).expect("frame body fits u32").to_le_bytes());
    frame.extend_from_slice(&crc32(body).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// Scans frames tolerantly: returns the decoded records of the clean
/// prefix and its byte length. Scanning stops at the first torn or corrupt
/// frame — after a framing failure nothing downstream can be trusted.
fn scan_frames(bytes: &[u8]) -> (Vec<CacheRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return (records, pos as u64);
        }
        if remaining < FRAME_HEADER_LEN {
            return (records, pos as u64);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > remaining - FRAME_HEADER_LEN {
            return (records, pos as u64);
        }
        let body = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
        if crc32(body) != crc {
            return (records, pos as u64);
        }
        let Ok(text) = std::str::from_utf8(body) else {
            return (records, pos as u64);
        };
        let Ok(record) = serde_json::from_str::<CacheRecord>(text) else {
            return (records, pos as u64);
        };
        records.push(record);
        pos += FRAME_HEADER_LEN + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("enprop-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn content_hash_is_stable_and_distinct() {
        let a = content_hash("gpu-matmul/k40c/N=256/P=2/seed=1/chunk=32");
        let b = content_hash("gpu-matmul/k40c/N=256/P=2/seed=2/chunk=32");
        assert_ne!(a, b);
        assert_eq!(a, content_hash("gpu-matmul/k40c/N=256/P=2/seed=1/chunk=32"));
    }

    #[test]
    fn miss_fill_hit_round_trip() {
        let cache = ResultCache::in_memory();
        let Lookup::Miss(pending) = cache.lookup_or_begin("k") else {
            panic!("expected a miss");
        };
        let (body, disk) = pending.fill(b"payload".to_vec());
        disk.unwrap();
        assert_eq!(&**body, b"payload");
        match cache.lookup_or_begin("k") {
            Lookup::Hit(b) => assert_eq!(&**b, b"payload"),
            Lookup::Miss(_) => panic!("expected a hit"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.coalesced), (1, 1, 0));
    }

    #[test]
    fn abandoned_claim_releases_waiters() {
        let cache = Arc::new(ResultCache::in_memory());
        let Lookup::Miss(pending) = cache.lookup_or_begin("k") else {
            panic!("expected a miss");
        };
        let waiter = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || match cache.lookup_or_begin("k") {
                Lookup::Hit(_) => panic!("nothing was filled"),
                Lookup::Miss(p) => {
                    let (body, _) = p.fill(b"second try".to_vec());
                    body.len()
                }
            })
        };
        // Give the waiter time to block on the in-flight entry, then
        // abandon the claim (simulating a panicked computation).
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(pending);
        assert_eq!(waiter.join().unwrap(), b"second try".len());
    }

    #[test]
    fn concurrent_same_key_coalesces_onto_one_computation() {
        let cache = Arc::new(ResultCache::in_memory());
        let Lookup::Miss(pending) = cache.lookup_or_begin("k") else {
            panic!("expected a miss");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || match cache.lookup_or_begin("k") {
                    Lookup::Hit(b) => b.len(),
                    Lookup::Miss(_) => panic!("computation was already in flight"),
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(50));
        pending.fill(b"shared".to_vec()).1.unwrap();
        for w in waiters {
            assert_eq!(w.join().unwrap(), b"shared".len());
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "only one computation");
        assert_eq!(s.coalesced, 4, "all four waiters coalesced");
    }

    #[test]
    fn disk_store_round_trips() {
        let dir = tmp_dir("roundtrip");
        {
            let cache = ResultCache::open(&dir).unwrap();
            let Lookup::Miss(p) = cache.lookup_or_begin("key-a") else { panic!() };
            p.fill(b"body-a".to_vec()).1.unwrap();
            let Lookup::Miss(p) = cache.lookup_or_begin("key-b") else { panic!() };
            p.fill(b"body-b".to_vec()).1.unwrap();
        }
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load_report(), LoadReportDisk { replayed: 2, torn_tail_bytes: 0 });
        match cache.lookup_or_begin("key-a") {
            Lookup::Hit(b) => assert_eq!(&**b, b"body-a"),
            Lookup::Miss(_) => panic!("key-a must replay"),
        }
        match cache.lookup_or_begin("key-b") {
            Lookup::Hit(b) => assert_eq!(&**b, b"body-b"),
            Lookup::Miss(_) => panic!("key-b must replay"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated() {
        let dir = tmp_dir("torn");
        let path = {
            let cache = ResultCache::open(&dir).unwrap();
            let Lookup::Miss(p) = cache.lookup_or_begin("key-a") else { panic!() };
            p.fill(b"body-a".to_vec()).1.unwrap();
            cache.disk_path().unwrap()
        };
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // A kill mid-append: half a frame of a second entry.
        let record = CacheRecord { key: "key-b".into(), body: "body-b".into() };
        let frame = encode_frame(serde_json::to_string(&record).unwrap().as_bytes());
        let torn = &frame[..frame.len() / 2];
        OpenOptions::new().append(true).open(&path).unwrap().write_all(torn).unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(
            cache.load_report(),
            LoadReportDisk { replayed: 1, torn_tail_bytes: torn.len() as u64 }
        );
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "tail truncated");
        match cache.lookup_or_begin("key-a") {
            Lookup::Hit(b) => assert_eq!(&**b, b"body-a"),
            Lookup::Miss(_) => panic!("clean prefix must replay"),
        }
        assert!(matches!(cache.lookup_or_begin("key-b"), Lookup::Miss(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_drops_the_frame_and_everything_after() {
        let dir = tmp_dir("crc");
        let path = {
            let cache = ResultCache::open(&dir).unwrap();
            for (k, b) in [("key-a", "body-a"), ("key-b", "body-b")] {
                let Lookup::Miss(p) = cache.lookup_or_begin(k) else { panic!() };
                p.fill(b.as_bytes().to_vec()).1.unwrap();
            }
            cache.disk_path().unwrap()
        };
        // Flip one byte inside the second frame's body.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.load_report().replayed, 1);
        assert!(cache.load_report().torn_tail_bytes > 0);
        assert!(matches!(cache.lookup_or_begin("key-a"), Lookup::Hit(_)));
        assert!(matches!(cache.lookup_or_begin("key-b"), Lookup::Miss(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
