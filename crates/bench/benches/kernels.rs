//! Microbenchmarks of the real compute kernels: the Fig. 3 threadgroup
//! DGEMM decomposition and the parallel 2-D FFT. These give the toolkit an
//! executable ground truth for its work accounting on the host machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use enprop_kernels::{dgemm_threadgroups, fft2d_parallel, Complex, Matrix, ThreadgroupConfig};

fn bench_dgemm_threadgroups(c: &mut Criterion) {
    let n = 256;
    let a = Matrix::filled(n, n, 1);
    let b = Matrix::filled(n, n, 2);
    let flops = 2.0 * (n as f64).powi(3);

    let mut g = c.benchmark_group("dgemm_threadgroups");
    g.throughput(Throughput::Elements(flops as u64));
    g.sample_size(10);
    for &(p, t) in &[(1usize, 1usize), (1, 4), (2, 2), (4, 1), (2, 4)] {
        g.bench_with_input(BenchmarkId::from_parameter(format!("p{p}t{t}")), &(p, t), |bch, _| {
            bch.iter(|| {
                let mut cmat = Matrix::square(n);
                let cfg = ThreadgroupConfig { groups: p, threads_per_group: t, block_size: 32 };
                dgemm_threadgroups(cfg, &a, &b, &mut cmat)
            })
        });
    }
    g.finish();
}

fn bench_dgemm_block_size(c: &mut Criterion) {
    // Ablation: cache-block dimension of the serial kernel (the CPU
    // analogue of the GPU decision variable BS).
    let n = 192;
    let a = Matrix::filled(n, n, 1);
    let b = Matrix::filled(n, n, 2);
    let mut g = c.benchmark_group("dgemm_block_size");
    g.sample_size(10);
    for &bs in &[4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |bch, &bs| {
            bch.iter(|| {
                let mut cmat = Matrix::square(n);
                enprop_kernels::dgemm_blocked(
                    1.0,
                    a.as_slice(),
                    b.as_slice(),
                    0.0,
                    cmat.as_mut_slice(),
                    n,
                    n,
                    n,
                    bs,
                );
                cmat
            })
        });
    }
    g.finish();
}

fn bench_fft2d(c: &mut Criterion) {
    let n = 128;
    let signal: Vec<Complex> = {
        let re = Matrix::filled(n, n, 7);
        let im = Matrix::filled(n, n, 8);
        (0..n * n).map(|k| Complex::new(re.as_slice()[k], im.as_slice()[k])).collect()
    };
    let mut g = c.benchmark_group("fft2d_parallel");
    g.sample_size(10);
    for &threads in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, &threads| {
            bch.iter(|| {
                let mut x = signal.clone();
                fft2d_parallel(&mut x, n, threads);
                x
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dgemm_threadgroups, bench_dgemm_block_size, bench_fft2d);
criterion_main!(benches);
