//! Prints the (BS → time, energy, power, occupancy) sweep of the analytic
//! model for both GPUs — the raw material of the paper's Figs. 2, 7 and 8,
//! and the tool used to calibrate the power-model constants.
//!
//! Run: `cargo run -p enprop-gpusim --example sweep_probe [N]`

use enprop_gpusim::{GpuArch, TiledDgemm, TiledDgemmConfig};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10240);
    for arch in GpuArch::catalog() {
        let model = TiledDgemm::new(arch);
        println!("== {} (N = {n}) ==", model.arch().name);
        println!("{:>3} {:>10} {:>10} {:>9} {:>6} {:>6} {:>6}", "BS", "time[s]", "E_dyn[J]", "P[W]", "occ", "s_cmp", "boost");
        let mut best_t = f64::MAX;
        let mut best_e = f64::MAX;
        let (mut argt, mut arge) = (0, 0);
        for bs in 1..=32 {
            let cfg = TiledDgemmConfig { n, bs, g: 1, r: 1 };
            if !cfg.is_valid(model.arch()) {
                continue;
            }
            let e = model.estimate(&cfg);
            let (t, ed) = (e.time.value(), e.dynamic_energy().value());
            if t < best_t {
                best_t = t;
                argt = bs;
            }
            if ed < best_e {
                best_e = ed;
                arge = bs;
            }
            if bs >= 20 || bs % 4 == 0 {
                println!(
                    "{:>3} {:>10.4} {:>10.1} {:>9.1} {:>6.3} {:>6.3} {:>6}",
                    bs,
                    t,
                    ed,
                    e.steady_power.value(),
                    e.occupancy,
                    e.compute_share,
                    e.boosted
                );
            }
        }
        println!("fastest: BS={argt} ({best_t:.4}s)  frugal: BS={arge} ({best_e:.1}J)");
        println!();
    }
}
