//! Blocked serial DGEMM: `C ← α·A·B + β·C`.
//!
//! The cache-blocked kernel mirrors the structure of the GPU application of
//! the paper's Fig. 5: the computation proceeds tile by tile, accumulating
//! sub-products of `bs × bs` blocks. On a CPU the "shared memory" role is
//! played by the L1/L2-resident tiles.

use crate::matrix::Matrix;
use crate::par;

/// Naive triple loop, used as the correctness reference.
pub fn dgemm_naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "output shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            c.set(i, j, alpha * acc + beta * c.get(i, j));
        }
    }
}

/// Register-tile height of the packed micro-kernel.
const MR: usize = 4;
/// Register-tile width of the packed micro-kernel — the vectorizable
/// direction (B lanes are contiguous in the packed strip), kept at two
/// 4-wide vectors per C row.
const NR: usize = 8;

/// Cache-blocked DGEMM with a square tile of dimension `bs`, built on
/// packed panels and an `MR × NR` (4 × 8) register-tiled micro-kernel.
///
/// Per cache tile, the `A` sub-panel is packed into strips of [`MR`] rows
/// laid out column-by-column and the `B` sub-panel into strips of [`NR`]
/// columns laid out row-by-row, so the micro-kernel streams both operands
/// contiguously; each `MR × NR` block of `C` then accumulates in
/// registers with one fully unrolled multiply–add per element per `k`
/// step, and spills `C += α·acc` once at tile end. Ragged edges are
/// zero-padded in the packing (the padded lanes multiply zeros and are
/// never written back).
///
/// Operates on raw row-major slices so the threadgroup harness can hand each
/// thread a disjoint band of A and C while sharing B.
///
/// * `a`: `m × k` band of A (row-major, leading dimension `k`)
/// * `b`: `k × n` shared B
/// * `c`: `m × n` band of C
#[allow(clippy::too_many_arguments)] // deliberately BLAS-shaped signature
pub fn dgemm_blocked(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    bs: usize,
) {
    // Dispatch once per call, not per micro-tile: on x86-64 with AVX2 the
    // whole packed driver (and the micro-kernel inlined into it) is
    // recompiled with 256-bit vectors. The body is identical safe code in
    // both instantiations, rustc never fuses or reassociates floating
    // point, and every accumulator chain keeps its order — so both paths
    // produce bitwise-identical output; only the instruction selection
    // differs.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: guarded by the runtime AVX2 check above.
        unsafe {
            return dgemm_blocked_avx2(alpha, a, b, beta, c, m, k, n, bs);
        }
    }
    dgemm_blocked_body(alpha, a, b, beta, c, m, k, n, bs);
}

/// The instruction-set tier [`dgemm_blocked`] dispatches to on this host,
/// recorded as the `simd_dispatch` field of kernel benchmark sections:
/// `"avx2"` or `"scalar"`.
pub fn simd_dispatch() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return "avx2";
    }
    "scalar"
}

/// Multi-threaded [`dgemm_blocked`]: the packed driver over disjoint row
/// slabs of `A` and `C`, claimed in [`MR`]-row strips from a shared
/// chunked cursor ([`par::claim_chunks`]).
///
/// Bitwise-identical to the serial kernel at **any** thread count. Each
/// `C` element accrues exactly one `C += α·acc` spill per `bs`-sized
/// k-block, in ascending k-block order, and the in-register accumulator
/// chain inside a k-block sums in ascending-`k` order — a sequence fixed
/// entirely by the `kc` blocking of `k`, never by how rows are grouped
/// into cache tiles or slabs (packing only copies values, and ragged
/// strips pad with zeros that are never written back). Restarting the
/// driver's `i0` loop at each slab base therefore changes no element's
/// operation sequence. β-scaling runs once up front (the same element-wise
/// loop the serial driver uses), after which every slab runs with `β = 1`.
#[allow(clippy::too_many_arguments)] // deliberately BLAS-shaped signature
pub fn dgemm_blocked_mt(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    bs: usize,
    threads: usize,
) {
    assert!(threads >= 1, "need at least one thread");
    assert!(bs > 0, "block size must be positive");
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");

    let strips = m.div_ceil(MR);
    let workers = threads.min(strips);
    if workers <= 1 {
        return dgemm_blocked(alpha, a, b, beta, c, m, k, n, bs);
    }

    // Scale C by beta once up front, so each slab call passes β = 1 and
    // the per-slab driver's scaling is a no-op.
    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }

    let c_base = par::SendPtr::new(c.as_mut_ptr());
    par::claim_chunks(strips, workers, |s0, s1| {
        let r0 = s0 * MR;
        let r1 = (s1 * MR).min(m);
        let rows = r1 - r0;
        // SAFETY: the claiming cursor hands out disjoint strip ranges, so
        // this `rows × n` slab of C is touched by exactly one worker; the
        // scope join inside `claim_chunks` publishes the writes.
        let c_slab = unsafe { std::slice::from_raw_parts_mut(c_base.get().add(r0 * n), rows * n) };
        dgemm_blocked(alpha, &a[r0 * k..r1 * k], b, 1.0, c_slab, rows, k, n, bs);
    });
}

/// The packed driver compiled with AVX2 enabled (same safe body).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dgemm_blocked_avx2(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    bs: usize,
) {
    dgemm_blocked_body(alpha, a, b, beta, c, m, k, n, bs);
}

/// The packed cache-blocked driver behind [`dgemm_blocked`]; inlined into
/// each feature-specific instantiation.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn dgemm_blocked_body(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    bs: usize,
) {
    assert!(bs > 0, "block size must be positive");
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");

    // Scale C by beta once up front.
    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }

    // Packing buffers, sized for one cache tile (rounded up to whole
    // register strips) and reused across all tiles.
    let mc_cap = bs.min(m).div_ceil(MR) * MR;
    let nc_cap = bs.min(n).div_ceil(NR) * NR;
    let kc_cap = bs.min(k);
    let mut apack = vec![0.0f64; mc_cap * kc_cap];
    let mut bpack = vec![0.0f64; kc_cap * nc_cap];

    for l0 in (0..k).step_by(bs) {
        let kc = (l0 + bs).min(k) - l0;
        for i0 in (0..m).step_by(bs) {
            let mc = (i0 + bs).min(m) - i0;
            pack_a(&mut apack, a, i0, l0, mc, kc, k);
            for j0 in (0..n).step_by(bs) {
                let nc = (j0 + bs).min(n) - j0;
                pack_b(&mut bpack, b, l0, j0, kc, nc, n);
                for ir in (0..mc).step_by(MR) {
                    let mr = MR.min(mc - ir);
                    let astrip = &apack[(ir / MR) * MR * kc..(ir / MR + 1) * MR * kc];
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let bstrip = &bpack[(jr / NR) * NR * kc..(jr / NR + 1) * NR * kc];
                        microkernel(astrip, bstrip, kc, alpha, c, i0 + ir, j0 + jr, mr, nr, n);
                    }
                }
            }
        }
    }
}

/// Packs the `mc × kc` sub-panel of `A` at `(i0, l0)` into strips of [`MR`]
/// rows, each strip laid out column-by-column (`MR` consecutive doubles per
/// `k` step). Rows past `mc` are zero-padded.
fn pack_a(apack: &mut [f64], a: &[f64], i0: usize, l0: usize, mc: usize, kc: usize, lda: usize) {
    for s in 0..mc.div_ceil(MR) {
        let strip = &mut apack[s * MR * kc..(s + 1) * MR * kc];
        for r in 0..MR {
            let i = s * MR + r;
            if i < mc {
                let arow = &a[(i0 + i) * lda + l0..(i0 + i) * lda + l0 + kc];
                for (l, &v) in arow.iter().enumerate() {
                    strip[l * MR + r] = v;
                }
            } else {
                for l in 0..kc {
                    strip[l * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Packs the `kc × nc` sub-panel of `B` at `(l0, j0)` into strips of [`NR`]
/// columns, each strip laid out row-by-row (`NR` consecutive doubles per
/// `k` step). Columns past `nc` are zero-padded.
fn pack_b(bpack: &mut [f64], b: &[f64], l0: usize, j0: usize, kc: usize, nc: usize, ldb: usize) {
    for s in 0..nc.div_ceil(NR) {
        let strip = &mut bpack[s * NR * kc..(s + 1) * NR * kc];
        let width = NR.min(nc - s * NR);
        for l in 0..kc {
            let brow = &b[(l0 + l) * ldb + j0 + s * NR..];
            let dst = &mut strip[l * NR..(l + 1) * NR];
            dst[..width].copy_from_slice(&brow[..width]);
            dst[width..].fill(0.0);
        }
    }
}

/// The `MR × NR` register-tiled micro-kernel: an accumulator block over
/// one packed A strip and one packed B strip, fully unrolled, with
/// `C += α·acc` spilled once at the end (only the valid `mr × nr` corner).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn microkernel(
    astrip: &[f64],
    bstrip: &[f64],
    kc: usize,
    alpha: f64,
    c: &mut [f64],
    ci: usize,
    cj: usize,
    mr: usize,
    nr: usize,
    ldc: usize,
) {
    let mut acc = [[0.0f64; NR]; MR];
    // `chunks_exact` hands the loop fixed-size windows, so every lane read
    // below is bounds-check-free, and the fixed-size `MR × NR` inner loops
    // unroll completely — each C row becomes broadcast(a_r) times the
    // contiguous B lane vector, the shape the auto-vectorizer wants.
    for (av, bv) in astrip[..kc * MR]
        .chunks_exact(MR)
        .zip(bstrip[..kc * NR].chunks_exact(NR))
    {
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = av[r];
            for (x, lane) in row.iter_mut().enumerate() {
                *lane += ar * bv[x];
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        let crow = &mut c[(ci + r) * ldc + cj..(ci + r) * ldc + cj + nr];
        for (x, dst) in crow.iter_mut().enumerate() {
            *dst += alpha * row[x];
        }
    }
}

/// The pre-packing cache-blocked kernel (tile-wise triple loop over raw
/// rows, no packing, no register tiling) — retained verbatim as the
/// baseline of the `host_kernels` GFLOPS benchmark gate.
///
/// Semantics are identical to [`dgemm_blocked`] up to floating-point
/// reassociation.
#[allow(clippy::too_many_arguments)] // deliberately BLAS-shaped signature
pub fn dgemm_blocked_unpacked(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    bs: usize,
) {
    assert!(bs > 0, "block size must be positive");
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");

    // Scale C by beta once up front.
    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }

    for i0 in (0..m).step_by(bs) {
        let i1 = (i0 + bs).min(m);
        for l0 in (0..k).step_by(bs) {
            let l1 = (l0 + bs).min(k);
            for j0 in (0..n).step_by(bs) {
                let j1 = (j0 + bs).min(n);
                // Micro-kernel on the (i0..i1) × (j0..j1) tile.
                for i in i0..i1 {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n..(i + 1) * n];
                    for l in l0..l1 {
                        let aval = alpha * arow[l];
                        let brow = &b[l * n..(l + 1) * n];
                        for j in j0..j1 {
                            crow[j] += aval * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Flop count of one `m × k × n` GEMM (one multiply + one add per inner
/// iteration); `2 N³` for square matrices, the paper's work measure.
pub fn dgemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked_on_matrices(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix, bs: usize) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        dgemm_blocked(alpha, a.as_slice(), b.as_slice(), beta, c.as_mut_slice(), m, k, n, bs);
    }

    #[test]
    fn blocked_matches_naive_square() {
        for &n in &[1usize, 2, 7, 16, 33] {
            let a = Matrix::filled(n, n, 1);
            let b = Matrix::filled(n, n, 2);
            let mut c1 = Matrix::filled(n, n, 3);
            let mut c2 = c1.clone();
            dgemm_naive(1.5, &a, &b, 0.5, &mut c1);
            blocked_on_matrices(1.5, &a, &b, 0.5, &mut c2, 8);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let (m, k, n) = (9, 14, 5);
        let a = Matrix::filled(m, k, 10);
        let b = Matrix::filled(k, n, 20);
        let mut c1 = Matrix::filled(m, n, 30);
        let mut c2 = c1.clone();
        dgemm_naive(1.0, &a, &b, 1.0, &mut c1);
        blocked_on_matrices(1.0, &a, &b, 1.0, &mut c2, 4);
        assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn block_size_does_not_change_result() {
        let n = 24;
        let a = Matrix::filled(n, n, 5);
        let b = Matrix::filled(n, n, 6);
        let mut reference = Matrix::square(n);
        blocked_on_matrices(1.0, &a, &b, 0.0, &mut reference, 1);
        for &bs in &[2usize, 3, 8, 24, 100] {
            let mut c = Matrix::square(n);
            blocked_on_matrices(1.0, &a, &b, 0.0, &mut c, bs);
            assert!(reference.max_abs_diff(&c) < 1e-10, "bs = {bs}");
        }
    }

    #[test]
    fn packed_matches_unpacked_baseline() {
        // The packed register-tiled kernel and the retained baseline agree
        // (up to reassociation) on square, ragged and rectangular shapes.
        for &(m, k, n, bs) in &[(16usize, 16usize, 16usize, 8usize), (7, 13, 9, 4), (33, 5, 21, 8)]
        {
            let a = Matrix::filled(m, k, 41);
            let b = Matrix::filled(k, n, 42);
            let c0 = Matrix::filled(m, n, 43);
            let mut c1 = c0.clone();
            let mut c2 = c0.clone();
            dgemm_blocked(1.25, a.as_slice(), b.as_slice(), 0.75, c1.as_mut_slice(), m, k, n, bs);
            dgemm_blocked_unpacked(
                1.25,
                a.as_slice(),
                b.as_slice(),
                0.75,
                c2.as_mut_slice(),
                m,
                k,
                n,
                bs,
            );
            assert!(c1.max_abs_diff(&c2) < 1e-10, "m={m} k={k} n={n} bs={bs}");
        }
    }

    #[test]
    fn beta_zero_ignores_initial_c() {
        let n = 8;
        let a = Matrix::filled(n, n, 1);
        let b = Matrix::filled(n, n, 2);
        let mut c1 = Matrix::filled(n, n, 99);
        let mut c2 = Matrix::square(n);
        blocked_on_matrices(1.0, &a, &b, 0.0, &mut c1, 4);
        blocked_on_matrices(1.0, &a, &b, 0.0, &mut c2, 4);
        assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    fn bits(s: &[f64]) -> Vec<u64> {
        s.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn mt_bitwise_identical_across_thread_counts() {
        // Square, ragged (m not a multiple of MR or bs), and rectangular
        // shapes; α/β exercised away from 0 and 1 so the hoisted β-scaling
        // path is covered too.
        for &(m, k, n, bs) in &[
            (64usize, 64usize, 64usize, 16usize),
            (33, 17, 29, 8),
            (7, 13, 9, 4),
            (4, 4, 4, 4),
        ] {
            let a = Matrix::filled(m, k, 51);
            let b = Matrix::filled(k, n, 52);
            let c0 = Matrix::filled(m, n, 53);
            let mut reference = c0.clone();
            dgemm_blocked(
                1.25,
                a.as_slice(),
                b.as_slice(),
                0.75,
                reference.as_mut_slice(),
                m,
                k,
                n,
                bs,
            );
            for &threads in &[1usize, 2, 8] {
                let mut c = c0.clone();
                dgemm_blocked_mt(
                    1.25,
                    a.as_slice(),
                    b.as_slice(),
                    0.75,
                    c.as_mut_slice(),
                    m,
                    k,
                    n,
                    bs,
                    threads,
                );
                assert_eq!(
                    bits(reference.as_slice()),
                    bits(c.as_slice()),
                    "m={m} k={k} n={n} bs={bs} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn mt_beta_zero_matches_serial_bitwise() {
        let (m, k, n, bs) = (19, 11, 23, 8);
        let a = Matrix::filled(m, k, 61);
        let b = Matrix::filled(k, n, 62);
        let mut reference = Matrix::filled(m, n, 99);
        let mut c = reference.clone();
        dgemm_blocked(2.0, a.as_slice(), b.as_slice(), 0.0, reference.as_mut_slice(), m, k, n, bs);
        dgemm_blocked_mt(2.0, a.as_slice(), b.as_slice(), 0.0, c.as_mut_slice(), m, k, n, bs, 8);
        assert_eq!(bits(reference.as_slice()), bits(c.as_slice()));
    }

    #[test]
    fn simd_dispatch_reports_known_tier() {
        assert!(matches!(simd_dispatch(), "avx2" | "scalar"));
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(2, 3, 4), 48.0);
        assert_eq!(dgemm_flops(10, 10, 10), 2000.0);
    }
}
