//! Offline stand-in for the `rand` crate.
//!
//! Only the surface this workspace touches is provided: a deterministic
//! `rngs::StdRng` seeded via `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen` / `gen_range`. The generator is SplitMix64 —
//! statistically solid for the meter-noise simulation this backs, and
//! fully reproducible from the seed, which the workspace's determinism
//! contract depends on.

use std::ops::Range;

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // Multiply-shift bounded sampling; the bias is < 2^-64 per draw.
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&x));
            let n = rng.gen_range(5usize..9);
            assert!((5..9).contains(&n));
        }
    }
}
