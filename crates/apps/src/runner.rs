//! The measurement pipeline: kernel profile → power source → simulated
//! meter → statistical stopping rule.
//!
//! This is the software equivalent of the paper's experimental rig: the
//! node with its WattsUp Pro, the HCLWATTSUP session, and the "repeat
//! until the 95% confidence interval is within 2.5%" Student-t loop.
//!
//! The rig is generic over the [`Meter`] behind the session, so the same
//! pipeline runs against the plain simulation (infallible) or a
//! [`FaultInjectingMeter`] (dropouts, glitches, transient read failures) —
//! the failure paths the sweep drivers' retry policy exists for. One failed
//! repetition aborts the whole measurement attempt: the stopping rule's
//! statistics must come from a complete, unbiased set of observations, so
//! recovery is a full re-measure (the caller's job), never a patched-up
//! partial sample.

use enprop_power::{
    ConstantLoad, EnergySession, FaultInjectingMeter, FaultPlan, MeasureError, Meter, MeterSpec,
    PiecewiseLoad, SimulatedWattsUp,
};
use enprop_stats::protocol::{try_measure_until_ci, MeasureConfig};
use enprop_units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A measured (time, energy) sample with protocol metadata.
///
/// Serializable so checkpoint journals can persist raw measured points
/// (JSON round-trips every finite `f64` bit-for-bit, which the resume
/// bitwise-identity contract depends on).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Mean execution time.
    pub time: Seconds,
    /// Mean dynamic energy.
    pub dynamic_energy: Joules,
    /// Repetitions used by the stopping rule.
    pub reps: usize,
    /// Whether the stopping rule converged.
    pub converged: bool,
}

/// The baseline-capture window every rig uses (two minutes of idle, as in
/// the HCLWATTSUP methodology) — statically valid for any meter sampling
/// at 1 Hz or faster.
const BASELINE_WINDOW: Seconds = Seconds(120.0);

/// The measurement rig: one node, one meter, one protocol.
#[derive(Debug)]
pub struct MeasurementRunner<M: Meter = SimulatedWattsUp> {
    session: EnergySession<M>,
    protocol: MeasureConfig,
    /// Relative run-to-run variation of kernel time (cudaEvent jitter and
    /// true execution variation combined).
    time_jitter: f64,
    rng_state: u64,
}

const JITTER_STREAM_TAG: u64 = 0xA076_1D64_78BD_642F;

impl MeasurementRunner<SimulatedWattsUp> {
    /// Builds the rig: a node with `idle_power`, a WattsUp-like meter, the
    /// paper's protocol, deterministic under `seed`. The idle baseline is
    /// captured eagerly — infallible because the plain simulation cannot
    /// fail under the statically-valid [`BASELINE_WINDOW`].
    pub fn new(idle_power: Watts, seed: u64) -> Self {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), idle_power, seed);
        let session = EnergySession::with_baseline_window(meter, BASELINE_WINDOW);
        Self::from_session(session, seed)
    }

    /// Builds the rig *without* capturing a baseline: the runner must be
    /// successfully [`try_reseed`](Self::try_reseed)ed (or
    /// [`reseed`](Self::reseed)ed) before measuring. This is the
    /// constructor sweep workers use — they reseed per configuration
    /// anyway, so the eager capture would be wasted work.
    pub fn cold(idle_power: Watts, seed: u64) -> Self {
        let meter = SimulatedWattsUp::new(MeterSpec::default(), idle_power, seed);
        let session =
            EnergySession::cold(meter, BASELINE_WINDOW).expect("statically-valid window");
        Self::from_session(session, seed)
    }
}

impl MeasurementRunner<FaultInjectingMeter<SimulatedWattsUp>> {
    /// Builds a rig whose meter misbehaves per `plan` — deterministically
    /// under `seed`. Constructed cold (no eager baseline capture): a
    /// fault-injecting meter can fail the capture, and that failure belongs
    /// inside the caller's retry loop, not in a panicking constructor.
    ///
    /// Panics if `plan` is invalid (rates outside `[0, 1]`).
    pub fn faulty(idle_power: Watts, plan: FaultPlan, seed: u64) -> Self {
        let inner = SimulatedWattsUp::new(MeterSpec::default(), idle_power, seed);
        let meter = FaultInjectingMeter::new(inner, plan, seed);
        let session =
            EnergySession::cold(meter, BASELINE_WINDOW).expect("statically-valid window");
        Self::from_session(session, seed)
    }
}

impl<M: Meter> MeasurementRunner<M> {
    /// Wraps an existing session into a rig.
    pub fn from_session(session: EnergySession<M>, seed: u64) -> Self {
        Self {
            session,
            protocol: MeasureConfig { max_reps: 40, ..MeasureConfig::default() },
            time_jitter: 0.004,
            rng_state: seed ^ JITTER_STREAM_TAG,
        }
    }

    /// Overrides the statistical protocol.
    pub fn with_protocol(mut self, protocol: MeasureConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Resets every stochastic component (meter noise and fault streams,
    /// re-captured idle baseline, time-jitter stream) so the rig behaves
    /// exactly as if it had been freshly built under `seed`.
    ///
    /// The parallel sweep engine reseeds a worker-local runner with a
    /// per-configuration seed before each measurement, which is what makes
    /// sweep output independent of thread count and work order. A failure
    /// here (fault-injected baseline capture) leaves the rig without a
    /// baseline; measuring then fails with
    /// [`MeasureError::BaselineNotCaptured`] until a reseed succeeds.
    pub fn try_reseed(&mut self, seed: u64) -> Result<(), MeasureError> {
        // Reset the jitter stream first so the rig's state is a pure
        // function of `seed` even when the baseline capture fails midway.
        self.rng_state = seed ^ JITTER_STREAM_TAG;
        self.session.try_reseed(seed)
    }

    /// Infallible [`try_reseed`](Self::try_reseed) for rigs whose meter
    /// cannot fail; panics on a measurement error.
    pub fn reseed(&mut self, seed: u64) {
        self.try_reseed(seed).unwrap_or_else(|e| panic!("reseed failed: {e}"));
    }

    /// Measures one kernel profile: a steady draw of `steady_power` for
    /// `time`, with the warm-up component (`warmup_power` for
    /// `warmup_time`) on top. Returns protocol-converged means.
    ///
    /// The *first* failed repetition aborts the attempt with its error —
    /// see the module docs for why partial observation sets are discarded.
    pub fn try_measure(
        &mut self,
        time: Seconds,
        steady_power: Watts,
        warmup_power: Watts,
        warmup_time: Seconds,
    ) -> Result<MeasuredPoint, MeasureError> {
        assert!(time.value() > 0.0, "kernel time must be positive");
        assert!(warmup_time <= time, "warm-up cannot outlive the kernel");

        let mut times = Vec::new();
        let session = &mut self.session;
        let jitter = self.time_jitter;
        let rng = &mut self.rng_state;
        let energy = try_measure_until_ci::<MeasureError, _>(self.protocol, || {
            // Run-to-run time variation.
            let f = 1.0 + jitter * gaussian(rng);
            let t = Seconds(time.value() * f);
            let wt = warmup_time.min(t);
            let app = if wt.value() > 0.0 && warmup_power.value() > 0.0 {
                let mut load = PiecewiseLoad::new();
                load.push(wt, steady_power + warmup_power);
                if t > wt {
                    load.push(t - wt, steady_power);
                }
                session.try_measure(&load)?.dynamic.value()
            } else {
                session.try_measure(&ConstantLoad::new(steady_power, t))?.dynamic.value()
            };
            times.push(t.value());
            Ok(app)
        })?;
        let mean_time = times.iter().sum::<f64>() / times.len() as f64;
        Ok(MeasuredPoint {
            time: Seconds(mean_time),
            dynamic_energy: Joules(energy.mean),
            reps: energy.reps,
            converged: energy.converged,
        })
    }

    /// Infallible [`try_measure`](Self::try_measure); panics on a
    /// measurement error. Kept for the plain-simulation path where failure
    /// is a programming error.
    pub fn measure(
        &mut self,
        time: Seconds,
        steady_power: Watts,
        warmup_power: Watts,
        warmup_time: Seconds,
    ) -> MeasuredPoint {
        self.try_measure(time, steady_power, warmup_power, warmup_time)
            .unwrap_or_else(|e| panic!("measurement failed: {e}"))
    }
}

/// Box–Muller standard normal on a splitmix stream.
fn gaussian(state: &mut u64) -> f64 {
    let u1 = (unit(state)).max(1e-12);
    let u2 = unit(state);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_close_to_truth() {
        let mut r = MeasurementRunner::new(Watts(90.0), 7);
        let m = r.measure(Seconds(60.0), Watts(150.0), Watts::ZERO, Seconds::ZERO);
        assert!(m.converged);
        let truth = 150.0 * 60.0;
        assert!(
            (m.dynamic_energy.value() - truth).abs() / truth < 0.05,
            "{m:?} vs {truth}"
        );
        assert!((m.time.value() - 60.0).abs() < 1.0);
    }

    #[test]
    fn warmup_component_adds_energy() {
        let mut r1 = MeasurementRunner::new(Watts(90.0), 3);
        let plain = r1.measure(Seconds(30.0), Watts(150.0), Watts::ZERO, Seconds::ZERO);
        let mut r2 = MeasurementRunner::new(Watts(90.0), 3);
        let warm = r2.measure(Seconds(30.0), Watts(150.0), Watts(58.0), Seconds(2.0));
        let gap = warm.dynamic_energy.value() - plain.dynamic_energy.value();
        assert!((gap - 116.0).abs() < 60.0, "gap {gap}");
    }

    #[test]
    fn deterministic_under_seed() {
        let m1 = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        let m2 = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        assert_eq!(m1, m2);
    }

    #[test]
    fn reseed_matches_fresh_runner_bitwise() {
        let mut used = MeasurementRunner::new(Watts(90.0), 2);
        used.measure(Seconds(15.0), Watts(130.0), Watts::ZERO, Seconds::ZERO);
        used.reseed(11);
        let reseeded =
            used.measure(Seconds(20.0), Watts(120.0), Watts(58.0), Seconds(1.0));
        let fresh = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        assert_eq!(reseeded, fresh);
    }

    #[test]
    fn cold_runner_reseeded_matches_eager_runner() {
        let mut cold = MeasurementRunner::cold(Watts(90.0), 999);
        assert_eq!(
            cold.try_measure(Seconds(20.0), Watts(120.0), Watts::ZERO, Seconds::ZERO),
            Err(MeasureError::BaselineNotCaptured)
        );
        cold.reseed(11);
        let a = cold.measure(Seconds(20.0), Watts(120.0), Watts(58.0), Seconds(1.0));
        let mut eager = MeasurementRunner::new(Watts(90.0), 11);
        let b = eager.measure(Seconds(20.0), Watts(120.0), Watts(58.0), Seconds(1.0));
        assert_eq!(a, b);
    }

    #[test]
    fn faulty_runner_with_empty_plan_matches_plain_runner() {
        let mut faulty = MeasurementRunner::faulty(Watts(90.0), FaultPlan::none(), 0);
        faulty.try_reseed(11).unwrap();
        let a = faulty
            .try_measure(Seconds(20.0), Watts(120.0), Watts(58.0), Seconds(1.0))
            .unwrap();
        let b = MeasurementRunner::new(Watts(90.0), 11).measure(
            Seconds(20.0),
            Watts(120.0),
            Watts(58.0),
            Seconds(1.0),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn transient_faults_surface_as_errors_not_panics() {
        let mut r = MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(1.0), 0);
        // Even the baseline capture fails under a certain-failure plan.
        assert_eq!(r.try_reseed(5), Err(MeasureError::TransientReadFailure));
        assert_eq!(
            r.try_measure(Seconds(20.0), Watts(120.0), Watts::ZERO, Seconds::ZERO),
            Err(MeasureError::BaselineNotCaptured)
        );
    }

    #[test]
    fn faulty_measurements_are_deterministic_per_seed() {
        let plan = FaultPlan::transient(0.3);
        let run = |seed: u64| {
            let mut r = MeasurementRunner::faulty(Watts(90.0), plan, 0);
            let reseed = r.try_reseed(seed);
            reseed.and_then(|()| {
                r.try_measure(Seconds(20.0), Watts(120.0), Watts::ZERO, Seconds::ZERO)
            })
        };
        // Whatever happens under a seed — success or a specific failure —
        // it happens identically on every run.
        for seed in 0..16 {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
        // And the plan actually bites for some seed in the range.
        assert!((0..16).any(|s| run(s).is_err()));
        assert!((0..16).any(|s| run(s).is_ok()));
    }

    #[test]
    #[should_panic(expected = "cannot outlive")]
    fn warmup_longer_than_kernel_rejected() {
        MeasurementRunner::new(Watts(90.0), 1).measure(
            Seconds(1.0),
            Watts(100.0),
            Watts(58.0),
            Seconds(2.0),
        );
    }
}
