//! The dynamic checkers: shadow memory behind an [`AccessSink`].
//!
//! A [`LaunchMonitor`] owns all shadow state for one kernel launch and
//! hands out [`MonitorSink`] handles (cheap `Rc` clones) to the monitored
//! interpreter, one per block. Blocks run serially under
//! `run_grid_monitored`, so a single shared state cell suffices and every
//! diagnostic comes out in deterministic order.
//!
//! # What the shadows encode
//!
//! The barrier-phase structure is the happens-before relation: within a
//! block, two accesses to the same cell are ordered iff a `__syncthreads`
//! separates them, i.e. they happen in *different phases*. So racecheck
//! keeps, per cell and per phase, the first writer and first reader; a
//! same-phase access by a different thread that conflicts (at least one
//! write) is a hazard. Between blocks there is no synchronization at all,
//! so any two blocks touching the same global cell with at least one
//! write is a hazard regardless of phase.
//!
//! Uninitialized-read detection is deferred: a read of a never-written
//! shared cell only becomes a finding if the cell is *still* unwritten
//! when the block retires. A read that races with a later same-phase
//! write is racecheck's finding, not memcheck's — the deferral is what
//! keeps each seeded fixture attributable to exactly one checker.

use crate::report::{AccessKind, Finding, MemSpace};
use enprop_gpusim::emulator::{
    AccessPoint, AccessSink, BlockExit, BufId, GlobalBatch, SharedBatch,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Maps raw [`BufId`]s (allocation addresses, nondeterministic across
/// runs) to stable registered names and ordinals, so diagnostics and
/// reports never leak an address.
#[derive(Debug, Default)]
pub struct BufferTable {
    entries: Vec<Entry>,
}

#[derive(Debug)]
struct Entry {
    id: BufId,
    name: String,
    len: usize,
}

impl BufferTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation under a stable name. Panics if the same
    /// allocation is registered twice.
    pub fn register(&mut self, id: BufId, name: impl Into<String>, len: usize) {
        assert!(self.entries.iter().all(|e| e.id != id), "buffer registered twice");
        self.entries.push(Entry { id, name: name.into(), len });
    }

    fn ordinal(&self, id: BufId) -> Option<usize> {
        self.entries.iter().position(|e| e.id == id)
    }

    fn name(&self, ordinal: usize) -> &str {
        &self.entries[ordinal].name
    }
}

/// Per-cell, per-phase access summary: the first writer and first reader
/// thread, plus a once-per-phase flag so a hazardous cell reports once.
#[derive(Debug, Clone, Copy)]
struct CellShadow {
    phase: usize,
    writer: Option<(usize, usize)>,
    reader: Option<(usize, usize)>,
    flagged: bool,
}

impl CellShadow {
    const FRESH: CellShadow =
        CellShadow { phase: usize::MAX, writer: None, reader: None, flagged: false };
}

impl Default for CellShadow {
    fn default() -> Self {
        Self::FRESH
    }
}

/// The earlier access an intra-block race conflicts with.
struct RaceHit {
    thread: (usize, usize),
    kind: AccessKind,
}

/// Advances a cell's shadow by one access, reporting a hazard if this
/// access conflicts with a different thread's same-phase access. The
/// shadow resets itself when the phase changes — the barrier boundary is
/// the happens-before edge.
fn race_step(sh: &mut CellShadow, at: AccessPoint, kind: AccessKind) -> Option<RaceHit> {
    if sh.phase != at.phase {
        *sh = CellShadow::FRESH;
        sh.phase = at.phase;
    }
    let me = at.thread();
    let write = kind == AccessKind::Write;
    let hit = if sh.flagged {
        None
    } else if write {
        match (sh.writer, sh.reader) {
            (Some(w), _) if w != me => Some(RaceHit { thread: w, kind: AccessKind::Write }),
            (_, Some(r)) if r != me => Some(RaceHit { thread: r, kind: AccessKind::Read }),
            _ => None,
        }
    } else {
        match sh.writer {
            Some(w) if w != me => Some(RaceHit { thread: w, kind: AccessKind::Write }),
            _ => None,
        }
    };
    if write {
        if sh.writer.is_none() {
            sh.writer = Some(me);
        }
    } else if sh.reader.is_none() {
        sh.reader = Some(me);
    }
    if hit.is_some() {
        sh.flagged = true;
    }
    hit
}

/// Encodes a block coordinate as a nonzero token (`0` = "no block yet").
fn enc(bx: usize, by: usize) -> u64 {
    (((by as u64) << 32) | bx as u64) + 1
}

/// Inverse of [`enc`].
fn dec(token: u64) -> (usize, usize) {
    let e = token - 1;
    ((e & 0xFFFF_FFFF) as usize, (e >> 32) as usize)
}

/// Shadow of one global cell: an intra-block [`CellShadow`] scoped to the
/// block currently touching it, plus launch-wide inter-block history (the
/// first writing block and up to two distinct reading blocks — enough to
/// witness any block-vs-block conflict).
#[derive(Debug, Clone, Copy, Default)]
struct GCell {
    block: u64,
    intra: CellShadow,
    wrote: u64,
    read1: u64,
    read2: u64,
    inter_flagged: bool,
}

/// All shadow state for one launch.
struct MonitorState {
    table: BufferTable,
    shared: Vec<CellShadow>,
    shared_written: Vec<bool>,
    uninit_seen: Vec<bool>,
    uninit: Vec<(usize, AccessPoint)>,
    global: Vec<Vec<GCell>>,
    findings: Vec<Finding>,
    suppressed: usize,
    cap: usize,
}

impl MonitorState {
    fn push(&mut self, finding: Finding) {
        if self.findings.len() < self.cap {
            self.findings.push(finding);
        } else {
            self.suppressed += 1;
        }
    }

    fn global_access(&mut self, ordinal: usize, idx: usize, at: AccessPoint, kind: AccessKind) {
        let token = enc(at.bx, at.by);
        let write = kind == AccessKind::Write;
        let cell = &mut self.global[ordinal][idx];
        if cell.block != token {
            cell.block = token;
            cell.intra = CellShadow::FRESH;
        }
        let intra = race_step(&mut cell.intra, at, kind);
        let mut inter = None;
        if !cell.inter_flagged {
            let conflict = if write {
                if cell.wrote != 0 && cell.wrote != token {
                    Some((dec(cell.wrote), AccessKind::Write))
                } else if cell.read1 != 0 && cell.read1 != token {
                    Some((dec(cell.read1), AccessKind::Read))
                } else if cell.read2 != 0 && cell.read2 != token {
                    Some((dec(cell.read2), AccessKind::Read))
                } else {
                    None
                }
            } else if cell.wrote != 0 && cell.wrote != token {
                Some((dec(cell.wrote), AccessKind::Write))
            } else {
                None
            };
            if conflict.is_some() {
                cell.inter_flagged = true;
                inter = conflict;
            }
        }
        if write {
            if cell.wrote == 0 {
                cell.wrote = token;
            }
        } else if cell.read1 == 0 {
            cell.read1 = token;
        } else if cell.read1 != token && cell.read2 == 0 {
            cell.read2 = token;
        }

        if intra.is_none() && inter.is_none() {
            return;
        }
        // Only a reporting access pays for the owned buffer name — the
        // clean-access fast path stays allocation-free.
        let name = self.table.name(ordinal).to_owned();
        if let Some(hit) = intra {
            self.push(Finding::race(
                MemSpace::Global,
                Some(&name),
                idx,
                at,
                kind,
                hit.thread,
                hit.kind,
            ));
        }
        if let Some((first_block, first_kind)) = inter {
            self.push(Finding::inter_block_race(
                Some(&name),
                idx,
                at.block(),
                kind,
                first_block,
                first_kind,
            ));
        }
    }
}

/// Outcome of a monitored launch: every finding, in deterministic order,
/// plus the count of findings dropped past the per-launch cap.
#[derive(Debug)]
pub struct MonitorOutcome {
    /// The findings, in the order they were discovered.
    pub findings: Vec<Finding>,
    /// Findings dropped because the launch hit its reporting cap.
    pub suppressed: usize,
}

/// Owns the shadow state for one kernel launch and dispenses per-block
/// [`MonitorSink`]s to `run_grid_monitored`.
pub struct LaunchMonitor {
    state: Rc<RefCell<MonitorState>>,
}

/// Findings reported per launch before further ones are counted as
/// suppressed — keeps a pathological kernel from flooding the report.
pub const DEFAULT_FINDING_CAP: usize = 64;

impl LaunchMonitor {
    /// A monitor for a launch with `shared_len` doubles of shared memory
    /// per block, tracking the buffers registered in `table`.
    pub fn new(table: BufferTable, shared_len: usize) -> Self {
        Self::with_cap(table, shared_len, DEFAULT_FINDING_CAP)
    }

    /// [`LaunchMonitor::new`] with an explicit reporting cap.
    pub fn with_cap(table: BufferTable, shared_len: usize, cap: usize) -> Self {
        let global = table.entries.iter().map(|e| vec![GCell::default(); e.len]).collect();
        LaunchMonitor {
            state: Rc::new(RefCell::new(MonitorState {
                table,
                shared: vec![CellShadow::FRESH; shared_len],
                shared_written: vec![false; shared_len],
                uninit_seen: vec![false; shared_len],
                uninit: Vec::new(),
                global,
                findings: Vec::new(),
                suppressed: 0,
                cap,
            })),
        }
    }

    /// A sink handle for the next block (call [`begin_block`](Self::begin_block) first).
    pub fn sink(&self) -> MonitorSink {
        MonitorSink { state: Rc::clone(&self.state) }
    }

    /// Resets the per-block shadows (shared memory, written bits,
    /// uninitialized-read candidates). Global shadows persist — they are
    /// launch-wide by design.
    pub fn begin_block(&self) {
        let mut st = self.state.borrow_mut();
        st.shared.fill(CellShadow::FRESH);
        st.shared_written.fill(false);
        st.uninit_seen.fill(false);
        st.uninit.clear();
    }

    /// Finalizes a block: uninitialized-read candidates whose cell was
    /// never written become memcheck findings, and a structured
    /// divergence becomes a synccheck finding.
    pub fn end_block(&self, bx: usize, by: usize, exit: &BlockExit) {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        let candidates = std::mem::take(&mut st.uninit);
        for (cell, at) in candidates {
            if !st.shared_written[cell] {
                st.push(Finding::uninit_read(cell, at));
            }
        }
        if let BlockExit::Diverged { phase, synced, returned } = exit {
            st.push(Finding::divergence(bx, by, *phase, synced, returned));
        }
    }

    /// Consumes the monitor and returns everything it saw. Panics if a
    /// sink handle is still alive (they are dropped by `collect`).
    pub fn finish(self) -> MonitorOutcome {
        let state = Rc::try_unwrap(self.state)
            .unwrap_or_else(|_| panic!("a MonitorSink outlived the launch"))
            .into_inner();
        MonitorOutcome { findings: state.findings, suppressed: state.suppressed }
    }
}

/// The per-block [`AccessSink`] handle: a shared reference to the
/// launch's shadow state. Never suppresses an in-bounds access (so a
/// clean monitored run is observationally identical to an uninstrumented
/// one); out-of-bounds accesses are reported and vetoed, letting the run
/// continue where the uninstrumented interpreter would panic.
pub struct MonitorSink {
    state: Rc<RefCell<MonitorState>>,
}

impl AccessSink for MonitorSink {
    /// The monitor consumes per-phase bulk records, so kernels with
    /// batched phase bodies run monitored on the batched interpreter —
    /// one `RefCell` borrow per phase instead of one per access.
    const BULK: bool = true;

    fn shared_load(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        if idx >= len {
            st.push(Finding::oob(MemSpace::Shared, None, at, AccessKind::Read, idx, len));
            return false;
        }
        if !st.shared_written[idx] && !st.uninit_seen[idx] {
            st.uninit_seen[idx] = true;
            st.uninit.push((idx, at));
        }
        if let Some(hit) = race_step(&mut st.shared[idx], at, AccessKind::Read) {
            st.push(Finding::race(
                MemSpace::Shared,
                None,
                idx,
                at,
                AccessKind::Read,
                hit.thread,
                hit.kind,
            ));
        }
        true
    }

    fn shared_store(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        if idx >= len {
            st.push(Finding::oob(MemSpace::Shared, None, at, AccessKind::Write, idx, len));
            return false;
        }
        st.shared_written[idx] = true;
        if let Some(hit) = race_step(&mut st.shared[idx], at, AccessKind::Write) {
            st.push(Finding::race(
                MemSpace::Shared,
                None,
                idx,
                at,
                AccessKind::Write,
                hit.thread,
                hit.kind,
            ));
        }
        true
    }

    fn global_load(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        let ordinal = st.table.ordinal(buf);
        if idx >= len {
            let name = ordinal.map(|o| st.table.name(o).to_owned());
            st.push(Finding::oob(
                MemSpace::Global,
                name.as_deref(),
                at,
                AccessKind::Read,
                idx,
                len,
            ));
            return false;
        }
        if let Some(o) = ordinal {
            st.global_access(o, idx, at, AccessKind::Read);
        }
        true
    }

    fn global_store(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        let ordinal = st.table.ordinal(buf);
        if idx >= len {
            let name = ordinal.map(|o| st.table.name(o).to_owned());
            st.push(Finding::oob(
                MemSpace::Global,
                name.as_deref(),
                at,
                AccessKind::Write,
                idx,
                len,
            ));
            return false;
        }
        if let Some(o) = ordinal {
            st.global_access(o, idx, at, AccessKind::Write);
        }
        true
    }

    /// The batched counterpart of [`shared_load`](Self::shared_load) /
    /// [`shared_store`](Self::shared_store): the same checks in the same
    /// per-record order, under a single `RefCell` borrow for the whole
    /// phase. Bulk sinks cannot veto, so an out-of-bounds record is
    /// reported without suppression — batched bodies bounds-check their
    /// own accesses, making a veto unreachable here anyway.
    fn observe_shared_batch(
        &mut self,
        bx: usize,
        by: usize,
        phase: usize,
        len: usize,
        batch: &SharedBatch,
    ) {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        for a in batch.iter() {
            let at = AccessPoint { bx, by, tx: a.tx, ty: a.ty, phase };
            if a.idx >= len {
                let kind = if a.store { AccessKind::Write } else { AccessKind::Read };
                st.push(Finding::oob(MemSpace::Shared, None, at, kind, a.idx, len));
                continue;
            }
            if a.store {
                st.shared_written[a.idx] = true;
                if let Some(hit) = race_step(&mut st.shared[a.idx], at, AccessKind::Write) {
                    st.push(Finding::race(
                        MemSpace::Shared,
                        None,
                        a.idx,
                        at,
                        AccessKind::Write,
                        hit.thread,
                        hit.kind,
                    ));
                }
            } else {
                if !st.shared_written[a.idx] && !st.uninit_seen[a.idx] {
                    st.uninit_seen[a.idx] = true;
                    st.uninit.push((a.idx, at));
                }
                if let Some(hit) = race_step(&mut st.shared[a.idx], at, AccessKind::Read) {
                    st.push(Finding::race(
                        MemSpace::Shared,
                        None,
                        a.idx,
                        at,
                        AccessKind::Read,
                        hit.thread,
                        hit.kind,
                    ));
                }
            }
        }
    }

    /// The batched counterpart of [`global_load`](Self::global_load) /
    /// [`global_store`](Self::global_store). The buffer table is
    /// consulted once per run instead of once per access.
    fn observe_global_batch(&mut self, bx: usize, by: usize, phase: usize, batch: &GlobalBatch) {
        let mut guard = self.state.borrow_mut();
        let st = &mut *guard;
        for run in batch.runs() {
            let ordinal = st.table.ordinal(run.buf);
            for a in run.accesses() {
                let at = AccessPoint { bx, by, tx: a.tx, ty: a.ty, phase };
                let kind = if a.store { AccessKind::Write } else { AccessKind::Read };
                if a.idx >= run.len {
                    let name = ordinal.map(|o| st.table.name(o).to_owned());
                    st.push(Finding::oob(
                        MemSpace::Global,
                        name.as_deref(),
                        at,
                        kind,
                        a.idx,
                        run.len,
                    ));
                    continue;
                }
                if let Some(o) = ordinal {
                    st.global_access(o, a.idx, at, kind);
                }
            }
        }
    }
}
