//! Bench + regeneration of Fig. 8 (P100 global Pareto fronts at N = 10240
//! and N = 14336).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::fig8;

fn bench(c: &mut Criterion) {
    println!("{}", fig8::render());
    c.bench_function("fig8/generate", |b| b.iter(fig8::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
