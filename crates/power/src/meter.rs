//! The fallible meter abstraction.
//!
//! [`EnergySession`](crate::session::EnergySession) originally held a
//! [`SimulatedWattsUp`] directly, which made every failure mode of a real
//! meter unrepresentable — the simulation never fails, so nothing
//! downstream had an error path. [`Meter`] is the seam that fixes that:
//! sessions talk to any meter through it, and the
//! [`FaultInjectingMeter`](crate::fault::FaultInjectingMeter) wrapper slots
//! in to exercise every failure branch without hardware.

use crate::error::MeasureError;
use crate::source::PowerSource;
use crate::trace::PowerTrace;
use crate::wattsup::SimulatedWattsUp;
use enprop_units::Seconds;

/// A power meter that can watch one node, fallibly.
///
/// The reseed contract mirrors [`SimulatedWattsUp::reseed`]: after
/// `reseed(s)`, the meter must behave exactly as if freshly constructed
/// with seed `s` — including any fault stream a wrapper maintains. The
/// parallel sweep engine leans on this to keep results independent of
/// worker placement.
pub trait Meter {
    /// Records the node running `app`. A `Err` means the whole reading was
    /// lost (the caller decides whether to retry).
    fn record(&mut self, app: &dyn PowerSource) -> Result<PowerTrace, MeasureError>;

    /// Records the node idling for `window` (the baseline-capture phase).
    fn record_idle(&mut self, window: Seconds) -> Result<PowerTrace, MeasureError>;

    /// Resets every stochastic stream as if freshly constructed with `seed`.
    fn reseed(&mut self, seed: u64);

    /// The meter's sampling period (used to validate baseline windows).
    fn sample_period(&self) -> Seconds;
}

impl Meter for SimulatedWattsUp {
    fn record(&mut self, app: &dyn PowerSource) -> Result<PowerTrace, MeasureError> {
        Ok(SimulatedWattsUp::record(self, app))
    }

    fn record_idle(&mut self, window: Seconds) -> Result<PowerTrace, MeasureError> {
        Ok(SimulatedWattsUp::record_idle(self, window))
    }

    fn reseed(&mut self, seed: u64) {
        SimulatedWattsUp::reseed(self, seed)
    }

    fn sample_period(&self) -> Seconds {
        Seconds(1.0 / self.spec().sample_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ConstantLoad;
    use crate::wattsup::MeterSpec;
    use enprop_units::Watts;

    #[test]
    fn simulated_meter_is_infallible_through_the_trait() {
        let mut m: Box<dyn Meter> =
            Box::new(SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1));
        assert_eq!(m.sample_period(), Seconds(1.0));
        let app = ConstantLoad::new(Watts(100.0), Seconds(5.0));
        let t = m.record(&app).unwrap();
        assert_eq!(t.len(), 6);
        assert!(m.record_idle(Seconds(3.0)).unwrap().len() >= 2);
    }

    #[test]
    fn trait_reseed_matches_inherent_reseed() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(10.0));
        let mut a = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 1);
        Meter::record(&mut a, &app).unwrap();
        Meter::reseed(&mut a, 9);
        let mut b = SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), 9);
        assert_eq!(Meter::record(&mut a, &app), Meter::record(&mut b, &app));
    }
}
