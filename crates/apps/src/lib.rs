#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! The paper's benchmark applications as configuration-sweep drivers.
//!
//! This crate glues the substrates together: an application enumerates its
//! configuration space, asks the CPU/GPU simulator for each configuration's
//! execution profile, renders that profile as a [`enprop_power::PowerSource`],
//! measures it through the simulated WattsUp meter with the paper's
//! repeat-until-confidence protocol, and emits [`DataPoint`]s ready for
//! Pareto/EP analysis.
//!
//! * [`runner`] — the measurement pipeline (meter + statistics protocol);
//! * [`parallel`] — the deterministic parallel sweep executor
//!   (seed-splitting keeps output bitwise-identical at any thread count);
//! * [`checkpoint`] — the durable journal that makes long sweeps
//!   crash-safe and resumable without breaking that bitwise contract;
//! * [`gpu_matmul`] — the Fig. 5 tiled matrix multiplication over
//!   `(BS, G, R)` (Figs. 2, 6, 7, 8);
//! * [`cpu_dgemm`] — the threadgroup DGEMM over (partitioning, p, t,
//!   flavor) (Fig. 4);
//! * [`fft2d`] — the 2-D FFT size sweep for the strong-EP study (Fig. 1);
//! * [`sizes`] — the paper's workload grids.

pub mod checkpoint;
pub mod cpu_dgemm;
pub mod energy_model;
pub mod fft2d;
pub mod gpu_matmul;
pub mod parallel;
pub mod point;
pub mod runner;
pub mod sizes;

pub use checkpoint::{
    CheckpointError, CrashPlan, JournalRecord, ReplayStats, SweepCheckpoint, SweepManifest,
};
pub use cpu_dgemm::CpuDgemmApp;
pub use energy_model::{cpu_qualitative_model, gpu_energy_model};
pub use fft2d::{Fft2dApp, FftPoint, Processor};
pub use gpu_matmul::GpuMatMulApp;
pub use parallel::{
    split_seed, ResumableSweep, RetryPolicy, RobustSweep, SweepExecutor, SweepFailure,
    SweepOutcome,
};
pub use point::DataPoint;
pub use runner::MeasurementRunner;
