//! The theory of energy predictive models: the additivity property and
//! linear dynamic-energy model construction.
//!
//! A *compound application* is the serial execution of two (or more) *base*
//! applications. If a performance event is to serve as a variable of a
//! linear energy predictive model, its count for the compound application
//! must equal the sum of its counts for the base applications — otherwise
//! the linear model cannot conserve energy across composition. The
//! additivity *error* quantifies the violation; variables are selected by
//! low additivity error plus high positive correlation with dynamic energy.

use enprop_stats::corr::pearson;
use enprop_stats::regress::{LinearFit, MultiLinearFit};
use serde::{Deserialize, Serialize};

/// Recovers a per-launch *constant energy component* from a compound-size
/// sweep — the inverse analysis behind the paper's Fig. 6 finding that
/// "the non-additivity of the dynamic energy … is due to an
/// energy-expensive component consuming constant dynamic power
/// consumption of 58 W".
///
/// Fitting `E(G) = slope·G + intercept` over group sizes `G`, the slope is
/// the true per-product energy and the intercept is the energy of
/// whatever the launch pays exactly once. Dividing the intercept by the
/// component's observed active duration (read off the power trace) yields
/// its constant power draw. Returns `(slope, intercept)`; the fit's R²
/// tells you whether a single constant component explains the data.
pub fn fixed_component_fit(group_sizes: &[f64], energies: &[f64]) -> (f64, f64, f64) {
    assert_eq!(group_sizes.len(), energies.len(), "length mismatch");
    assert!(group_sizes.len() >= 3, "need at least three group sizes");
    let fit = LinearFit::fit(group_sizes, energies);
    (fit.slope, fit.intercept, fit.r_squared)
}

/// Relative additivity error of one event: `|compound − Σ bases| / Σ bases`.
pub fn additivity_error(base_counts: &[f64], compound_count: f64) -> f64 {
    assert!(!base_counts.is_empty(), "need at least one base application");
    let sum: f64 = base_counts.iter().sum();
    assert!(sum > 0.0, "base counts must sum to a positive value");
    (compound_count - sum).abs() / sum
}

/// Additivity assessment of a set of candidate model variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdditivityReport {
    /// `(variable name, additivity error)` in input order.
    pub errors: Vec<(String, f64)>,
    /// The acceptance threshold used by [`AdditivityReport::additive_variables`].
    pub threshold: f64,
}

impl AdditivityReport {
    /// Assesses each named variable given its base counts and compound
    /// count.
    pub fn assess(
        variables: &[(String, Vec<f64>, f64)],
        threshold: f64,
    ) -> AdditivityReport {
        let errors = variables
            .iter()
            .map(|(name, bases, compound)| (name.clone(), additivity_error(bases, *compound)))
            .collect();
        AdditivityReport { errors, threshold }
    }

    /// Names of the variables passing the additivity threshold.
    pub fn additive_variables(&self) -> Vec<&str> {
        self.errors
            .iter()
            .filter(|(_, e)| *e <= self.threshold)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// Builds a linear dynamic-energy model over performance events, with
/// additivity- and correlation-based variable selection.
#[derive(Debug, Clone)]
pub struct EnergyModelBuilder {
    /// Maximum admissible additivity error.
    pub additivity_threshold: f64,
    /// Minimum admissible Pearson correlation with dynamic energy.
    pub correlation_threshold: f64,
}

/// A fitted linear energy predictive model.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Names of the selected variables, in coefficient order.
    pub variables: Vec<String>,
    /// The underlying least-squares fit (intercept first).
    pub fit: MultiLinearFit,
}

impl Default for EnergyModelBuilder {
    /// Defaults: ≤ 5% additivity error, ≥ 0.7 correlation.
    fn default() -> Self {
        Self { additivity_threshold: 0.05, correlation_threshold: 0.7 }
    }
}

impl EnergyModelBuilder {
    /// Fits a model of `energies` on the candidate variables.
    ///
    /// * `candidates` — per variable: name, the per-observation counts, and
    ///   the variable's additivity error (from a separate compound-run
    ///   experiment).
    /// * `energies` — dynamic energy per observation.
    ///
    /// Returns `None` when no variable survives selection or the selected
    /// design is collinear.
    pub fn build(
        &self,
        candidates: &[(String, Vec<f64>, f64)],
        energies: &[f64],
    ) -> Option<EnergyModel> {
        let selected: Vec<&(String, Vec<f64>, f64)> = candidates
            .iter()
            .filter(|(_, counts, add_err)| {
                assert_eq!(counts.len(), energies.len(), "observation count mismatch");
                *add_err <= self.additivity_threshold
                    && pearson(counts, energies) >= self.correlation_threshold
            })
            .collect();
        if selected.is_empty() {
            return None;
        }
        let rows: Vec<Vec<f64>> = (0..energies.len())
            .map(|i| selected.iter().map(|(_, counts, _)| counts[i]).collect())
            .collect();
        let fit = MultiLinearFit::fit(&rows, energies)?;
        Some(EnergyModel {
            variables: selected.iter().map(|(n, _, _)| n.clone()).collect(),
            fit,
        })
    }
}

impl EnergyModel {
    /// Predicts dynamic energy for one observation's selected-variable
    /// counts (same order as [`EnergyModel::variables`]).
    pub fn predict(&self, counts: &[f64]) -> f64 {
        self.fit.predict(counts)
    }

    /// Goodness of fit.
    pub fn r_squared(&self) -> f64 {
        self.fit.r_squared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additivity_error_basics() {
        assert_eq!(additivity_error(&[10.0, 20.0], 30.0), 0.0);
        assert!((additivity_error(&[10.0, 20.0], 33.0) - 0.1).abs() < 1e-12);
        assert!((additivity_error(&[10.0, 20.0], 27.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn report_selects_additive_variables() {
        let vars = vec![
            ("flops".to_string(), vec![100.0, 200.0], 300.0),
            ("cache_misses".to_string(), vec![50.0, 50.0], 130.0), // 30% error
        ];
        let report = AdditivityReport::assess(&vars, 0.05);
        assert_eq!(report.additive_variables(), vec!["flops"]);
        assert!(report.errors[1].1 > 0.25);
    }

    #[test]
    fn builder_fits_on_good_variable() {
        // Energy = 5 + 2·flops; flops additive and perfectly correlated.
        let flops: Vec<f64> = (1..=10).map(|i| i as f64 * 100.0).collect();
        let energies: Vec<f64> = flops.iter().map(|f| 5.0 + 2.0 * f).collect();
        let noise: Vec<f64> = (1..=10).map(|i| ((i * 7919) % 13) as f64).collect();
        let candidates = vec![
            ("flops".to_string(), flops, 0.01),
            ("nonadditive".to_string(), energies.clone(), 0.5), // correlated but non-additive
            ("noise".to_string(), noise, 0.0),                  // additive but uncorrelated
        ];
        let model = EnergyModelBuilder::default().build(&candidates, &energies).unwrap();
        assert_eq!(model.variables, vec!["flops"]);
        assert!(model.r_squared() > 0.999);
        assert!((model.predict(&[500.0]) - 1005.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_component_recovered_from_linear_sweep() {
        // E(G) = 100·G + 17.4 (a 58 W component active for 0.3 s).
        let gs = [1.0, 2.0, 3.0, 4.0];
        let es: Vec<f64> = gs.iter().map(|g| 100.0 * g + 17.4).collect();
        let (slope, intercept, r2) = fixed_component_fit(&gs, &es);
        assert!((slope - 100.0).abs() < 1e-9);
        assert!((intercept - 17.4).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
        // Implied component power at 0.3 s active time:
        assert!((intercept / 0.3 - 58.0).abs() < 1e-9);
    }

    #[test]
    fn builder_returns_none_when_nothing_survives() {
        let energies = vec![1.0, 2.0, 3.0, 4.0];
        let candidates =
            vec![("bad".to_string(), vec![4.0, 3.0, 2.0, 1.0], 0.0)]; // anti-correlated
        assert!(EnergyModelBuilder::default().build(&candidates, &energies).is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_base_counts_rejected() {
        additivity_error(&[0.0, 0.0], 1.0);
    }
}
