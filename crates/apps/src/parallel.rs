//! The parallel sweep engine.
//!
//! Every figure in the paper is produced by sweeping a configuration space
//! (all `(BS, G, R)` kernels, all DGEMM thread groups, all FFT sizes) and
//! measuring each configuration through the simulated meter. The sweeps are
//! embarrassingly parallel — *except* that the measurement pipeline is
//! stochastic, and a naive fan-out would make the noise a configuration
//! sees depend on which worker measured it and what that worker measured
//! before. Results would then change with thread count, which is poison for
//! a reproduction harness.
//!
//! [`SweepExecutor`] solves this with **deterministic seed-splitting**: a
//! sweep owns one `sweep_seed`, and configuration `i` is always measured
//! under [`split_seed`]`(sweep_seed, i)` — a SplitMix64-style finalizer over
//! the pair — regardless of the worker that picks it up. Worker-local
//! [`MeasurementRunner`]s are reseeded with that per-configuration seed
//! before each measurement, so the noise stream a configuration sees is a
//! pure function of `(sweep_seed, index)`. Results come back in enumeration
//! order. The upshot, verified by the determinism suite: a sweep run with
//! 1, 2, or 8 threads produces bitwise-identical output.
//!
//! The executor is generic over worker state, so model-only sweeps (no
//! measurement pipeline) reuse the same fan-out via [`SweepExecutor::map`].

use crate::checkpoint::{CheckpointError, JournalRecord, SweepCheckpoint};
use crate::runner::MeasurementRunner;
use enprop_power::{MeasureError, Meter};
use enprop_units::Seconds;
use serde::{Deserialize, DeserializeOwned, Serialize};
use std::cell::UnsafeCell;
use std::collections::HashSet;
use std::mem::MaybeUninit;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Write-once result slots shared by the sweep workers, one per item.
///
/// The scheduler guarantees each index is claimed by exactly one worker
/// (a `fetch_add` cursor hands out disjoint chunks), so each slot is
/// written exactly once, with no concurrent access — which makes a plain
/// `UnsafeCell<MaybeUninit<T>>` sound and replaces the previous
/// `Vec<Mutex<Option<T>>>` (a lock round-trip per result). The scope join
/// between the writes and [`into_vec`](ResultSlots::into_vec) provides the
/// happens-before edge that publishes the values. If a measurement closure
/// panics, the unwind is caught, the sweep aborts and re-panics *after* the
/// scope join with a diagnostic naming the configuration — and the slots
/// are leaked, never read: no use of uninitialized memory.
struct ResultSlots<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: sharing `&ResultSlots<T>` across workers is sound because the
// scheduler contract above guarantees no two threads ever touch the same
// slot (disjoint write-once indices), and the values themselves cross
// threads only at the scope join — hence the `T: Send` bound. No `&T` is
// ever produced while workers run, so `T: Sync` is not required.
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(len: usize) -> Self {
        Self { slots: (0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect() }
    }

    /// Writes the result for `i`.
    ///
    /// # Safety
    /// `i` must be claimed by exactly one worker, and written exactly once.
    #[inline]
    unsafe fn write(&self, i: usize, value: T) {
        // SAFETY: the caller guarantees index `i` belongs to this worker
        // alone, so no other thread holds a pointer into this slot and the
        // raw write cannot race; `slots[i]` bounds-checks the index.
        unsafe { (*self.slots[i].get()).write(value) };
    }

    /// Consumes the slots in index order.
    ///
    /// # Safety
    /// Every slot must have been written (all indices claimed and their
    /// workers joined).
    unsafe fn into_vec(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            // SAFETY: the caller guarantees every index was claimed and the
            // claiming workers have joined, so each `MaybeUninit` holds an
            // initialized `T` and the join published it to this thread.
            .map(|slot| unsafe { slot.into_inner().assume_init() })
            .collect()
    }
}

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// Sweep workers share two kinds of mutexes (the journal writer and the
/// first-error slot), and a worker that panics mid-critical-section poisons
/// them. The data they guard stays coherent — a half-appended journal
/// record is exactly what the CRC-framed journal is built to tolerate, and
/// the error slot is a monotonic `Option` — so propagating the poison would
/// only replace the *real* failure with a misleading
/// `"journal lock poisoned"` panic in every other worker. Recover the guard
/// and let the original error surface instead.
fn lock_unpoisoned<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload for sweep diagnostics (`panic!` with a
/// message produces `&str` or `String`; anything else is opaque).
fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Derives the seed for configuration `index` of a sweep seeded with
/// `sweep_seed`.
///
/// This is the SplitMix64 output function applied to
/// `sweep_seed + (index + 1) · φ64` (the golden-gamma increment). It is a
/// pure function of the pair — independent of evaluation order and thread
/// placement — and injective in `index` for a fixed seed, so distinct
/// configurations never share a noise stream. `index + 1` keeps
/// configuration 0 from degenerating to the raw sweep seed.
pub fn split_seed(sweep_seed: u64, index: usize) -> u64 {
    let gamma = 0x9E37_79B9_7F4A_7C15u64;
    let mut z = sweep_seed.wrapping_add(gamma.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic parallel sweep executor.
///
/// Holds the sweep seed and the worker count; fans work items out to
/// scoped worker threads, hands each item its [`split_seed`], and returns
/// results in enumeration order.
///
/// # Example
/// ```
/// use enprop_apps::parallel::SweepExecutor;
///
/// let exec = SweepExecutor::new(42).with_threads(4);
/// let squares = exec.map(&[1usize, 2, 3, 4], |x, _seed| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    seed: u64,
    threads: usize,
}

impl SweepExecutor {
    /// An executor over all available cores, measuring under `seed`.
    pub fn new(seed: u64) -> Self {
        let threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { seed, threads }
    }

    /// A single-threaded executor — the reference ordering every parallel
    /// run must reproduce bitwise.
    pub fn serial(seed: u64) -> Self {
        Self { seed, threads: 1 }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The sweep seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The seed configuration `index` is measured under.
    pub fn config_seed(&self, index: usize) -> u64 {
        split_seed(self.seed, index)
    }

    /// Fans `items` out to workers that each own a state built by
    /// `make_state`, calling `f(state, item, config_seed)` per item.
    /// Results are returned in the order of `items`.
    ///
    /// Work distribution is a shared atomic cursor claimed in *chunks*
    /// (dynamic scheduling with amortized cursor traffic): each worker
    /// claims a run of consecutive indices per `fetch_add`, so cursor
    /// contention and per-item scheduling overhead shrink by the chunk
    /// length, while load imbalance between configurations still cannot
    /// idle workers for long. Each worker constructs its state once, before
    /// entering the steal loop. Results land in lock-free write-once slots
    /// ([`ResultSlots`]); because `f`'s output depends only on
    /// `(item, config_seed)`, the schedule cannot leak into the results.
    pub fn map_with<S, C, T>(
        &self,
        items: &[C],
        make_state: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, &C, u64) -> T + Sync,
    ) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut state = make_state();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    catch_unwind(AssertUnwindSafe(|| f(&mut state, item, self.config_seed(i))))
                        .unwrap_or_else(|payload| {
                            panic!(
                                "sweep worker panicked on config #{i} of {}: {}",
                                items.len(),
                                panic_payload_message(payload.as_ref())
                            )
                        })
                })
                .collect();
        }

        // Chunk length: ~4 claims per worker over the sweep balances cursor
        // amortization against tail imbalance; capped so enormous sweeps
        // still rebalance.
        let chunk = items.len().div_ceil(workers * 4).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let slots = ResultSlots::new(items.len());
        // A panicking closure aborts the sweep, but with a *diagnostic*:
        // the unwind is caught in the worker, the failing configuration and
        // chunk are recorded here (first panic wins), the other workers
        // stop claiming, and the sweep re-panics after the join with the
        // config index in the message. The opaque alternative — letting the
        // unwind tear down the scope — would lose which request killed the
        // pool, which a serving layer cannot afford.
        let panic_note: Mutex<Option<String>> = Mutex::new(None);
        let abort = AtomicBool::new(false);
        let run_worker = || {
            // Worker state is built once per worker, outside the steal loop.
            let mut state = make_state();
            loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for (i, item) in (start..end).zip(&items[start..end]) {
                    match catch_unwind(AssertUnwindSafe(|| {
                        f(&mut state, item, self.config_seed(i))
                    })) {
                        // SAFETY: the `fetch_add` cursor hands out disjoint
                        // chunks, so index `i` is claimed by this worker
                        // alone and written exactly once — the contract of
                        // `write`.
                        Ok(out) => unsafe { slots.write(i, out) },
                        Err(payload) => {
                            let msg = format!(
                                "sweep worker panicked on config #{i} \
                                 (chunk {start}..{end} of {}): {}",
                                items.len(),
                                panic_payload_message(payload.as_ref())
                            );
                            lock_unpoisoned(&panic_note).get_or_insert(msg);
                            abort.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            }
        };
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| run_worker());
            }
        })
        .expect("sweep scope panicked outside the worker catch-unwind");
        if let Some(msg) = panic_note.into_inner().unwrap_or_else(PoisonError::into_inner) {
            // The slots are leaked, never read — see the `ResultSlots` doc.
            panic!("{msg}");
        }

        // SAFETY: the scope joined every worker, no worker panicked, and
        // all indices up to `items.len()` were claimed, so every slot is
        // initialized.
        unsafe { slots.into_vec() }
    }

    /// Stateless variant of [`map_with`](SweepExecutor::map_with) for
    /// model-only (noise-free) sweeps.
    pub fn map<C, T>(&self, items: &[C], f: impl Fn(&C, u64) -> T + Sync) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        self.map_with(items, || (), |_, item, seed| f(item, seed))
    }

    /// Measurement fan-out: each worker owns a [`MeasurementRunner`] built
    /// by `make_runner`, and the runner is [reseeded](MeasurementRunner::reseed)
    /// with the item's [`config_seed`](SweepExecutor::config_seed) before
    /// `f` measures it — the contract that makes sweep output a pure
    /// function of `(sweep_seed, items)`.
    ///
    /// Panics if a reseed fails (a fault-injected baseline capture); use
    /// [`run_measured_with_retry`](SweepExecutor::run_measured_with_retry)
    /// when the meter can fail.
    pub fn run_measured<M, C, T>(
        &self,
        items: &[C],
        make_runner: impl Fn() -> MeasurementRunner<M> + Sync,
        f: impl Fn(&mut MeasurementRunner<M>, &C) -> T + Sync,
    ) -> Vec<T>
    where
        M: Meter,
        C: Sync,
        T: Send,
    {
        self.map_with(items, make_runner, |runner, item, seed| {
            runner.reseed(seed);
            f(runner, item)
        })
    }

    /// Fault-tolerant measurement fan-out: like
    /// [`run_measured`](SweepExecutor::run_measured), but a failed
    /// measurement is retried per `policy` instead of panicking, and
    /// configurations that exhaust their retries are *recorded* — never
    /// silently dropped, never fatal to the sweep.
    ///
    /// ## Determinism under retry
    ///
    /// Attempt 0 of configuration `i` is measured under
    /// [`config_seed`](SweepExecutor::config_seed)`(i)` — exactly the seed
    /// the non-retrying path uses, so a sweep where no fault fires is
    /// bitwise-identical to [`run_measured`](SweepExecutor::run_measured).
    /// Attempt `k > 0` reseeds with [`split_seed`]`(config_seed(i), k)`:
    /// every attempt's noise-and-fault stream is a pure function of
    /// `(sweep_seed, index, attempt)`, so which worker retries, and how
    /// many other configurations are in flight, cannot change any outcome.
    /// The determinism suite pins this at 1/2/8 threads.
    ///
    /// Non-transient errors ([`MeasureError::is_transient`] = false) fail
    /// immediately without burning retries.
    pub fn run_measured_with_retry<M, C, T>(
        &self,
        items: &[C],
        policy: RetryPolicy,
        make_runner: impl Fn() -> MeasurementRunner<M> + Sync,
        f: impl Fn(&mut MeasurementRunner<M>, &C) -> Result<T, MeasureError> + Sync,
    ) -> RobustSweep<C, T>
    where
        M: Meter,
        C: Clone + Sync,
        T: Send,
    {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        let outcomes = self.map_with(items, make_runner, |runner, item, config_seed| {
            measure_with_retry(runner, &policy, config_seed, item, &f)
        });
        RobustSweep::collect(items, outcomes)
    }

    /// Crash-safe [`run_measured_with_retry`](SweepExecutor::run_measured_with_retry):
    /// every finished configuration (measured *or* failed) is appended to
    /// `checkpoint`'s durable journal, and configurations the journal
    /// already holds are replayed instead of re-measured.
    ///
    /// ## Resume invariant
    ///
    /// Configuration `i` is always measured under
    /// [`config_seed`](SweepExecutor::config_seed)`(i)` with attempt-`k`
    /// reseeding via [`split_seed`]`(config_seed(i), k)` — by its *sweep*
    /// index, not its position among the configurations left to run. Every
    /// outcome is therefore a pure function of `(sweep_seed, index,
    /// attempt)`, so a sweep killed at any point and resumed — even across
    /// a different thread count — returns output bitwise-identical to an
    /// uninterrupted run. The crash-injection suite pins this at 1/2/8
    /// threads, including torn mid-record kills.
    ///
    /// The checkpoint is consumed: its journal is finished (tail sealed) on
    /// return, and one checkpoint can never journal two sweeps. Journal
    /// append order is worker completion order — nondeterministic — which
    /// is why replay is index-keyed and order-independent.
    ///
    /// Returns [`CheckpointError`] only for journal I/O failures; the
    /// checkpoint must have been opened for this executor's seed, `items`'
    /// length, and `policy`'s attempt budget (else
    /// [`CheckpointError::ManifestMismatch`]).
    pub fn run_measured_with_retry_resumable<M, C, T>(
        &self,
        items: &[C],
        policy: RetryPolicy,
        mut checkpoint: SweepCheckpoint<T>,
        make_runner: impl Fn() -> MeasurementRunner<M> + Sync,
        f: impl Fn(&mut MeasurementRunner<M>, &C) -> Result<T, MeasureError> + Sync,
    ) -> Result<ResumableSweep<C, T>, CheckpointError>
    where
        M: Meter,
        C: Clone + Sync,
        T: Send + Clone + Serialize + DeserializeOwned,
    {
        assert!(policy.max_attempts >= 1, "need at least one attempt");
        let manifest = checkpoint.manifest();
        for (field, expected, found) in [
            ("sweep_seed", self.seed.to_string(), manifest.sweep_seed.to_string()),
            ("total_configs", items.len().to_string(), manifest.total_configs.to_string()),
            ("max_attempts", policy.max_attempts.to_string(), manifest.max_attempts.to_string()),
        ] {
            if expected != found {
                return Err(CheckpointError::ManifestMismatch { field, expected, found });
            }
        }

        let stats = checkpoint.stats();
        let replayed = std::mem::take(&mut checkpoint.replayed);
        let done: HashSet<usize> = replayed.iter().map(|(i, _)| *i).collect();
        let pending: Vec<usize> = (0..items.len()).filter(|i| !done.contains(i)).collect();

        // Workers finish in nondeterministic order, so the journal is an
        // unordered log behind one mutex; contention is negligible next to
        // a measurement. The first append error is kept and surfaced after
        // the join — the sweep itself still completes. Both locks are taken
        // through [`lock_unpoisoned`]: a worker that panics while holding
        // one must not convert every other worker's append into a
        // misleading "journal lock poisoned" panic that masks the original
        // failure.
        let writer = Mutex::new(&mut checkpoint.writer);
        let append_error: Mutex<Option<CheckpointError>> = Mutex::new(None);
        let executed: Vec<(usize, SweepOutcome<T>)> =
            self.map_with(&pending, make_runner, |runner, &index, _| {
                // The positional seed handed out by `map_with` indexes into
                // `pending`; reseed by the configuration's *sweep* index so
                // resumed and uninterrupted runs draw identical streams.
                let outcome = measure_with_retry(
                    runner,
                    &policy,
                    self.config_seed(index),
                    &items[index],
                    &f,
                );
                let record = JournalRecord { index, outcome: outcome.clone() };
                if let Err(e) = lock_unpoisoned(&writer).append(&record) {
                    lock_unpoisoned(&append_error).get_or_insert(e);
                }
                (index, outcome)
            });
        if let Some(e) = append_error.into_inner().unwrap_or_else(PoisonError::into_inner) {
            return Err(e);
        }
        checkpoint.writer.finish()?;

        let mut slots: Vec<Option<SweepOutcome<T>>> =
            (0..items.len()).map(|_| None).collect();
        for (index, outcome) in replayed {
            slots[index] = Some(outcome);
        }
        let executed_count = executed.len();
        for (index, outcome) in executed {
            slots[index] = Some(outcome);
        }
        let outcomes: Vec<SweepOutcome<T>> = slots
            .into_iter()
            .map(|s| s.expect("every index is either replayed or executed"))
            .collect();
        Ok(ResumableSweep {
            sweep: RobustSweep::collect(items, outcomes),
            replayed: stats.records,
            executed: executed_count,
            torn_tail_bytes: stats.torn_tail_bytes,
            crashed: checkpoint.writer.crashed(),
        })
    }
}

/// One configuration's bounded retry loop, shared by the plain and
/// resumable fault-tolerant sweeps.
///
/// Attempt 0 reseeds with `config_seed` itself (bitwise identity with the
/// non-retrying path); attempt `k > 0` with [`split_seed`]`(config_seed, k)`.
/// When the policy carries an [`attempt_deadline`](RetryPolicy::attempt_deadline),
/// an attempt whose wall-clock time overruns the budget is converted to
/// [`MeasureError::DeadlineExceeded`] — *even if it returned a point*: an
/// overlong measurement on real hardware is suspect (thermal throttling, a
/// wedged counter), and charging it to the retry budget is what keeps one
/// pathological configuration from stalling a campaign. The watchdog is
/// cooperative — it cannot preempt a closure that never returns; it bounds
/// how much over-budget work is *accepted*, not how long the closure runs.
fn measure_with_retry<M, C, T>(
    runner: &mut MeasurementRunner<M>,
    policy: &RetryPolicy,
    config_seed: u64,
    item: &C,
    f: &(impl Fn(&mut MeasurementRunner<M>, &C) -> Result<T, MeasureError> + Sync),
) -> SweepOutcome<T>
where
    M: Meter,
{
    let mut attempts = 0;
    loop {
        attempts += 1;
        let attempt_seed =
            if attempts == 1 { config_seed } else { split_seed(config_seed, attempts - 1) };
        let started = policy.attempt_deadline.map(|_| Instant::now());
        let mut result = runner.try_reseed(attempt_seed).and_then(|()| f(runner, item));
        if let (Some(budget), Some(started)) = (policy.attempt_deadline, started) {
            let elapsed = started.elapsed();
            if elapsed > budget {
                result = Err(MeasureError::DeadlineExceeded {
                    budget: Seconds(budget.as_secs_f64()),
                    elapsed: Seconds(elapsed.as_secs_f64()),
                });
            }
        }
        match result {
            Ok(point) => return SweepOutcome::Ok { point, attempts },
            Err(error) => {
                if attempts >= policy.max_attempts || !error.is_transient() {
                    return SweepOutcome::Failed { attempts, error };
                }
                let delay = policy.backoff_delay(attempts);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
        }
    }
}

/// Bounded retry-with-exponential-backoff for failed measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per configuration, including the first (≥ 1).
    pub max_attempts: usize,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base_delay: Duration,
    /// Cap on the backoff delay.
    pub max_delay: Duration,
    /// Per-attempt wall-clock watchdog: an attempt that takes longer is
    /// charged as [`MeasureError::DeadlineExceeded`] and retried (or
    /// recorded) like any other transient failure. `None` — the default —
    /// disables the watchdog; sweep output then depends only on seeds,
    /// never on host timing, which is what the bitwise thread-count
    /// invariance tests require.
    pub attempt_deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    /// Three attempts, no delay, no deadline: in the simulated rig a
    /// transient fault clears by re-drawing the stream, so sleeping buys
    /// nothing. Against real hardware, set `base_delay`/`max_delay` to
    /// ride out the condition (a wedged serial port, an EAGAIN-ing counter
    /// file) and [`attempt_deadline`](RetryPolicy::attempt_deadline) to
    /// bound how long one configuration may hold a worker.
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            attempt_deadline: None,
        }
    }
}

impl RetryPolicy {
    /// Fail on the first error — the policy that makes
    /// [`run_measured_with_retry`](SweepExecutor::run_measured_with_retry)
    /// degrade to a recorded-failure version of
    /// [`run_measured`](SweepExecutor::run_measured).
    #[must_use]
    pub fn no_retry() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// A policy with `max_attempts` attempts and no delay.
    #[must_use]
    pub fn attempts(max_attempts: usize) -> Self {
        Self { max_attempts, ..Self::default() }
    }

    /// Sets the per-attempt watchdog deadline (see
    /// [`attempt_deadline`](RetryPolicy::attempt_deadline)).
    #[must_use]
    pub fn with_attempt_deadline(mut self, deadline: Duration) -> Self {
        self.attempt_deadline = Some(deadline);
        self
    }

    /// The delay before the retry that follows failed attempt `attempt`
    /// (1-based): `base_delay × 2^(attempt−1)`, capped at `max_delay`.
    #[must_use]
    pub fn backoff_delay(&self, attempt: usize) -> Duration {
        let doublings = u32::try_from(attempt.saturating_sub(1)).unwrap_or(u32::MAX);
        let delay = self
            .base_delay
            .checked_mul(2u32.checked_pow(doublings).unwrap_or(u32::MAX))
            .unwrap_or(Duration::MAX);
        delay.min(self.max_delay)
    }
}

/// What happened to one configuration of a fault-tolerant sweep.
///
/// Serializable so the checkpoint journal can persist finished
/// configurations — failures included: a configuration that exhausted its
/// retries is finished and must not be re-measured on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepOutcome<T> {
    /// Measured successfully (possibly after retries).
    Ok {
        /// The measured point.
        point: T,
        /// Attempts spent, including the successful one.
        attempts: usize,
    },
    /// Every attempt failed; `error` is the *last* failure.
    Failed {
        /// Attempts spent.
        attempts: usize,
        /// The final error.
        error: MeasureError,
    },
}

/// One configuration that exhausted its retries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepFailure<C> {
    /// The configuration that could not be measured.
    pub config: C,
    /// Its index in the sweep's enumeration order.
    pub index: usize,
    /// Attempts spent on it.
    pub attempts: usize,
    /// The last error observed.
    pub error: MeasureError,
}

impl<C: std::fmt::Display> std::fmt::Display for SweepFailure<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "config #{} ({}) failed after {} attempt(s): {}",
            self.index, self.config, self.attempts, self.error
        )
    }
}

/// The result of a fault-tolerant sweep: the measured points plus an exact
/// account of what could not be measured.
#[must_use = "a RobustSweep carries failure records that must be checked or reported"]
#[derive(Debug, Clone, PartialEq)]
pub struct RobustSweep<C, T> {
    /// Successfully measured points, in enumeration order.
    pub points: Vec<T>,
    /// Configurations that exhausted their retries, in enumeration order.
    pub failures: Vec<SweepFailure<C>>,
    /// Configurations that needed more than one attempt (whether they
    /// eventually succeeded or not).
    pub retried: usize,
    /// Total configurations swept (`points.len() + failures.len()`).
    pub total: usize,
}

impl<C: Clone, T> RobustSweep<C, T> {
    fn collect(items: &[C], outcomes: Vec<SweepOutcome<T>>) -> Self {
        let total = outcomes.len();
        let mut points = Vec::with_capacity(total);
        let mut failures = Vec::new();
        let mut retried = 0;
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                SweepOutcome::Ok { point, attempts } => {
                    if attempts > 1 {
                        retried += 1;
                    }
                    points.push(point);
                }
                SweepOutcome::Failed { attempts, error } => {
                    if attempts > 1 {
                        retried += 1;
                    }
                    failures.push(SweepFailure {
                        config: items[index].clone(),
                        index,
                        attempts,
                        error,
                    });
                }
            }
        }
        Self { points, failures, retried, total }
    }
}

impl<C, T> RobustSweep<C, T> {
    /// True when every configuration was measured.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Number of configurations that exhausted their retries.
    #[must_use]
    pub fn failed_configs(&self) -> usize {
        self.failures.len()
    }
}

/// The result of a crash-safe sweep: the [`RobustSweep`] plus an account of
/// how much of it came from the journal versus fresh measurement.
#[must_use = "a ResumableSweep carries failure records and resume accounting that must be checked"]
#[derive(Debug, Clone, PartialEq)]
pub struct ResumableSweep<C, T> {
    /// The sweep itself — bitwise-identical to what an uninterrupted
    /// [`run_measured_with_retry`](SweepExecutor::run_measured_with_retry)
    /// would have returned.
    pub sweep: RobustSweep<C, T>,
    /// Configurations replayed from the journal.
    pub replayed: usize,
    /// Configurations measured (and journaled) by this run.
    pub executed: usize,
    /// Bytes of a torn trailing record dropped when the journal was opened
    /// (0 unless the previous run died mid-append).
    pub torn_tail_bytes: u64,
    /// True if an injected [`CrashPlan`](crate::checkpoint::CrashPlan)
    /// fired during this run (test/bench harnesses only).
    pub crashed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use enprop_power::FaultPlan;
    use enprop_units::{Seconds, Watts};

    #[test]
    fn map_preserves_enumeration_order() {
        let items: Vec<usize> = (0..100).collect();
        let exec = SweepExecutor::new(1).with_threads(8);
        let out = exec.map(&items, |x, _| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_thread_local_state_counts_all_items() {
        // Worker-local counters must jointly cover every item exactly once.
        let items: Vec<usize> = (0..57).collect();
        let exec = SweepExecutor::new(9).with_threads(4);
        let out = exec.map_with(
            &items,
            || 0usize,
            |count, item, _| {
                *count += 1;
                *item
            },
        );
        assert_eq!(out, items);
    }

    #[test]
    fn config_seeds_are_distinct_and_order_independent() {
        let exec = SweepExecutor::new(1234);
        let forward: Vec<u64> = (0..64).map(|i| exec.config_seed(i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| exec.config_seed(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        let mut sorted = forward.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), forward.len(), "seed collision");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let exec = SweepExecutor::new(7).with_threads(8);
        let out: Vec<u64> = exec.map(&[] as &[u32], |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn run_measured_is_thread_count_invariant() {
        // The tentpole contract at the executor level: identical measured
        // output for 1, 2, and 8 workers.
        let items: Vec<f64> = (1..=12).map(|i| 10.0 * i as f64).collect();
        let measure = |threads: usize| {
            SweepExecutor::new(77).with_threads(threads).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = measure(1);
        assert_eq!(serial, measure(2));
        assert_eq!(serial, measure(8));
    }

    #[test]
    fn chunked_claiming_covers_every_length() {
        // Exercise chunk-boundary arithmetic: lengths around multiples of
        // the chunk size, odd worker counts, workers > items.
        for len in [1usize, 2, 3, 7, 16, 63, 64, 65, 129] {
            for threads in [2usize, 3, 8, 200] {
                let items: Vec<usize> = (0..len).collect();
                let exec = SweepExecutor::new(5).with_threads(threads);
                let out = exec.map(&items, |x, _| x + 1);
                let expect: Vec<usize> = (1..=len).collect();
                assert_eq!(out, expect, "len {len} threads {threads}");
            }
        }
    }

    #[test]
    fn results_are_bitwise_identical_across_chunking_schedules() {
        // The determinism contract must be independent of the chunk size
        // implied by the worker count.
        let items: Vec<f64> = (1..=40).map(|i| 5.0 * i as f64).collect();
        let measure = |threads: usize| {
            SweepExecutor::new(4242).with_threads(threads).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = measure(1);
        for threads in [3usize, 5, 16] {
            assert_eq!(serial, measure(threads), "threads {threads}");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            attempt_deadline: None,
        };
        assert_eq!(p.backoff_delay(1), Duration::from_millis(10));
        assert_eq!(p.backoff_delay(2), Duration::from_millis(20));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(35)); // capped
        assert_eq!(p.backoff_delay(60), Duration::from_millis(35)); // no overflow
        assert_eq!(RetryPolicy::default().backoff_delay(1), Duration::ZERO);
    }

    #[test]
    fn faultless_retry_sweep_matches_plain_sweep_bitwise() {
        let items: Vec<f64> = (1..=12).map(|i| 10.0 * i as f64).collect();
        let exec = SweepExecutor::new(77).with_threads(4);
        let plain = exec.run_measured(
            &items,
            || MeasurementRunner::new(Watts(90.0), 0),
            |runner, &steady| {
                runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        let robust = exec.run_measured_with_retry(
            &items,
            RetryPolicy::default(),
            || MeasurementRunner::faulty(Watts(90.0), FaultPlan::none(), 0),
            |runner, &steady| {
                runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        assert!(robust.is_complete());
        assert_eq!(robust.retried, 0);
        assert_eq!(robust.points, plain);
    }

    #[test]
    fn retry_sweep_is_thread_count_invariant_under_faults() {
        let items: Vec<f64> = (1..=24).map(|i| 10.0 * i as f64).collect();
        let sweep = |threads: usize| {
            SweepExecutor::new(77).with_threads(threads).run_measured_with_retry(
                &items,
                RetryPolicy::attempts(2),
                || MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(0.25), 0),
                |runner, &steady| {
                    runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = sweep(1);
        // With a 25% per-read failure rate and only 2 attempts, some
        // configurations retry and some fail — both paths must still be
        // schedule-independent.
        assert!(serial.retried > 0, "fault plan never fired");
        assert_eq!(serial, sweep(2));
        assert_eq!(serial, sweep(8));
    }

    #[test]
    fn exhausted_retries_are_recorded_not_dropped() {
        let items: Vec<f64> = (1..=8).map(|i| 10.0 * i as f64).collect();
        let exec = SweepExecutor::serial(3);
        let robust = exec.run_measured_with_retry(
            &items,
            RetryPolicy::no_retry(),
            || MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(1.0), 0),
            |runner, &steady| {
                runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        assert_eq!(robust.points.len(), 0);
        assert_eq!(robust.failed_configs(), items.len());
        assert_eq!(robust.total, items.len());
        for (i, f) in robust.failures.iter().enumerate() {
            assert_eq!(f.index, i);
            assert_eq!(f.config, items[i]);
            assert_eq!(f.attempts, 1);
            assert_eq!(f.error, MeasureError::TransientReadFailure);
        }
    }

    #[test]
    fn retries_clear_transient_faults() {
        // A certain-failure plan never clears, but a moderate one must
        // clear more configurations at 4 attempts than at 1.
        let items: Vec<f64> = (1..=16).map(|i| 10.0 * i as f64).collect();
        let sweep = |attempts: usize| {
            SweepExecutor::serial(9).run_measured_with_retry(
                &items,
                RetryPolicy::attempts(attempts),
                || MeasurementRunner::faulty(Watts(90.0), FaultPlan::transient(0.4), 0),
                |runner, &steady| {
                    runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let once = sweep(1);
        let patient = sweep(4);
        assert!(once.failed_configs() > patient.failed_configs());
        assert!(patient.retried > 0);
    }

    #[test]
    fn zero_deadline_converts_every_config_to_deadline_exceeded() {
        // A zero budget is the degenerate watchdog: every attempt overruns
        // it, so every configuration burns its full retry allowance and
        // fails with DeadlineExceeded — deterministically, with no timing
        // assumptions about the host.
        let items: Vec<f64> = (1..=4).map(|i| 10.0 * i as f64).collect();
        let robust = SweepExecutor::serial(5).run_measured_with_retry(
            &items,
            RetryPolicy::attempts(2).with_attempt_deadline(Duration::ZERO),
            || MeasurementRunner::new(Watts(90.0), 0),
            |runner, &steady| {
                runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
            },
        );
        assert_eq!(robust.points.len(), 0);
        assert_eq!(robust.failed_configs(), items.len());
        for f in &robust.failures {
            // The deadline error is transient, so the retry budget was spent.
            assert_eq!(f.attempts, 2);
            assert!(
                matches!(f.error, MeasureError::DeadlineExceeded { .. }),
                "expected DeadlineExceeded, got {}",
                f.error
            );
        }
    }

    #[test]
    fn generous_deadline_leaves_the_sweep_bitwise_untouched() {
        let items: Vec<f64> = (1..=8).map(|i| 10.0 * i as f64).collect();
        let run = |policy: RetryPolicy| {
            SweepExecutor::serial(7).run_measured_with_retry(
                &items,
                policy,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.try_measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let plain = run(RetryPolicy::default());
        let watched =
            run(RetryPolicy::default().with_attempt_deadline(Duration::from_secs(3600)));
        assert_eq!(plain, watched);
    }

    #[test]
    fn sweep_failure_display_is_readable() {
        let f = SweepFailure {
            config: 42.0f64,
            index: 7,
            attempts: 3,
            error: MeasureError::TransientReadFailure,
        };
        let s = f.to_string();
        assert!(s.contains("#7"), "{s}");
        assert!(s.contains("42"), "{s}");
        assert!(s.contains("3 attempt(s)"), "{s}");
        assert!(s.contains("transient"), "{s}");
    }

    #[test]
    fn sweep_failures_round_trip_through_json() {
        let f = SweepFailure {
            config: 42.0f64,
            index: 7,
            attempts: 3,
            error: MeasureError::TransientReadFailure,
        };
        let json = serde_json::to_string(&f).unwrap();
        let back: SweepFailure<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked on config #7")]
    fn parallel_worker_panic_names_the_config() {
        // The improved diagnostic: the sweep still aborts on a panicking
        // closure, but the message names the configuration instead of the
        // old opaque "sweep worker panicked".
        let items: Vec<usize> = (0..64).collect();
        let exec = SweepExecutor::new(1).with_threads(4);
        exec.map(&items, |&x, _| {
            assert!(x != 7, "bad config");
            x
        });
    }

    #[test]
    #[should_panic(expected = "sweep worker panicked on config #3 of 8")]
    fn serial_worker_panic_names_the_config() {
        let items: Vec<usize> = (0..8).collect();
        SweepExecutor::serial(1).map(&items, |&x, _| {
            assert!(x != 3, "bad config");
            x
        });
    }

    #[test]
    fn worker_panic_diagnostic_carries_the_original_payload() {
        let items: Vec<usize> = (0..32).collect();
        let exec = SweepExecutor::new(5).with_threads(4);
        let payload = catch_unwind(AssertUnwindSafe(|| {
            exec.map(&items, |&x, _| {
                if x == 19 {
                    panic!("meter wedged on config {x}");
                }
                x
            });
        }))
        .expect_err("the sweep must re-panic");
        let msg = panic_payload_message(payload.as_ref());
        assert!(msg.contains("config #19"), "{msg}");
        assert!(msg.contains("meter wedged on config 19"), "{msg}");
        assert!(msg.contains("of 32"), "{msg}");
    }

    #[test]
    fn poisoned_lock_recovers_instead_of_cascading() {
        // A worker that panics while holding a shared mutex must not turn
        // every later lock into a "poisoned" panic: `lock_unpoisoned`
        // recovers the guard and the data stays usable.
        let shared = std::sync::Arc::new(Mutex::new(Vec::<u64>::new()));
        let poisoner = std::sync::Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let mut guard = poisoner.lock().unwrap();
            guard.push(1);
            panic!("worker dies while holding the lock");
        })
        .join();
        assert!(shared.is_poisoned(), "the panic must have poisoned the lock");
        lock_unpoisoned(&shared).push(2);
        assert_eq!(*lock_unpoisoned(&shared), vec![1, 2]);
    }

    #[test]
    fn poisoned_journal_lock_still_appends_durably() {
        // The journal-specific regression: poison the writer lock exactly
        // as a mid-append worker panic would, then keep appending through
        // the recovery path and verify every record survives replay.
        use crate::checkpoint::{replay, JournalRecord, SweepCheckpoint, SweepManifest};

        let dir = std::env::temp_dir()
            .join(format!("enprop-poisoned-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let manifest = SweepManifest::new(7, 2, 1, "poison-regression".to_string());
        let ckpt: SweepCheckpoint<f64> = SweepCheckpoint::fresh(&dir, manifest).unwrap();
        let shared = std::sync::Arc::new(Mutex::new(ckpt));

        let poisoner = std::sync::Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let mut guard = poisoner.lock().unwrap();
            guard
                .writer_mut()
                .append(&JournalRecord {
                    index: 0,
                    outcome: SweepOutcome::Ok { point: 1.5f64, attempts: 1 },
                })
                .unwrap();
            panic!("worker dies while holding the journal lock");
        })
        .join();
        assert!(shared.is_poisoned(), "the panic must have poisoned the lock");

        // The old code's `.expect("journal lock poisoned")` would panic
        // here; the recovered guard keeps journaling.
        let mut guard = lock_unpoisoned(&shared);
        guard
            .writer_mut()
            .append(&JournalRecord {
                index: 1,
                outcome: SweepOutcome::Ok { point: 2.5f64, attempts: 1 },
            })
            .unwrap();
        guard.writer_mut().finish().unwrap();
        drop(guard);

        let replayed = replay::<f64>(&dir).unwrap();
        let mut indices: Vec<usize> = replayed.outcomes.iter().map(|(i, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1], "both appends must be durable");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_seed_changes_results() {
        let items = [50.0f64, 80.0];
        let run = |seed: u64| {
            SweepExecutor::serial(seed).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        assert_ne!(run(1), run(2));
    }
}
