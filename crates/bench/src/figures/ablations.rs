//! Ablations of the calibrated power-model mechanisms.
//!
//! `DESIGN.md` attributes each published Pareto feature to one modeled
//! mechanism. These ablations switch the mechanisms off one at a time and
//! regenerate the affected artifact, demonstrating the attribution:
//!
//! * **auto-boost** (P100) → the multi-point global fronts of Fig. 8;
//! * **clock-gating ineffectiveness** (K40c, power ∝ occupancy) → the
//!   non-monotone energy cloud behind Fig. 7's local fronts;
//! * **the 58 W warm-up component** → Fig. 6's non-additivity.

use super::{front_of, gpu_cloud};
use enprop_apps::SweepExecutor;
use enprop_gpusim::{GpuArch, TiledDgemm, TiledDgemmConfig};
use serde::{Deserialize, Serialize};

/// Outcome of one mechanism ablation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Which mechanism was removed.
    pub mechanism: String,
    /// The observable it controls.
    pub observable: String,
    /// Value with the mechanism enabled (the calibrated model).
    pub with: f64,
    /// Value with the mechanism disabled.
    pub without: f64,
}

impl Ablation {
    /// Whether removing the mechanism moved the observable by at least a
    /// factor of two in either direction.
    pub fn mechanism_is_load_bearing(&self) -> bool {
        self.without < 0.5 * self.with || self.without > 2.0 * self.with
    }
}

/// P100 with auto-boost disabled.
fn p100_no_boost() -> GpuArch {
    let mut arch = GpuArch::p100_pcie();
    arch.power.boost_occupancy = 2.0; // unreachable
    arch.power.boost_speedup = 1.0;
    arch.power.boost_power_mult = 1.0;
    arch
}

/// K40c with perfect clock gating (power follows utilization, not
/// occupancy).
fn k40c_gated() -> GpuArch {
    let mut arch = GpuArch::k40c();
    arch.power.gating_effectiveness = 1.0;
    arch
}

/// A GPU with the warm-up component removed.
fn without_warmup(mut arch: GpuArch) -> GpuArch {
    arch.power.warmup_power_w = 0.0;
    arch.power.warmup_duration_s = 0.0;
    arch
}

/// Max energy savings on the global front of the (possibly ablated) arch.
fn global_savings(arch: GpuArch, n: usize) -> f64 {
    let cloud = gpu_cloud(arch, n);
    front_of(&cloud, |_| true).best_pair().map(|(s, _)| s).unwrap_or(0.0)
}

/// Size of the global Pareto front (1 = the paper's K40c singleton).
fn global_front_size(arch: GpuArch, n: usize) -> f64 {
    let cloud = gpu_cloud(arch, n);
    front_of(&cloud, |_| true).len() as f64
}

/// G = 4 non-additivity at N = 5120 (BS = 16) for the given arch.
fn nonadditivity(arch: GpuArch) -> f64 {
    let model = TiledDgemm::new(arch);
    let e1 = model
        .estimate(&TiledDgemmConfig { n: 5120, bs: 16, g: 1, r: 1 })
        .dynamic_energy()
        .value();
    let e4 = model
        .estimate(&TiledDgemmConfig { n: 5120, bs: 16, g: 4, r: 1 })
        .dynamic_energy()
        .value();
    (4.0 * e1 - e4) / (4.0 * e1)
}

/// Runs all three ablations over all available cores.
pub fn generate() -> Vec<Ablation> {
    generate_with(&SweepExecutor::new(0))
}

/// [`generate`] with an explicit executor: the six model evaluations (with
/// and without each mechanism) fan out over its workers. All evaluations
/// are noise-free, so the executor seed is irrelevant.
pub fn generate_with(exec: &SweepExecutor) -> Vec<Ablation> {
    let tasks: Vec<usize> = (0..6).collect();
    let vals = exec.map(&tasks, |&task, _seed| match task {
        0 => global_savings(GpuArch::p100_pcie(), 10240),
        1 => global_savings(p100_no_boost(), 10240),
        2 => global_front_size(GpuArch::k40c(), 10240),
        3 => global_front_size(k40c_gated(), 10240),
        4 => nonadditivity(GpuArch::p100_pcie()),
        _ => nonadditivity(without_warmup(GpuArch::p100_pcie())),
    });
    vec![
        Ablation {
            mechanism: "P100 auto-boost".into(),
            observable: "global-front max savings at N = 10240".into(),
            with: vals[0],
            without: vals[1],
        },
        Ablation {
            // With Kepler's occupancy-tracking power the BS = 32 optimum
            // dominates everything (front size 1, the paper's claim);
            // granting K40c perfect Pascal-style gating would put slower,
            // lower-utilization configurations onto the global front.
            mechanism: "K40c occupancy-power (imperfect clock gating)".into(),
            observable: "global-front points at N = 10240 (paper: 1)".into(),
            with: vals[2],
            without: vals[3],
        },
        Ablation {
            mechanism: "58 W warm-up component".into(),
            observable: "G=4 non-additivity at N = 5120 (P100)".into(),
            with: vals[4],
            without: vals[5],
        },
    ]
}

/// Renders the ablation table.
pub fn render() -> String {
    let rows: Vec<Vec<String>> = generate()
        .iter()
        .map(|a| {
            vec![
                a.mechanism.clone(),
                a.observable.clone(),
                crate::render::pct(a.with),
                crate::render::pct(a.without),
                if a.mechanism_is_load_bearing() { "LOAD-BEARING".into() } else { "minor".into() },
            ]
        })
        .collect();
    crate::render::table(&["mechanism", "observable", "with", "without", "verdict"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boost_creates_p100_front_savings() {
        let a = &generate()[0];
        assert!(a.with > 0.35, "with boost: {}", a.with);
        assert!(a.mechanism_is_load_bearing(), "{a:?}");
    }

    #[test]
    fn occupancy_power_keeps_k40c_front_singleton() {
        let a = &generate()[1];
        assert_eq!(a.with, 1.0, "calibrated K40c front must be a singleton");
        assert!(a.without > a.with, "gated K40c should gain front points: {a:?}");
    }

    #[test]
    fn warmup_creates_nonadditivity() {
        let a = &generate()[2];
        assert!(a.with > 0.05, "with warm-up: {}", a.with);
        // Without the component only the ±0.4%/group i-cache effect
        // remains (slightly super-additive).
        assert!(a.without.abs() < 0.02, "without warm-up: {}", a.without);
        assert!(a.mechanism_is_load_bearing());
    }

    #[test]
    fn render_mentions_all_mechanisms() {
        let r = render();
        assert!(r.contains("auto-boost"));
        assert!(r.contains("clock gating"));
        assert!(r.contains("warm-up"));
    }
}
