#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! Real compute kernels backing the paper's applications.
//!
//! The paper's CPU experiments run Intel-MKL / OpenBLAS DGEMM inside a
//! carefully structured multithreaded harness (Fig. 3), and its strong-EP
//! study runs a 2-D FFT. This crate provides genuine Rust implementations
//! of both so the toolkit has an executable, testable ground truth for the
//! work accounting (`2 N³` flops for DGEMM, `5 N² log₂ N` for the FFT):
//!
//! * [`matrix`] — dense row-major matrices with deterministic fills;
//! * [`dgemm`] — blocked `C ← α A B + β C`, serial and multi-threaded
//!   (row slabs over a chunked work-claiming cursor, bitwise-identical at
//!   any thread count);
//! * [`threadgroup`] — the paper's Fig. 3 decomposition: `p` threadgroups ×
//!   `t` threads, A and C horizontally partitioned, B shared, no
//!   inter-thread communication;
//! * [`fft`] — iterative radix-2 complex FFT;
//! * [`fft2d`] — parallel row–column 2-D FFT.
//!
//! These kernels run at laptop-scale sizes; the simulators in
//! `enprop-cpusim`/`enprop-gpusim` extrapolate timing and power to the
//! paper's N (up to 44000, far beyond available memory).

pub mod dgemm;
pub mod fft;
pub mod fft2d;
pub mod matrix;
mod par;
pub mod threadgroup;

pub use dgemm::{dgemm_blocked, dgemm_blocked_mt, dgemm_blocked_unpacked, dgemm_naive, simd_dispatch};
pub use fft::{fft_inplace, ifft_inplace, Complex, Twiddles};
pub use fft2d::{fft2d_parallel, fft2d_serial, fft2d_work};
pub use matrix::Matrix;
pub use threadgroup::{dgemm_threadgroups, ThreadgroupConfig, ThreadgroupRun};
