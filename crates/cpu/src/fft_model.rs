//! CPU side of the strong-EP study (Fig. 1): an analytic Intel-MKL-style
//! 2-D FFT execution model.
//!
//! The paper's Fig. 1 CPU curve is strongly non-linear in the work
//! `W = 5 N² log₂ N`. Two mechanisms dominate on a real node and are both
//! modeled:
//!
//! * **cache regimes** — signals that fit the L3 complex run at high flop
//!   efficiency; larger signals pay DRAM-bandwidth-bound row/column passes;
//! * **size smoothness** — FFT cost depends on N's factorization: MKL
//!   handles smooth sizes (2ᵃ3ᵇ5ᶜ7ᵈ) near peak and degrades on sizes with
//!   large prime factors, which makes energy-vs-work jagged across the
//!   paper's N = 125…44000 sweep.

use crate::topology::CpuTopology;
use enprop_units::{Joules, Seconds, Watts, Work};

/// The paper's work measure: `W = 5 N² log₂ N`.
pub fn fft2d_work(n: usize) -> Work {
    let nf = n as f64;
    Work(5.0 * nf * nf * nf.log2())
}

/// Largest prime factor of `n` (trial division; fine for the sweep sizes).
pub fn largest_prime_factor(mut n: usize) -> usize {
    assert!(n >= 2, "needs n >= 2");
    let mut largest = 1;
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            largest = d;
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        largest = n;
    }
    largest
}

/// Relative FFT kernel efficiency of size `n` based on its smoothness:
/// 1.0 for 7-smooth sizes, dropping toward 0.3 for sizes dominated by a
/// large prime factor.
pub fn smoothness_efficiency(n: usize) -> f64 {
    let lpf = largest_prime_factor(n) as f64;
    if lpf <= 7.0 {
        1.0
    } else {
        (7.0 / lpf).powf(0.35).max(0.3)
    }
}

/// Execution estimate of one CPU 2-D FFT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuFftEstimate {
    /// Wall-clock time of the transform.
    pub time: Seconds,
    /// Dynamic power over the run.
    pub power: Watts,
    /// Dynamic energy of the run.
    pub energy: Joules,
}

/// The model bound to one node.
#[derive(Debug, Clone)]
pub struct CpuFft2d {
    topo: CpuTopology,
}

/// Peak-flops fraction a cache-resident multithreaded FFT achieves.
const FFT_COMPUTE_EFF: f64 = 0.30;
/// Bytes moved per signal element per full 2-D transform (row pass +
/// column pass + transposes, complex doubles).
const PASS_TRAFFIC_MULT: f64 = 6.0;

impl CpuFft2d {
    /// Binds the model to a node.
    pub fn new(topo: CpuTopology) -> Self {
        Self { topo }
    }

    /// The model for the paper's Haswell node.
    pub fn haswell() -> Self {
        Self::new(CpuTopology::haswell_e5_2670v3())
    }

    /// Predicts one `N × N` complex 2-D FFT run with one thread per core.
    pub fn estimate(&self, n: usize) -> CpuFftEstimate {
        assert!(n >= 2, "FFT size must be at least 2");
        let nf = n as f64;
        let flops = fft2d_work(n).value();

        let eff = FFT_COMPUTE_EFF * smoothness_efficiency(n);
        let compute_time = flops / (self.topo.peak_flops() * eff);

        let signal_bytes = 16.0 * nf * nf;
        let l3_total = self.topo.l3.value() * self.topo.sockets as f64;
        let cache_mult = if signal_bytes <= l3_total { 4.0 } else { 1.0 };
        let mem_time =
            signal_bytes * PASS_TRAFFIC_MULT / (self.topo.memory_bandwidth.value() * cache_mult);

        let t = compute_time.max(mem_time) + 5.0e-5;
        let s_mem = mem_time / compute_time.max(mem_time);

        // All physical cores busy (stall-inclusive utilization ≈ 1); power
        // varies with how memory-bound the phase mix is.
        let pm = &self.topo.power;
        let cores = self.topo.physical_cores() as f64;
        let power = cores * pm.core_w * (1.0 + pm.smt_bonus)
            + pm.uncore_w * s_mem
            + pm.dtlb_w * 0.3 * s_mem;

        CpuFftEstimate {
            time: Seconds(t),
            power: Watts(power),
            energy: Watts(power) * Seconds(t),
        }
    }

    /// Dynamic energy per unit work — constant under strong EP.
    pub fn energy_per_work(&self, n: usize) -> f64 {
        self.estimate(n).energy.value() / fft2d_work(n).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_factorization_helper() {
        assert_eq!(largest_prime_factor(2), 2);
        assert_eq!(largest_prime_factor(1024), 2);
        assert_eq!(largest_prime_factor(125), 5);
        assert_eq!(largest_prime_factor(44000), 11);
        assert_eq!(largest_prime_factor(17408), 17);
        assert_eq!(largest_prime_factor(97), 97);
    }

    #[test]
    fn smooth_sizes_are_efficient() {
        assert_eq!(smoothness_efficiency(4096), 1.0);
        assert_eq!(smoothness_efficiency(3000), 1.0); // 2³·3·5³
        assert!(smoothness_efficiency(44000) < 1.0); // 11 | 44000
        assert!(smoothness_efficiency(9973) < smoothness_efficiency(44000)); // prime
        assert!(smoothness_efficiency(9973) >= 0.3);
    }

    #[test]
    fn time_monotone_for_smooth_sizes() {
        let m = CpuFft2d::haswell();
        let mut prev = 0.0;
        for n in [128, 512, 2048, 8192, 32768] {
            let t = m.estimate(n).time.value();
            assert!(t > prev, "n={n}");
            prev = t;
        }
    }

    #[test]
    fn strong_ep_violated_on_cpu() {
        let m = CpuFft2d::haswell();
        let ns = [125, 256, 1000, 1940, 4096, 9973, 16384, 44000];
        let ratios: Vec<f64> = ns.iter().map(|&n| m.energy_per_work(n)).collect();
        let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
        let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.5, "spread {}", max / min);
    }

    #[test]
    fn cache_resident_sizes_cheaper_per_work() {
        let m = CpuFft2d::haswell();
        // 1024² complex = 16 MB fits the combined 60 MB L3; 8192² does not.
        assert!(m.energy_per_work(1024) < m.energy_per_work(8192));
    }

    #[test]
    fn power_in_sane_envelope() {
        let m = CpuFft2d::haswell();
        for n in [125, 1024, 44000] {
            let p = m.estimate(n).power.value();
            assert!(p > 40.0 && p < 160.0, "n={n}: {p}");
        }
    }
}
