//! Deterministic, seed-driven fault injection for the measurement path.
//!
//! Real energy meters fail in a handful of characteristic ways — whole
//! readings lost to serial hiccups, individual samples dropped, wrapped or
//! stale hardware counters leaking through as absurd readings, and idle
//! baselines drifting between capture and run. [`FaultInjectingMeter`]
//! wraps any [`Meter`] and reproduces all four on demand, from a fault
//! stream that is a pure function of the reseed seed — so a sweep under a
//! given `(sweep_seed, fault plan)` sees the *same* faults at any thread
//! count, and the robustness machinery (typed errors, retry/backoff,
//! failure reporting) is testable bit-for-bit without hardware.

use crate::error::MeasureError;
use crate::meter::Meter;
use crate::source::PowerSource;
use crate::trace::PowerTrace;
use enprop_units::{Seconds, Watts};

/// The bogus reading a "wrapped counter" glitch injects: far above any
/// plausible node draw, so sessions reject it as
/// [`MeasureError::ImplausibleSample`].
pub const GLITCH_POWER: Watts = Watts(1.0e9);

/// Rates and magnitudes of the injected faults. All rates are
/// probabilities in `[0, 1]`; [`FaultPlan::none`] disables everything (and
/// leaves the wrapped meter's readings bitwise-untouched).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a whole `record`/`record_idle` call fails with
    /// [`MeasureError::TransientReadFailure`].
    pub transient_failure_rate: f64,
    /// Per-sample probability that a reading is silently dropped from the
    /// trace (wall-socket meters miss samples under serial load).
    pub dropout_rate: f64,
    /// Probability that one sample of a recording is replaced by
    /// [`GLITCH_POWER`] — the signature of a wrapped/stale counter.
    pub glitch_rate: f64,
    /// Half-width of the per-seed baseline drift: every reseed draws a
    /// fixed offset uniformly from `[-drift, +drift]` watts and adds it to
    /// idle captures only, biasing the baseline the way a warming room
    /// biases a real one.
    pub baseline_drift_w: f64,
}

impl FaultPlan {
    /// No faults at all. The wrapper then forwards the inner meter's
    /// traces unchanged (the fault stream is still advanced, but never
    /// touches a reading), so results are bitwise-identical to running
    /// without the wrapper.
    pub fn none() -> Self {
        Self {
            transient_failure_rate: 0.0,
            dropout_rate: 0.0,
            glitch_rate: 0.0,
            baseline_drift_w: 0.0,
        }
    }

    /// Only transient whole-reading failures, at `rate`.
    pub fn transient(rate: f64) -> Self {
        Self { transient_failure_rate: rate, ..Self::none() }
    }

    /// Sets the per-sample dropout rate.
    pub fn with_dropouts(mut self, rate: f64) -> Self {
        self.dropout_rate = rate;
        self
    }

    /// Sets the counter-wrap glitch rate.
    pub fn with_glitches(mut self, rate: f64) -> Self {
        self.glitch_rate = rate;
        self
    }

    /// Sets the baseline-drift half-width in watts.
    pub fn with_baseline_drift(mut self, drift_w: f64) -> Self {
        self.baseline_drift_w = drift_w;
        self
    }

    fn validate(&self) {
        for (name, r) in [
            ("transient_failure_rate", self.transient_failure_rate),
            ("dropout_rate", self.dropout_rate),
            ("glitch_rate", self.glitch_rate),
        ] {
            assert!((0.0..=1.0).contains(&r), "{name} must be in [0, 1], got {r}");
        }
        assert!(self.baseline_drift_w >= 0.0, "drift half-width must be non-negative");
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// A [`Meter`] wrapper that injects the faults of a [`FaultPlan`].
///
/// The fault stream is SplitMix64 over a tag-separated copy of the reseed
/// seed, so it is (a) deterministic per `(seed, call sequence)` and (b)
/// independent of the inner meter's noise stream — a zero-rate plan
/// therefore reproduces the unwrapped meter's readings bitwise.
#[derive(Debug)]
pub struct FaultInjectingMeter<M: Meter = crate::wattsup::SimulatedWattsUp> {
    inner: M,
    plan: FaultPlan,
    fault_state: u64,
    /// Baseline drift drawn at the last reseed.
    drift: Watts,
}

/// Domain-separation tag xor'ed into the seed so the fault stream never
/// aliases the inner meter's noise stream.
const FAULT_STREAM_TAG: u64 = 0xFA17_57A6_0DD5_EEDF;

impl<M: Meter> FaultInjectingMeter<M> {
    /// Wraps `inner`, injecting per `plan`, with the fault stream seeded by
    /// `seed` (the same value reseeds both streams thereafter).
    pub fn new(inner: M, plan: FaultPlan, seed: u64) -> Self {
        plan.validate();
        let mut m = Self { inner, plan, fault_state: 0, drift: Watts::ZERO };
        m.seed_fault_stream(seed);
        m
    }

    /// The active fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped meter.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The baseline drift currently in force (drawn at the last reseed).
    pub fn current_drift(&self) -> Watts {
        self.drift
    }

    fn seed_fault_stream(&mut self, seed: u64) {
        self.fault_state = seed ^ FAULT_STREAM_TAG;
        self.drift = if self.plan.baseline_drift_w > 0.0 {
            Watts((self.next_unit() * 2.0 - 1.0) * self.plan.baseline_drift_w)
        } else {
            Watts::ZERO
        };
    }

    /// SplitMix64 uniform draw in `[0, 1)` from the fault stream.
    fn next_unit(&mut self) -> f64 {
        self.fault_state = self.fault_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.fault_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Applies transient failure / glitch / dropout to one recording.
    /// The draw order (transient, glitch gate, glitch index, per-sample
    /// dropouts) is part of the determinism contract: a given seed always
    /// consumes the stream identically for a given inner trace.
    fn corrupt(
        &mut self,
        trace: PowerTrace,
        idle_drift: Option<Watts>,
    ) -> Result<PowerTrace, MeasureError> {
        if self.plan.transient_failure_rate > 0.0
            && self.next_unit() < self.plan.transient_failure_rate
        {
            return Err(MeasureError::TransientReadFailure);
        }
        let glitch_at = if self.plan.glitch_rate > 0.0
            && self.next_unit() < self.plan.glitch_rate
        {
            Some((self.next_unit() * trace.len() as f64) as usize)
        } else {
            None
        };
        let needs_rebuild =
            glitch_at.is_some() || self.plan.dropout_rate > 0.0 || idle_drift.is_some();
        if !needs_rebuild {
            return Ok(trace);
        }
        let mut out = PowerTrace::new();
        for (i, s) in trace.samples().iter().enumerate() {
            if self.plan.dropout_rate > 0.0 && self.next_unit() < self.plan.dropout_rate {
                continue;
            }
            let mut p = s.power;
            if let Some(d) = idle_drift {
                p = Watts((p + d).value().max(0.0));
            }
            if glitch_at == Some(i) {
                p = GLITCH_POWER;
            }
            out.push(s.at, p);
        }
        Ok(out)
    }
}

impl<M: Meter> Meter for FaultInjectingMeter<M> {
    fn record(&mut self, app: &dyn PowerSource) -> Result<PowerTrace, MeasureError> {
        let trace = self.inner.record(app)?;
        self.corrupt(trace, None)
    }

    fn record_idle(&mut self, window: Seconds) -> Result<PowerTrace, MeasureError> {
        let trace = self.inner.record_idle(window)?;
        let drift = (self.drift != Watts::ZERO).then_some(self.drift);
        self.corrupt(trace, drift)
    }

    fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
        self.seed_fault_stream(seed);
    }

    fn sample_period(&self) -> Seconds {
        self.inner.sample_period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ConstantLoad;
    use crate::wattsup::{MeterSpec, SimulatedWattsUp};

    fn base_meter(seed: u64) -> SimulatedWattsUp {
        SimulatedWattsUp::new(MeterSpec::default(), Watts(90.0), seed)
    }

    #[test]
    fn zero_rate_plan_is_bitwise_transparent() {
        let app = ConstantLoad::new(Watts(120.0), Seconds(30.0));
        let mut plain = base_meter(7);
        let mut wrapped = FaultInjectingMeter::new(base_meter(7), FaultPlan::none(), 7);
        assert_eq!(wrapped.record(&app).unwrap(), Meter::record(&mut plain, &app).unwrap());
        assert_eq!(
            wrapped.record_idle(Seconds(20.0)).unwrap(),
            Meter::record_idle(&mut plain, Seconds(20.0)).unwrap()
        );
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let app = ConstantLoad::new(Watts(120.0), Seconds(60.0));
        let plan = FaultPlan::transient(0.3).with_dropouts(0.2).with_glitches(0.2);
        let run = || {
            let mut m = FaultInjectingMeter::new(base_meter(3), plan, 3);
            (0..8).map(|_| m.record(&app)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reseed_resets_the_fault_stream() {
        let app = ConstantLoad::new(Watts(120.0), Seconds(60.0));
        let plan = FaultPlan::transient(0.4).with_dropouts(0.1);
        let mut used = FaultInjectingMeter::new(base_meter(0), plan, 0);
        for _ in 0..5 {
            let _ = used.record(&app);
        }
        used.reseed(11);
        let mut fresh = FaultInjectingMeter::new(base_meter(11), plan, 11);
        for _ in 0..5 {
            assert_eq!(used.record(&app), fresh.record(&app));
        }
    }

    #[test]
    fn transient_rate_one_always_fails() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(5.0));
        let mut m = FaultInjectingMeter::new(base_meter(1), FaultPlan::transient(1.0), 1);
        assert_eq!(m.record(&app), Err(MeasureError::TransientReadFailure));
        assert_eq!(m.record_idle(Seconds(5.0)), Err(MeasureError::TransientReadFailure));
    }

    #[test]
    fn dropouts_shrink_the_trace() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(200.0));
        let plan = FaultPlan::none().with_dropouts(0.5);
        let mut m = FaultInjectingMeter::new(base_meter(5), plan, 5);
        let full = Meter::record(&mut base_meter(5), &app).unwrap();
        let faulty = m.record(&app).unwrap();
        assert!(faulty.len() < full.len(), "{} !< {}", faulty.len(), full.len());
        assert!(faulty.len() > full.len() / 4, "dropout rate wildly off");
    }

    #[test]
    fn glitch_injects_an_implausible_sample() {
        let app = ConstantLoad::new(Watts(100.0), Seconds(50.0));
        let plan = FaultPlan::none().with_glitches(1.0);
        let mut m = FaultInjectingMeter::new(base_meter(2), plan, 2);
        let t = m.record(&app).unwrap();
        let peak = t.peak_power().unwrap();
        assert_eq!(peak, GLITCH_POWER);
    }

    #[test]
    fn drift_biases_idle_captures_only() {
        let plan = FaultPlan::none().with_baseline_drift(10.0);
        let mut m = FaultInjectingMeter::new(
            SimulatedWattsUp::new(
                MeterSpec { noise_sd_w: 0.0, resolution_w: 0.0, ..MeterSpec::default() },
                Watts(90.0),
                4,
            ),
            plan,
            4,
        );
        let drift = m.current_drift();
        assert!(drift.value().abs() <= 10.0);
        assert_ne!(drift, Watts::ZERO);
        let idle = m.record_idle(Seconds(20.0)).unwrap();
        let mean = idle.mean_power().unwrap().value();
        assert!((mean - (90.0 + drift.value())).abs() < 1e-9, "mean {mean}, drift {drift}");
        // App recordings are not drifted.
        let app = ConstantLoad::new(Watts(60.0), Seconds(20.0));
        let run = m.record(&app).unwrap();
        assert!((run.mean_power().unwrap().value() - 150.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_rate_rejected() {
        FaultInjectingMeter::new(base_meter(0), FaultPlan::transient(1.5), 0);
    }
}
