//! 2-D FFT by the row–column method, serial and thread-parallel.
//!
//! Matches the paper's FFT application structure: "a multithreaded parallel
//! application that divides the workload equally between the threads and
//! cores. There are no communications involved between the threads." Rows
//! are transformed in parallel, the matrix is transposed, rows (former
//! columns) are transformed in parallel again, and the matrix is transposed
//! back.

use crate::fft::{Complex, Twiddles};
use crate::par;

/// The paper's work measure for an `N × N` 2-D FFT: `W = 5 N² log₂ N`.
pub fn fft2d_work(n: usize) -> f64 {
    5.0 * (n as f64) * (n as f64) * (n as f64).log2()
}

/// Serial 2-D FFT of a row-major `n × n` signal.
///
/// One [`Twiddles`] table is built up front and reused across all `2·n`
/// row transforms of both passes, keeping the butterfly inner loops free
/// of twiddle computation.
pub fn fft2d_serial(data: &mut [Complex], n: usize) {
    assert_eq!(data.len(), n * n, "signal must be n×n");
    let tw = Twiddles::forward(n);
    for row in data.chunks_mut(n) {
        tw.apply(row);
    }
    transpose(data, n);
    for row in data.chunks_mut(n) {
        tw.apply(row);
    }
    transpose(data, n);
}

/// Thread-parallel 2-D FFT: rows are claimed dynamically by `threads`
/// workers in both passes (no inter-thread communication beyond the claim
/// cursor). All workers share one read-only [`Twiddles`] table; output is
/// bitwise-identical to [`fft2d_serial`] at any thread count.
pub fn fft2d_parallel(data: &mut [Complex], n: usize, threads: usize) {
    assert_eq!(data.len(), n * n, "signal must be n×n");
    assert!(threads >= 1, "need at least one thread");
    let threads = threads.min(n);
    let tw = Twiddles::forward(n);
    parallel_rows(data, n, threads, &tw);
    transpose(data, n);
    parallel_rows(data, n, threads, &tw);
    transpose(data, n);
}

/// FFT of each row, with rows claimed in chunks from a shared atomic
/// cursor ([`par::claim_chunks`]) rather than the former static banding,
/// so a straggling worker cannot idle the rest.
///
/// Every row is an independent in-place transform over the shared
/// read-only twiddle table, so the row-to-worker assignment cannot affect
/// the result: output is bitwise-identical at any thread count.
fn parallel_rows(data: &mut [Complex], n: usize, threads: usize, tw: &Twiddles) {
    let base = par::SendPtr::new(data.as_mut_ptr());
    par::claim_chunks(n, threads, |r0, r1| {
        // SAFETY: the claiming cursor hands out disjoint row ranges, so
        // this band is touched by exactly one worker; the scope join
        // inside `claim_chunks` publishes the writes.
        let band = unsafe { std::slice::from_raw_parts_mut(base.get().add(r0 * n), (r1 - r0) * n) };
        for row in band.chunks_mut(n) {
            tw.apply(row);
        }
    });
}

/// In-place square transpose, with the row bases carried as running
/// indices instead of re-multiplied in the swap loop.
fn transpose(data: &mut [Complex], n: usize) {
    for i in 0..n {
        let ibase = i * n;
        let mut ji = (i + 1) * n + i;
        for j in (i + 1)..n {
            data.swap(ibase + j, ji);
            ji += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;
    use crate::matrix::Matrix;

    fn signal2d(n: usize, seed: u64) -> Vec<Complex> {
        let re = Matrix::filled(n, n, seed);
        let im = Matrix::filled(n, n, seed + 1000);
        (0..n * n)
            .map(|k| Complex::new(re.as_slice()[k], im.as_slice()[k]))
            .collect()
    }

    /// Reference 2-D DFT via naive 1-D DFTs on rows then columns.
    fn dft2d_naive(data: &[Complex], n: usize) -> Vec<Complex> {
        let mut rows: Vec<Complex> = Vec::with_capacity(n * n);
        for r in data.chunks(n) {
            rows.extend(dft_naive(r));
        }
        let mut out = vec![Complex::ZERO; n * n];
        for j in 0..n {
            let col: Vec<Complex> = (0..n).map(|i| rows[i * n + j]).collect();
            let f = dft_naive(&col);
            for i in 0..n {
                out[i * n + j] = f[i];
            }
        }
        out
    }

    fn max_err(a: &[Complex], b: &[Complex]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).norm_sq().sqrt())
            .fold(0.0, f64::max)
    }

    #[test]
    fn serial_matches_naive_2d_dft() {
        for &n in &[2usize, 4, 16] {
            let sig = signal2d(n, 7);
            let reference = dft2d_naive(&sig, n);
            let mut x = sig.clone();
            fft2d_serial(&mut x, n);
            assert!(max_err(&x, &reference) < 1e-8, "n = {n}");
        }
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let n = 32;
        let sig = signal2d(n, 3);
        let mut reference = sig.clone();
        fft2d_serial(&mut reference, n);
        for &threads in &[1usize, 2, 3, 5, 8, 32, 100] {
            let mut x = sig.clone();
            fft2d_parallel(&mut x, n, threads);
            assert!(max_err(&x, &reference) < 1e-12, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_bitwise_identical_across_thread_counts() {
        let n = 32;
        let sig = signal2d(n, 9);
        let bits = |s: &[Complex]| -> Vec<u64> {
            s.iter().flat_map(|c| [c.re.to_bits(), c.im.to_bits()]).collect()
        };
        let mut reference = sig.clone();
        fft2d_serial(&mut reference, n);
        for &threads in &[1usize, 2, 3, 8, 100] {
            let mut x = sig.clone();
            fft2d_parallel(&mut x, n, threads);
            assert_eq!(bits(&reference), bits(&x), "threads = {threads}");
        }
    }

    #[test]
    fn work_measure_formula() {
        // W = 5 N² log₂ N.
        assert_eq!(fft2d_work(2), 5.0 * 4.0);
        assert_eq!(fft2d_work(1024), 5.0 * 1024.0 * 1024.0 * 10.0);
    }

    #[test]
    fn transpose_is_involution() {
        let n = 8;
        let sig = signal2d(n, 1);
        let mut x = sig.clone();
        transpose(&mut x, n);
        transpose(&mut x, n);
        assert_eq!(x, sig);
    }
}
