//! Runtime SIMD dispatch for the batched phase bodies.
//!
//! The batched SoA phase bodies of [`crate::emulator::EmuDgemm`] and
//! [`crate::emulator::EmuRowFft`] each exist in up to three explicit
//! tiers — AVX-512, AVX2, and the portable scalar loop (which on x86-64
//! compiles against the SSE2 baseline). The tier is chosen **once, at
//! kernel construction**, with `is_x86_feature_detected!`, and carried as
//! plain data ([`SimdPath`]) rather than global state, so equivalence
//! tests can pin any *supported* tier explicitly and run paths
//! side-by-side without races.
//!
//! # Bitwise-identity contract
//!
//! Every tier must produce bit-identical `f64` results and identical
//! flushed event-counter totals. This holds by construction, not by
//! tolerance:
//!
//! - vector lanes map across *threads* (or across butterflies), never
//!   across one thread's sequential accumulation chain, so each emulated
//!   thread performs its floating-point operations in exactly the scalar
//!   program order;
//! - the vector bodies use separate multiply and add instructions, never
//!   FMA — the scalar interpreter rounds after each operation, and a
//!   fused multiply-add would skip the intermediate rounding;
//! - rustc does not reassociate or contract floating-point expressions,
//!   so the scalar fallback is itself a faithful oracle.
//!
//! `SimdPath::pin` clamps a requested tier to what the host supports:
//! pinning *down* (forced fallback) is always honoured, pinning up to an
//! unsupported tier silently degrades instead of hitting illegal
//! instructions.

/// The instruction-set tier a kernel's batched phase bodies run on.
///
/// Ordered by capability: `ScalarSse2 < Avx2 < Avx512`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdPath {
    /// Portable scalar bodies (the x86-64 SSE2 baseline); the
    /// always-available fallback and bitwise-equivalence oracle.
    ScalarSse2,
    /// 256-bit `core::arch` bodies (4 × f64 lanes).
    Avx2,
    /// 512-bit `core::arch` bodies (8 × f64 lanes).
    Avx512,
}

impl SimdPath {
    /// The widest tier this host can execute, detected at runtime.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return SimdPath::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdPath::Avx2;
            }
        }
        SimdPath::ScalarSse2
    }

    /// Clamps a requested tier to host support: the forced-fallback tests
    /// pin down freely, while a pin *above* the host's capability quietly
    /// degrades to the widest executable tier.
    pub fn pin(self) -> Self {
        self.min(Self::detect())
    }

    /// Every tier this host can execute, narrowest first. The
    /// forced-fallback equivalence suite iterates this.
    pub fn available() -> Vec<Self> {
        let widest = Self::detect();
        [SimdPath::ScalarSse2, SimdPath::Avx2, SimdPath::Avx512]
            .into_iter()
            .filter(|p| *p <= widest)
            .collect()
    }

    /// Stable identifier for bench-json (`avx512` / `avx2` /
    /// `scalar-sse2`), so BENCH files from different hosts are comparable.
    pub fn as_str(self) -> &'static str {
        match self {
            SimdPath::Avx512 => "avx512",
            SimdPath::Avx2 => "avx2",
            SimdPath::ScalarSse2 => "scalar-sse2",
        }
    }
}

impl std::fmt::Display for SimdPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered_by_capability() {
        assert!(SimdPath::ScalarSse2 < SimdPath::Avx2);
        assert!(SimdPath::Avx2 < SimdPath::Avx512);
    }

    #[test]
    fn pin_never_exceeds_detection() {
        for p in [SimdPath::ScalarSse2, SimdPath::Avx2, SimdPath::Avx512] {
            assert!(p.pin() <= SimdPath::detect());
        }
        assert_eq!(SimdPath::ScalarSse2.pin(), SimdPath::ScalarSse2);
    }

    #[test]
    fn available_starts_scalar_and_ends_at_detection() {
        let avail = SimdPath::available();
        assert_eq!(avail.first(), Some(&SimdPath::ScalarSse2));
        assert_eq!(avail.last(), Some(&SimdPath::detect()));
        assert!(avail.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdPath::Avx512.as_str(), "avx512");
        assert_eq!(SimdPath::Avx2.as_str(), "avx2");
        assert_eq!(SimdPath::ScalarSse2.as_str(), "scalar-sse2");
        assert_eq!(SimdPath::Avx2.to_string(), "avx2");
    }
}
