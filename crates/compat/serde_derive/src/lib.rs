//! Offline stand-in for `serde_derive`.
//!
//! The registry-backed `serde_derive` (and its `syn`/`quote` dependency
//! tree) is unavailable in this build environment, so the derives are
//! implemented as a hand-rolled walk over the raw `proc_macro` token
//! stream. Supported input shapes — exactly what the workspace declares:
//!
//! - structs with named fields (including one type parameter, e.g.
//!   `DataPoint<C>`; every type parameter gets the corresponding
//!   Serialize/Deserialize bound),
//! - tuple structs (a single field serializes transparently, which also
//!   subsumes `#[serde(transparent)]` newtypes; larger ones as arrays),
//! - unit structs,
//! - enums with unit, tuple, and struct variants (externally tagged:
//!   `"Variant"`, `{"Variant": value}`, `{"Variant": {..fields}}`).
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one used
//! in-tree is `transparent` on single-field newtypes, whose behaviour is
//! the default here anyway.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

impl Mode {
    fn trait_name(self) -> &'static str {
        match self {
            Mode::Serialize => "Serialize",
            Mode::Deserialize => "Deserialize",
        }
    }
}

struct Input {
    name: String,
    /// Type-parameter identifiers (lifetimes and const params excluded).
    generics: Vec<String>,
    body: Body,
}

enum Body {
    NamedFields(Vec<String>),
    TupleFields(usize),
    Unit,
    Variants(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&parsed),
        Mode::Deserialize => gen_deserialize(&parsed),
    };
    code.parse().unwrap_or_else(|e| {
        format!("compile_error!(\"serde_derive stub produced invalid code: {e:?}\");")
            .parse()
            .unwrap()
    })
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i)?;
    if keyword != "struct" && keyword != "enum" {
        return Err(format!("serde_derive stub: expected struct or enum, found `{keyword}`"));
    }
    let name = expect_ident(&tokens, &mut i)?;
    let generics = parse_generics(&tokens, &mut i)?;

    let body = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedFields(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleFields(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => {
                return Err(format!("serde_derive stub: unsupported struct body: {other:?}"))
            }
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Variants(parse_variants(g.stream())?)
            }
            other => return Err(format!("serde_derive stub: unsupported enum body: {other:?}")),
        }
    };

    Ok(Input { name, generics, body })
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1; // '#'
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Bracket {
                *i += 1;
                continue;
            }
        }
        break;
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!("serde_derive stub: expected identifier, found {other:?}")),
    }
}

/// Parses `<...>` after the type name, returning type-parameter idents.
/// Bounds are skipped; lifetimes and const params are ignored.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(Vec::new()),
    }
    *i += 1;
    let mut params = Vec::new();
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_lifetime = false;
    let mut in_const = false;
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .ok_or_else(|| "serde_derive stub: unterminated generics".to_string())?;
        match tok {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        *i += 1;
                        break;
                    }
                }
                ',' if depth == 1 => {
                    at_param_start = true;
                    in_lifetime = false;
                    in_const = false;
                }
                '\'' if depth == 1 && at_param_start => in_lifetime = true,
                _ => at_param_start = false,
            },
            TokenTree::Ident(id) => {
                let text = id.to_string();
                if depth == 1 && at_param_start && !in_lifetime {
                    if text == "const" {
                        in_const = true;
                    } else if !in_const {
                        params.push(text);
                    }
                }
                at_param_start = false;
            }
            _ => at_param_start = false,
        }
        *i += 1;
    }
    Ok(params)
}

/// Collects field names from the token stream of a brace-delimited body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!("serde_derive stub: expected `:` after field `{name}`, found {other:?}"))
            }
        }
        fields.push(name);
        skip_type(&tokens, &mut i);
    }
    Ok(fields)
}

/// Advances past one type, stopping after the top-level `,` (or at the end).
/// Only angle-bracket depth needs tracking: parens/brackets arrive as groups.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts fields of a paren-delimited tuple body (top-level comma count).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i)?;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantBody::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantBody::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, body });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(input: &Input, mode: Mode) -> String {
    let trait_path = format!("::serde::{}", mode.trait_name());
    if input.generics.is_empty() {
        format!("impl {trait_path} for {}", input.name)
    } else {
        let bounded: Vec<String> =
            input.generics.iter().map(|g| format!("{g}: {trait_path}")).collect();
        let plain = input.generics.join(", ");
        format!("impl<{}> {trait_path} for {}<{plain}>", bounded.join(", "), input.name)
    }
}

fn gen_serialize(input: &Input) -> String {
    let header = impl_header(input, Mode::Serialize);
    let body = match &input.body {
        Body::NamedFields(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        Body::TupleFields(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Body::TupleFields(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Variants(variants) => {
            let name = &input.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?}))"
                        ),
                        VariantBody::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Serialize::serialize(__f0))])"
                        ),
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vname:?}), ::serde::Value::Object(::std::vec![{}]))])",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n    fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let header = impl_header(input, Mode::Deserialize);
    let name = &input.name;
    let body = match &input.body {
        Body::NamedFields(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::deserialize(__value.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::TupleFields(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
        ),
        Body::TupleFields(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(__value.element({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok({name}({}))", inits.join(", "))
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Variants(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("{:?} => ::std::result::Result::Ok({name}::{})", v.name, v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => None,
                        VariantBody::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::deserialize(__inner)?))"
                        )),
                        VariantBody::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(__inner.element({i})?)?")
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname}({}))",
                                inits.join(", ")
                            ))
                        }
                        VariantBody::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(__inner.field({f:?})?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }})",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __value {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))) }},\n\
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                     let (__tag, __inner) = &__fields[0];\n\
                     match __tag.as_str() {{ {payload_arms} __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"unknown variant `{{__other}}` of {name}\"))) }}\n\
                 }}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\"expected {name} variant, found {{}}\", __other.kind()))),\n\
                 }}",
                unit_arms = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(", "))
                },
                payload_arms = if payload_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", payload_arms.join(", "))
                },
            )
        }
    };
    format!(
        "#[automatically_derived]\n{header} {{\n    fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n}}"
    )
}
