//! Batched-monitoring equivalence: the monitor's bulk trace-consuming
//! path (PR 8 — `MonitorSink::BULK`, shadow state updated from per-phase
//! access batches) must be observationally identical to the scalar
//! per-access hook path pinned via [`ForceScalar`]: same findings in the
//! same order, same memory bits, same event counts.

use enprop_gpusim::emulator::{EmuDgemm, EmuRowFft, ForceScalar, GlobalMem};
use enprop_gpusim::TiledDgemmConfig;
use enprop_sanitize::{BufferTable, Finding, LaunchMonitor};

/// Deterministic fill for test matrices.
fn filled(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

fn bits(m: &GlobalMem) -> Vec<u64> {
    m.to_vec().iter().map(|v| v.to_bits()).collect()
}

fn render(findings: &[Finding]) -> Vec<String> {
    findings.iter().map(|f| format!("{f:?}")).collect()
}

#[test]
fn dgemm_bulk_monitoring_matches_forced_scalar_monitoring() {
    for &(n, bs, g, r) in &[(32usize, 8usize, 1usize, 1usize), (64, 16, 2, 1), (16, 4, 2, 2)] {
        let host_a = filled(n * n, 11);
        let host_b = filled(n * n, 12);
        let host_c = filled(n * n, 13);
        let emu = EmuDgemm::new(TiledDgemmConfig { n, bs, g, r });

        // Bulk path: MonitorSink::BULK routes the batched bodies' phase
        // traces through the monitor.
        let (a1, b1, c1) = (
            GlobalMem::from_slice(&host_a),
            GlobalMem::from_slice(&host_b),
            GlobalMem::from_slice(&host_c),
        );
        let mut table = BufferTable::new();
        table.register(a1.id(), "A", n * n);
        table.register(b1.id(), "B", n * n);
        table.register(c1.id(), "C", n * n);
        let monitor = LaunchMonitor::new(table, 2 * bs * bs);
        let bulk_ev = emu.run_monitored(
            &a1,
            &b1,
            &c1,
            |_, _| {
                monitor.begin_block();
                monitor.sink()
            },
            |bx, by, _s, exit| monitor.end_block(bx, by, &exit),
        );
        let bulk_out = monitor.finish();

        // Scalar path: ForceScalar masks BULK, pinning the per-access
        // interpreter loop through the same monitor logic.
        let (a2, b2, c2) = (
            GlobalMem::from_slice(&host_a),
            GlobalMem::from_slice(&host_b),
            GlobalMem::from_slice(&host_c),
        );
        let mut table = BufferTable::new();
        table.register(a2.id(), "A", n * n);
        table.register(b2.id(), "B", n * n);
        table.register(c2.id(), "C", n * n);
        let monitor = LaunchMonitor::new(table, 2 * bs * bs);
        let scalar_ev = emu.run_monitored(
            &a2,
            &b2,
            &c2,
            |_, _| {
                monitor.begin_block();
                ForceScalar(monitor.sink())
            },
            |bx, by, _s, exit| monitor.end_block(bx, by, &exit),
        );
        let scalar_out = monitor.finish();

        assert_eq!(
            render(&bulk_out.findings),
            render(&scalar_out.findings),
            "n={n} bs={bs} g={g} r={r}: findings diverged"
        );
        assert_eq!(bulk_out.suppressed, scalar_out.suppressed);
        assert_eq!(bits(&c1), bits(&c2), "n={n} bs={bs} g={g} r={r}: memory diverged");
        assert_eq!(bulk_ev, scalar_ev, "n={n} bs={bs} g={g} r={r}: events diverged");
    }
}

#[test]
fn fft_bulk_monitoring_matches_forced_scalar_monitoring() {
    for &(n, rows) in &[(8usize, 3usize), (64, 2), (256, 1)] {
        let host = filled(2 * rows * n, 21);
        let emu = EmuRowFft::new(n, rows);

        let d1 = GlobalMem::from_slice(&host);
        let mut table = BufferTable::new();
        table.register(d1.id(), "signal", 2 * rows * n);
        let monitor = LaunchMonitor::new(table, 2 * n);
        let bulk_ev = emu.run_monitored(
            &d1,
            |_, _| {
                monitor.begin_block();
                monitor.sink()
            },
            |bx, by, _s, exit| monitor.end_block(bx, by, &exit),
        );
        let bulk_out = monitor.finish();

        let d2 = GlobalMem::from_slice(&host);
        let mut table = BufferTable::new();
        table.register(d2.id(), "signal", 2 * rows * n);
        let monitor = LaunchMonitor::new(table, 2 * n);
        let scalar_ev = emu.run_monitored(
            &d2,
            |_, _| {
                monitor.begin_block();
                ForceScalar(monitor.sink())
            },
            |bx, by, _s, exit| monitor.end_block(bx, by, &exit),
        );
        let scalar_out = monitor.finish();

        assert_eq!(
            render(&bulk_out.findings),
            render(&scalar_out.findings),
            "fft n={n} rows={rows}: findings diverged"
        );
        assert_eq!(bulk_out.suppressed, scalar_out.suppressed);
        assert_eq!(bits(&d1), bits(&d2), "fft n={n} rows={rows}: memory diverged");
        assert_eq!(bulk_ev, scalar_ev, "fft n={n} rows={rows}: events diverged");
    }
}

#[test]
fn self_test_corpus_still_catches_all_fixtures_with_bulk_sink() {
    // The four seeded-defect fixtures must stay caught now that the
    // monitor consumes batched traces (the fixture kernels carry no batch
    // bodies, so they exercise the scalar fallback inside a bulk-capable
    // sink — the mixed-path case the drivers see in production).
    let corpus = enprop_sanitize::fixtures::self_test();
    assert_eq!(corpus.len(), 4, "fixture corpus changed size");
    for (checker, report) in corpus {
        assert!(
            report.findings.iter().any(|f| f.checker == checker),
            "fixture for {checker:?} no longer caught: {:?}",
            report.findings
        );
    }
}
