//! The paper's Fig. 3 parallel decomposition, executable.
//!
//! The application multiplies two dense `N × N` matrices using `p`
//! threadgroups of `t` threads each. A and C are partitioned horizontally
//! into `p` bands, one per threadgroup; within a group the band is further
//! split across the group's threads; B is shared read-only. Threads never
//! communicate, so the workload is exactly balanced (up to row rounding) —
//! the property weak-EP analysis requires of its test applications.

use crate::dgemm::{dgemm_blocked, dgemm_flops};
use crate::matrix::Matrix;
use std::time::Instant;

/// Configuration of the parallel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadgroupConfig {
    /// Number of threadgroups `p`.
    pub groups: usize,
    /// Threads per group `t`.
    pub threads_per_group: usize,
    /// Cache-block dimension used by each thread's serial kernel.
    pub block_size: usize,
}

impl ThreadgroupConfig {
    /// Total number of threads `p × t`.
    pub fn total_threads(&self) -> usize {
        self.groups * self.threads_per_group
    }
}

/// Timing and accounting of one threadgroup run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadgroupRun {
    /// Wall-clock time of the whole parallel region, seconds.
    pub wall_seconds: f64,
    /// Per-thread busy time, seconds, indexed `group * t + thread`.
    pub thread_seconds: Vec<f64>,
    /// Total flops performed (`2 N³` for the full product).
    pub flops: f64,
}

impl ThreadgroupRun {
    /// Aggregate throughput in flop/s.
    pub fn flops_per_second(&self) -> f64 {
        self.flops / self.wall_seconds
    }

    /// Load imbalance: (max − min) / max of per-thread busy times.
    pub fn imbalance(&self) -> f64 {
        let max = self.thread_seconds.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.thread_seconds.iter().cloned().fold(f64::MAX, f64::min);
        if max <= 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    }
}

/// Runs `C ← A·B` (α = 1, β = 0) with the Fig. 3 decomposition and returns
/// timing. Panics when the configuration asks for more bands than C has
/// rows.
pub fn dgemm_threadgroups(
    cfg: ThreadgroupConfig,
    a: &Matrix,
    b: &Matrix,
    c: &mut Matrix,
) -> ThreadgroupRun {
    let n = a.rows();
    assert_eq!(a.cols(), n, "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B must be N×N");
    assert_eq!((c.rows(), c.cols()), (n, n), "C must be N×N");
    let total = cfg.total_threads();
    assert!(total >= 1, "at least one thread required");
    assert!(total <= n, "more threads than rows");
    assert!(cfg.block_size > 0, "block size must be positive");

    // Per-thread horizontal bands: the p-way group split composed with the
    // t-way thread split is equivalent to a (p·t)-way row split where thread
    // (g, s) owns the s-th sub-band of group g's band.
    let a_bands = band_ranges(n, cfg.groups, cfg.threads_per_group);
    let c_bands_check = a_bands.clone();
    let mut c_refs = c.row_bands_flat_mut(&a_bands);

    let start = Instant::now();
    let mut thread_seconds = vec![0.0; total];
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(total);
        for (idx, c_band) in c_refs.drain(..).enumerate() {
            let (row0, rows) = a_bands[idx];
            let a_slice = &a.as_slice()[row0 * n..(row0 + rows) * n];
            let b_slice = b.as_slice();
            let bs = cfg.block_size;
            handles.push(scope.spawn(move |_| {
                let t0 = Instant::now();
                dgemm_blocked(1.0, a_slice, b_slice, 0.0, c_band, rows, n, n, bs);
                t0.elapsed().as_secs_f64()
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            thread_seconds[i] = h.join().expect("worker thread panicked");
        }
    })
    .expect("thread scope failed");
    let wall_seconds = start.elapsed().as_secs_f64();

    debug_assert_eq!(c_bands_check.iter().map(|r| r.1).sum::<usize>(), n);
    ThreadgroupRun { wall_seconds, thread_seconds, flops: dgemm_flops(n, n, n) }
}

/// `(first_row, row_count)` for each of the `p × t` per-thread bands.
fn band_ranges(n: usize, groups: usize, threads_per_group: usize) -> Vec<(usize, usize)> {
    // First split into p group bands, then each into t thread bands, so the
    // rounding pattern matches the paper's two-level distribution.
    let mut out = Vec::with_capacity(groups * threads_per_group);
    let gbase = n / groups;
    let gextra = n % groups;
    let mut row = 0;
    for g in 0..groups {
        let grows = gbase + usize::from(g < gextra);
        let tbase = grows / threads_per_group;
        let textra = grows % threads_per_group;
        let mut inner = row;
        for s in 0..threads_per_group {
            let trows = tbase + usize::from(s < textra);
            out.push((inner, trows));
            inner += trows;
        }
        row += grows;
    }
    out
}

impl Matrix {
    /// Splits C into the given per-thread `(first_row, rows)` bands as
    /// disjoint mutable slices.
    fn row_bands_flat_mut(&mut self, ranges: &[(usize, usize)]) -> Vec<&mut [f64]> {
        let cols = self.cols();
        let mut out = Vec::with_capacity(ranges.len());
        let mut rest: &mut [f64] = self.as_mut_slice();
        let mut consumed = 0;
        for &(row0, rows) in ranges {
            assert_eq!(row0, consumed, "ranges must be contiguous");
            let (band, tail) = rest.split_at_mut(rows * cols);
            out.push(band);
            rest = tail;
            consumed += rows;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dgemm::dgemm_naive;

    fn reference_product(n: usize) -> (Matrix, Matrix, Matrix) {
        let a = Matrix::filled(n, n, 1);
        let b = Matrix::filled(n, n, 2);
        let mut c = Matrix::square(n);
        dgemm_naive(1.0, &a, &b, 0.0, &mut c);
        (a, b, c)
    }

    #[test]
    fn parallel_matches_reference_for_various_configs() {
        let n = 48;
        let (a, b, reference) = reference_product(n);
        for &(p, t) in &[(1, 1), (1, 4), (2, 2), (4, 1), (3, 2), (2, 5)] {
            let mut c = Matrix::square(n);
            let cfg = ThreadgroupConfig { groups: p, threads_per_group: t, block_size: 8 };
            let run = dgemm_threadgroups(cfg, &a, &b, &mut c);
            assert!(reference.max_abs_diff(&c) < 1e-10, "p={p} t={t}");
            assert_eq!(run.thread_seconds.len(), p * t);
            assert!(run.wall_seconds > 0.0);
            assert_eq!(run.flops, 2.0 * (n as f64).powi(3));
        }
    }

    #[test]
    fn uneven_row_split_still_correct() {
        let n = 37; // not divisible by anything convenient
        let (a, b, reference) = reference_product(n);
        let mut c = Matrix::square(n);
        let cfg = ThreadgroupConfig { groups: 3, threads_per_group: 4, block_size: 5 };
        dgemm_threadgroups(cfg, &a, &b, &mut c);
        assert!(reference.max_abs_diff(&c) < 1e-10);
    }

    #[test]
    fn band_ranges_partition_rows() {
        for &(n, p, t) in &[(48usize, 2usize, 3usize), (37, 3, 4), (10, 1, 10), (10, 10, 1)] {
            let ranges = band_ranges(n, p, t);
            assert_eq!(ranges.len(), p * t);
            let mut next = 0;
            for &(row0, rows) in &ranges {
                assert_eq!(row0, next);
                next += rows;
            }
            assert_eq!(next, n);
            // Balance: band sizes differ by at most 1 within a group and
            // at most 2 overall (two levels of rounding).
            let sizes: Vec<usize> = ranges.iter().map(|r| r.1).collect();
            let max = *sizes.iter().max().unwrap();
            let min = *sizes.iter().min().unwrap();
            assert!(max - min <= 2, "n={n} p={p} t={t}: {sizes:?}");
        }
    }

    #[test]
    fn throughput_and_imbalance_reported() {
        let n = 32;
        let (a, b, _) = reference_product(n);
        let mut c = Matrix::square(n);
        let cfg = ThreadgroupConfig { groups: 2, threads_per_group: 2, block_size: 8 };
        let run = dgemm_threadgroups(cfg, &a, &b, &mut c);
        assert!(run.flops_per_second() > 0.0);
        assert!((0.0..=1.0).contains(&run.imbalance()));
    }

    #[test]
    #[should_panic(expected = "more threads than rows")]
    fn rejects_oversubscription_beyond_rows() {
        let a = Matrix::filled(4, 4, 1);
        let b = Matrix::filled(4, 4, 2);
        let mut c = Matrix::square(4);
        let cfg = ThreadgroupConfig { groups: 5, threads_per_group: 1, block_size: 2 };
        dgemm_threadgroups(cfg, &a, &b, &mut c);
    }
}
