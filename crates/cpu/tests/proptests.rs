//! Property-based tests of the CPU simulator and its /proc/stat surface.

use enprop_cpusim::dvfs::{DvfsTable, PState};
use enprop_cpusim::{BlasFlavor, CpuDgemmConfig, CpuSimulator, CpuTimes, Partitioning, Pinning, ProcStat};
use enprop_units::{Hertz, Seconds};
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = CpuDgemmConfig> {
    (1usize..13, 1usize..5, prop::bool::ANY, prop::bool::ANY).prop_map(|(p, t, part, flavor)| {
        CpuDgemmConfig {
            partitioning: if part { Partitioning::RowWise } else { Partitioning::Square },
            pinning: if p % 2 == 0 { Pinning::Compact } else { Pinning::Scatter },
            groups: p,
            threads_per_group: t,
            flavor: if flavor { BlasFlavor::IntelMkl } else { BlasFlavor::OpenBlas },
        }
    })
}

proptest! {
    /// Simulated runs are always physically sane.
    #[test]
    fn run_estimates_sane(cfg in any_config(), n_k in 2usize..12) {
        let n = n_k * 1024;
        let sim = CpuSimulator::haswell();
        let run = sim.run_dgemm(&cfg, n);
        prop_assert!(run.time.value() > 0.0);
        prop_assert!(run.gflops > 0.0 && run.gflops < 900.0);
        prop_assert!(run.dynamic_power.value() > 0.0 && run.dynamic_power.value() < 200.0);
        prop_assert!(run.dtlb_power <= run.dynamic_power);
        prop_assert!((0.0..=1.0).contains(&run.bandwidth_share));
        prop_assert_eq!(run.per_core_util.len(), 48);
        // Active threads are busier than idle background cores.
        let avg = run.average_utilization().fraction();
        prop_assert!(avg > 0.0 && avg <= 1.0);
    }

    /// Lower P-states are slower and draw less power, for any config.
    #[test]
    fn dvfs_ordering(cfg in any_config(), n_k in 2usize..10) {
        let n = n_k * 1024;
        let sim = CpuSimulator::haswell();
        let table = DvfsTable::haswell();
        let nominal: PState = *table.nominal(Hertz(2.3e9));
        let slow = sim.run_dgemm_at(&cfg, n, table.min_state(), &nominal);
        let fast = sim.run_dgemm_at(&cfg, n, &nominal, &nominal);
        prop_assert!(slow.time >= fast.time);
        prop_assert!(slow.dynamic_power <= fast.dynamic_power);
    }

    /// /proc/stat render→parse is the identity for arbitrary jiffies.
    #[test]
    fn procstat_roundtrip(
        jiffies in prop::collection::vec((0u64..1_000_000, 0u64..1_000_000), 1..64)
    ) {
        let cpus: Vec<CpuTimes> = jiffies
            .iter()
            .map(|&(user, idle)| CpuTimes { user, idle, ..CpuTimes::default() })
            .collect();
        let stat = ProcStat::from_cpus(cpus);
        let parsed = ProcStat::parse(&stat.render()).expect("roundtrip parse");
        prop_assert_eq!(parsed, stat);
    }

    /// Utilization recovered from snapshots is exact for grid-aligned
    /// busy/idle splits.
    #[test]
    fn utilization_recovery(
        splits in prop::collection::vec(0.0f64..1.0, 1..48)
    ) {
        let before = ProcStat::zeroed(splits.len());
        let mut after = before.clone();
        for (i, &busy_frac) in splits.iter().enumerate() {
            // 100-second window on the jiffy grid.
            let busy = (busy_frac * 100.0).round();
            after.advance(i, Seconds(busy), Seconds(100.0 - busy));
        }
        let utils = after.utilization_since(&before);
        for (u, &busy_frac) in utils.iter().zip(&splits) {
            let expect = (busy_frac * 100.0).round() / 100.0;
            prop_assert!((u.fraction() - expect).abs() < 1e-9);
        }
    }

    /// Determinism: identical configurations give identical estimates;
    /// different flavors differ.
    #[test]
    fn simulator_determinism(cfg in any_config()) {
        let sim = CpuSimulator::haswell();
        let a = sim.run_dgemm(&cfg, 8192);
        let b = sim.run_dgemm(&cfg, 8192);
        prop_assert_eq!(a, b);
    }
}
