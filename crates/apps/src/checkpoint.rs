//! Durable checkpoint journal for long measurement sweeps.
//!
//! ROADMAP item 5 is blunt about the scaling blocker: million-configuration
//! campaigns must "survive restarts and stay bitwise-deterministic given the
//! same seed and budget". The fault-tolerance layer (typed [`MeasureError`],
//! retry/backoff, `RobustSweep`) hardened individual measurements, but the
//! *process* was still fragile — a crash at index 9 999 of 10 000 lost
//! everything. This module closes that gap with a write-ahead journal of
//! completed configurations:
//!
//! * **Record framing.** Each completed configuration is appended as one
//!   frame: `[body_len: u32 LE][crc32(body): u32 LE][body]`, where the body
//!   is the compact-JSON encoding of a [`JournalRecord`] (the configuration
//!   index plus its `SweepOutcome`, successful or not). The CRC detects
//!   bit-rot; the length prefix makes torn tails self-delimiting.
//! * **Segment protocol.** Frames are appended to an *active tail* named
//!   `seg-NNNNNNNN.open` and group-committed: the tail is fsynced every
//!   [`DEFAULT_SYNC_EVERY`] appends (and at every seal) rather than per
//!   record, so durability costs a bounded recompute window instead of a
//!   per-config fsync. When a tail reaches its capacity it is *sealed* by
//!   an atomic rename to `seg-NNNNNNNN.log`; the journal's durable history
//!   is the ordered list of sealed segments plus at most one tail. The
//!   sweep manifest (`MANIFEST.json`) is likewise written through a
//!   tmp-file + rename, so no reader ever observes a half-written manifest
//!   or sealed segment. A power cut can therefore cost at most the last
//!   unsynced batch plus a torn frame — both of which the tolerant tail
//!   scan absorbs, and resume simply recomputes.
//! * **Replay semantics.** Sealed segments must parse completely — any torn
//!   or CRC-failing frame in one is a typed [`CheckpointError::CorruptRecord`],
//!   never a panic. The tail is scanned *tolerantly*: a trailing frame cut
//!   short by a crash (even mid-header) delimits a clean prefix that is
//!   replayed, and the torn bytes are dropped. A frame whose body is fully
//!   present but fails its CRC is corruption in both modes — truncation can
//!   only shorten a file, never flip bits.
//! * **Resume invariant.** Because every outcome is a pure function of
//!   `(sweep_seed, index, attempt)` (see
//!   [`split_seed`](crate::parallel::split_seed)), replaying journaled
//!   outcomes and recomputing only the missing indices reproduces the
//!   uninterrupted sweep bitwise, at any thread count.
//!
//! Robustness is proven, not asserted: [`CrashPlan`] deterministically kills
//! the journal mid-write — including torn final records — from a
//! domain-separated SplitMix64 stream, mirroring the measurement layer's
//! `FaultPlan`, and the crash-injection suite resumes from the wreckage and
//! asserts bitwise equality with a clean run.
//!
//! [`MeasureError`]: enprop_power::MeasureError

use crate::parallel::SweepOutcome;
use serde::{Deserialize, DeserializeOwned, Serialize};
use std::collections::HashSet;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Version stamp written into every manifest; bumped on any change to the
/// frame or segment encoding.
pub const JOURNAL_FORMAT_VERSION: u32 = 1;

/// Records per segment before the tail is sealed and a new one opened.
/// Small enough that a lost tail forfeits bounded work, large enough that
/// segment turnover is noise.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 512;

/// Appends between group-commit fsyncs of the active tail. A crash (or
/// power cut) can lose at most this many trailing records to the page
/// cache; resume recomputes them. Chosen so the journal's wall-clock
/// overhead stays well under the 10% budget `repro bench-json --check`
/// enforces, while bounding the recompute window to seconds of work.
pub const DEFAULT_SYNC_EVERY: usize = 16;

const MANIFEST_FILE: &str = "MANIFEST.json";
const FRAME_HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) over `bytes`.
///
/// Bit-serial on purpose: the journal writes one small frame per measured
/// configuration, so table-driven throughput would be invisible next to the
/// measurement itself, and the 60-line-smaller implementation is easier to
/// audit against the published check value (see the unit test).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Identity of the sweep a journal belongs to, pinned in `MANIFEST.json`.
///
/// Resume refuses to replay a journal whose manifest disagrees with the
/// sweep being run — replaying outcomes produced under a different seed,
/// configuration count, retry budget, or fault environment would silently
/// break the bitwise-reproducibility contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// Journal encoding version ([`JOURNAL_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The sweep seed every `config_seed` derives from.
    pub sweep_seed: u64,
    /// Total configurations in the sweep's enumeration order.
    pub total_configs: usize,
    /// The retry policy's attempt budget (attempt-`k` reseeding makes
    /// outcomes depend on it).
    pub max_attempts: usize,
    /// Free-form description of the workload *and* measurement environment
    /// (app, size, fault plan, …); anything that changes outcomes belongs
    /// in here so a mismatch is caught at resume.
    pub workload: String,
}

impl SweepManifest {
    /// A manifest for the current [`JOURNAL_FORMAT_VERSION`].
    pub fn new(
        sweep_seed: u64,
        total_configs: usize,
        max_attempts: usize,
        workload: impl Into<String>,
    ) -> Self {
        Self {
            format_version: JOURNAL_FORMAT_VERSION,
            sweep_seed,
            total_configs,
            max_attempts,
            workload: workload.into(),
        }
    }
}

/// One journaled configuration: its index and what happened to it.
///
/// Failures are journaled too — a configuration that exhausted its retries
/// is *finished* and must not be re-measured on resume, or the resumed
/// sweep would diverge from the uninterrupted one whenever a retry draw
/// differs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord<T> {
    /// The configuration's index in the sweep's enumeration order.
    pub index: usize,
    /// The outcome of measuring it (point or final failure, with attempts).
    pub outcome: SweepOutcome<T>,
}

/// Everything that can go wrong reading or writing a checkpoint journal.
///
/// The torn-write contract: truncating a valid journal at *any* byte offset
/// yields either a clean-prefix replay or one of these — never a panic,
/// and never a replayed torn record (pinned by proptest).
#[derive(Debug)]
pub enum CheckpointError {
    /// An I/O error, with the path and operation that failed.
    Io {
        /// Human-readable context (`append seg-00000000.open: ...`).
        context: String,
    },
    /// A record could not be encoded to JSON (e.g. a non-finite float in a
    /// measured point); the journal only stores what JSON can round-trip
    /// bit-for-bit.
    Unencodable {
        /// What failed to encode.
        detail: String,
    },
    /// The directory holds no `MANIFEST.json` — nothing to resume.
    ManifestMissing {
        /// The journal directory.
        dir: String,
    },
    /// The manifest exists but cannot be parsed.
    ManifestInvalid {
        /// Parse failure detail.
        detail: String,
    },
    /// A fresh journal was requested in a directory that already holds one
    /// (pass `--resume`, or point at an empty directory).
    JournalExists {
        /// The journal directory.
        dir: String,
    },
    /// The on-disk manifest disagrees with the sweep being resumed.
    ManifestMismatch {
        /// Which manifest field disagreed.
        field: &'static str,
        /// The value the resuming sweep expected.
        expected: String,
        /// The value found on disk.
        found: String,
    },
    /// A frame failed validation: torn inside a *sealed* segment, CRC
    /// mismatch, undecodable body, or an inconsistent segment sequence.
    CorruptRecord {
        /// The segment file the bad frame lives in.
        segment: String,
        /// Byte offset of the frame within the segment.
        offset: u64,
        /// What exactly was wrong.
        detail: String,
    },
    /// A journaled record names a configuration index outside the sweep.
    IndexOutOfRange {
        /// The segment file the record lives in.
        segment: String,
        /// The out-of-range index.
        index: usize,
        /// The sweep's configuration count.
        total: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { context } => write!(f, "journal I/O error: {context}"),
            CheckpointError::Unencodable { detail } => {
                write!(f, "record not JSON-encodable: {detail}")
            }
            CheckpointError::ManifestMissing { dir } => {
                write!(f, "no checkpoint manifest in {dir} (nothing to resume)")
            }
            CheckpointError::ManifestInvalid { detail } => {
                write!(f, "unreadable checkpoint manifest: {detail}")
            }
            CheckpointError::JournalExists { dir } => {
                write!(f, "{dir} already holds a checkpoint journal (resume it, or use an empty directory)")
            }
            CheckpointError::ManifestMismatch { field, expected, found } => write!(
                f,
                "checkpoint belongs to a different sweep: {field} is {found}, expected {expected}"
            ),
            CheckpointError::CorruptRecord { segment, offset, detail } => {
                write!(f, "corrupt journal record in {segment} at byte {offset}: {detail}")
            }
            CheckpointError::IndexOutOfRange { segment, index, total } => write!(
                f,
                "journal record in {segment} names configuration {index} of a {total}-configuration sweep"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn io_err(op: &str, path: &Path, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io { context: format!("{op} {}: {e}", path.display()) }
}

fn sealed_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.log"))
}

fn open_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq:08}.open"))
}

fn encode_frame(body: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    frame.extend_from_slice(&u32::try_from(body.len()).expect("record exceeds u32 frame length").to_le_bytes());
    frame.extend_from_slice(&crc32(body).to_le_bytes());
    frame.extend_from_slice(body);
    frame
}

/// Writes `bytes` to `path` atomically: tmp file in the same directory,
/// flush + fsync, then rename over the destination.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    f.write_all(bytes).map_err(|e| io_err("write", &tmp, e))?;
    f.sync_data().map_err(|e| io_err("sync", &tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))
}

/// Deterministic crash injection for the journal writer, mirroring the
/// measurement layer's `FaultPlan`.
///
/// A crash fires on the `(after_appends + 1)`-th append: the writer emits
/// only the first [`torn_bytes`](CrashPlan::torn_bytes) bytes of that
/// record's frame (clamped so the frame is always torn, never complete),
/// then plays dead — every later append is silently dropped, exactly as if
/// the process had been killed at that instant. `torn_bytes = 0` is a clean
/// kill between records; a mid-header tear (`torn_bytes < 8`) exercises the
/// nastiest recovery path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Appends that complete durably before the crash fires.
    pub after_appends: usize,
    /// Bytes of the fatal record's frame that reach the disk.
    pub torn_bytes: usize,
}

/// Domain-separation tag xor'ed into the seed so crash draws never alias
/// the measurement noise or fault streams.
const CRASH_STREAM_TAG: u64 = 0xC4A5_11D0_57A1_1CED;

impl CrashPlan {
    /// Crash after exactly `after_appends` durable records, with no torn
    /// bytes (a clean kill between appends).
    pub fn kill_after(after_appends: usize) -> Self {
        Self { after_appends, torn_bytes: 0 }
    }

    /// Sets how many bytes of the fatal frame reach the disk.
    #[must_use]
    pub fn with_torn_bytes(mut self, torn_bytes: usize) -> Self {
        self.torn_bytes = torn_bytes;
        self
    }

    /// A crash point drawn from a domain-separated SplitMix64 stream over
    /// `seed`: the kill fires somewhere in the first `max_appends` appends,
    /// and up to 16 bytes of the fatal frame are torn onto disk — enough to
    /// cover clean kills, mid-header tears, and mid-body tears, while
    /// staying below any real frame's length.
    pub fn from_seed(seed: u64, max_appends: usize) -> Self {
        assert!(max_appends >= 1, "need at least one append to crash in");
        let mut state = seed ^ CRASH_STREAM_TAG;
        let after = (splitmix64(&mut state) % max_appends as u64) as usize;
        let torn = (splitmix64(&mut state) % 17) as usize;
        Self { after_appends: after, torn_bytes: torn }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The append side of the journal: an active tail segment, group-committed
/// every [`DEFAULT_SYNC_EVERY`] appends, sealed by atomic rename at
/// capacity.
#[derive(Debug)]
pub struct JournalWriter {
    dir: PathBuf,
    tail: Option<File>,
    tail_seq: u64,
    tail_records: usize,
    segment_capacity: usize,
    sync_every: usize,
    unsynced: usize,
    appends: usize,
    crash: Option<CrashPlan>,
    dead: bool,
    lost: usize,
}

impl JournalWriter {
    fn new(dir: PathBuf, next_seq: u64) -> Self {
        Self {
            dir,
            tail: None,
            tail_seq: next_seq,
            tail_records: 0,
            segment_capacity: DEFAULT_SEGMENT_CAPACITY,
            sync_every: DEFAULT_SYNC_EVERY,
            unsynced: 0,
            appends: 0,
            crash: None,
            dead: false,
            lost: 0,
        }
    }

    /// Appends this writer has accepted (durable no later than the next
    /// group-commit sync or seal).
    pub fn appended(&self) -> usize {
        self.appends
    }

    /// Appends dropped because an injected crash already fired.
    pub fn lost(&self) -> usize {
        self.lost
    }

    /// True once an injected crash has fired.
    pub fn crashed(&self) -> bool {
        self.dead
    }

    /// Overrides the records-per-segment capacity (tests use tiny segments
    /// to exercise rotation).
    pub fn set_segment_capacity(&mut self, capacity: usize) {
        assert!(capacity >= 1, "segment capacity must be at least 1");
        self.segment_capacity = capacity;
    }

    /// Overrides the group-commit interval: the tail is fsynced every
    /// `every` appends. `1` restores per-record durability; the default
    /// ([`DEFAULT_SYNC_EVERY`]) bounds what a power cut can cost while
    /// keeping journal overhead negligible next to the measurements.
    pub fn set_sync_every(&mut self, every: usize) {
        assert!(every >= 1, "sync interval must be at least 1");
        self.sync_every = every;
    }

    /// Arms deterministic crash injection (test/bench harness only).
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.crash = Some(plan);
    }

    /// Appends one record. Returns `true` if the record is durable, `false`
    /// if an injected crash swallowed it.
    pub fn append<T: Serialize>(
        &mut self,
        record: &JournalRecord<T>,
    ) -> Result<bool, CheckpointError> {
        if self.dead {
            self.lost += 1;
            return Ok(false);
        }
        let body = serde_json::to_string(record)
            .map_err(|e| CheckpointError::Unencodable { detail: e.to_string() })?;
        let frame = encode_frame(body.as_bytes());
        if self.tail.is_none() {
            let path = open_path(&self.dir, self.tail_seq);
            let f = File::create(&path).map_err(|e| io_err("create", &path, e))?;
            self.tail = Some(f);
            self.tail_records = 0;
        }
        let path = open_path(&self.dir, self.tail_seq);
        let tail = self.tail.as_mut().expect("tail opened above");
        if let Some(plan) = self.crash {
            if self.appends == plan.after_appends {
                // The injected kill: a prefix of the frame reaches the disk
                // (clamped so the frame is always torn), then the writer
                // plays dead.
                let torn = plan.torn_bytes.min(frame.len() - 1);
                tail.write_all(&frame[..torn]).map_err(|e| io_err("append", &path, e))?;
                tail.sync_data().map_err(|e| io_err("sync", &path, e))?;
                self.dead = true;
                self.lost += 1;
                return Ok(false);
            }
        }
        tail.write_all(&frame).map_err(|e| io_err("append", &path, e))?;
        self.appends += 1;
        self.tail_records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            tail.sync_data().map_err(|e| io_err("sync", &path, e))?;
            self.unsynced = 0;
        }
        if self.tail_records >= self.segment_capacity {
            self.seal_tail()?;
        }
        Ok(true)
    }

    fn seal_tail(&mut self) -> Result<(), CheckpointError> {
        if let Some(f) = self.tail.take() {
            f.sync_data().map_err(|e| io_err("sync", &open_path(&self.dir, self.tail_seq), e))?;
            drop(f);
            let from = open_path(&self.dir, self.tail_seq);
            let to = sealed_path(&self.dir, self.tail_seq);
            fs::rename(&from, &to).map_err(|e| io_err("seal", &from, e))?;
            self.tail_seq += 1;
            self.tail_records = 0;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Seals the tail (if it holds records) or removes it (if empty). Call
    /// when the sweep completes; a crash before `finish` merely leaves a
    /// clean tail for resume to seal.
    pub fn finish(&mut self) -> Result<(), CheckpointError> {
        if self.dead {
            return Ok(());
        }
        if self.tail_records > 0 {
            self.seal_tail()
        } else if let Some(f) = self.tail.take() {
            drop(f);
            let path = open_path(&self.dir, self.tail_seq);
            fs::remove_file(&path).map_err(|e| io_err("remove", &path, e))
        } else {
            Ok(())
        }
    }
}

/// Counters describing what a replay found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplayStats {
    /// Valid records replayed (after first-wins deduplication).
    pub records: usize,
    /// Duplicate records skipped (a record for an index already replayed).
    pub duplicates: usize,
    /// Sealed segments read.
    pub sealed_segments: usize,
    /// Bytes of a torn trailing frame dropped from the tail (0 on a clean
    /// shutdown).
    pub torn_tail_bytes: u64,
}

/// The result of replaying a journal directory.
#[derive(Debug)]
pub struct Replay<T> {
    /// The manifest the journal was written under.
    pub manifest: SweepManifest,
    /// Replayed outcomes, keyed by configuration index (deduplicated
    /// first-wins; in journal order, which is *not* enumeration order).
    pub outcomes: Vec<(usize, SweepOutcome<T>)>,
    /// What the replay found.
    pub stats: ReplayStats,
    /// The sequence number the next segment should use.
    next_seq: u64,
    /// A tail segment needing repair: `(seq, clean_prefix_len, records)`.
    tail: Option<(u64, u64, usize)>,
}

struct SegmentScan<T> {
    records: Vec<JournalRecord<T>>,
    clean_len: u64,
}

/// Scans one segment's bytes. `strict` (sealed segments) turns any torn
/// trailing frame into [`CheckpointError::CorruptRecord`]; tolerant mode
/// (the tail) stops at the torn frame and reports the clean prefix length.
/// A CRC failure over a fully-present body is corruption in both modes.
fn scan_segment<T: DeserializeOwned>(
    bytes: &[u8],
    name: &str,
    strict: bool,
) -> Result<SegmentScan<T>, CheckpointError> {
    let corrupt = |pos: usize, detail: String| CheckpointError::CorruptRecord {
        segment: name.to_string(),
        offset: pos as u64,
        detail,
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(SegmentScan { records, clean_len: pos as u64 });
        }
        if remaining < FRAME_HEADER_LEN {
            if strict {
                return Err(corrupt(pos, format!("torn frame header ({remaining} byte(s))")));
            }
            return Ok(SegmentScan { records, clean_len: pos as u64 });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"))
            as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > remaining - FRAME_HEADER_LEN {
            if strict {
                return Err(corrupt(
                    pos,
                    format!(
                        "torn frame body ({} of {len} byte(s) present)",
                        remaining - FRAME_HEADER_LEN
                    ),
                ));
            }
            return Ok(SegmentScan { records, clean_len: pos as u64 });
        }
        let body = &bytes[pos + FRAME_HEADER_LEN..pos + FRAME_HEADER_LEN + len];
        // The body is fully present, so a checksum failure is bit-rot, not
        // truncation — corruption in both modes.
        let actual = crc32(body);
        if actual != crc {
            return Err(corrupt(
                pos,
                format!("CRC mismatch (stored {crc:08x}, computed {actual:08x})"),
            ));
        }
        let text = std::str::from_utf8(body)
            .map_err(|e| corrupt(pos, format!("record body is not UTF-8: {e}")))?;
        let record: JournalRecord<T> = serde_json::from_str(text)
            .map_err(|e| corrupt(pos, format!("record body is not a journal record: {e}")))?;
        records.push(record);
        pos += FRAME_HEADER_LEN + len;
    }
}

/// Parses `seg-NNNNNNNN.{log,open}` names; anything else (the manifest,
/// `*.tmp` leftovers from interrupted renames) is ignored.
fn segment_seq(name: &str, extension: &str) -> Option<u64> {
    let rest = name.strip_prefix("seg-")?.strip_suffix(extension)?;
    if rest.len() != 8 || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse().ok()
}

/// Replays a journal directory: manifest, every sealed segment (strict),
/// and the tail (tolerant). Never panics on damaged input — every failure
/// mode is a typed [`CheckpointError`].
pub fn replay<T: DeserializeOwned>(dir: &Path) -> Result<Replay<T>, CheckpointError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest_text = match fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(CheckpointError::ManifestMissing { dir: dir.display().to_string() })
        }
        Err(e) => return Err(io_err("read", &manifest_path, e)),
    };
    let manifest: SweepManifest = serde_json::from_str(&manifest_text)
        .map_err(|e| CheckpointError::ManifestInvalid { detail: e.to_string() })?;
    if manifest.format_version != JOURNAL_FORMAT_VERSION {
        return Err(CheckpointError::ManifestMismatch {
            field: "format_version",
            expected: JOURNAL_FORMAT_VERSION.to_string(),
            found: manifest.format_version.to_string(),
        });
    }

    let mut sealed: Vec<u64> = Vec::new();
    let mut tails: Vec<u64> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir", dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = segment_seq(name, ".log") {
            sealed.push(seq);
        } else if let Some(seq) = segment_seq(name, ".open") {
            tails.push(seq);
        }
    }
    sealed.sort_unstable();
    tails.sort_unstable();
    if tails.len() > 1 {
        return Err(CheckpointError::CorruptRecord {
            segment: open_path(dir, tails[0]).display().to_string(),
            offset: 0,
            detail: format!("{} open tail segments (at most one is valid)", tails.len()),
        });
    }
    // Sealed segments must be the contiguous run 0..n: a hole means a whole
    // segment of records vanished, which replay must not paper over.
    for (expect, &seq) in sealed.iter().enumerate() {
        if seq != expect as u64 {
            return Err(CheckpointError::CorruptRecord {
                segment: sealed_path(dir, seq).display().to_string(),
                offset: 0,
                detail: format!("missing sealed segment seg-{expect:08}.log"),
            });
        }
    }

    let mut outcomes: Vec<(usize, SweepOutcome<T>)> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stats = ReplayStats::default();
    let mut absorb = |records: Vec<JournalRecord<T>>,
                      segment: &Path|
     -> Result<(), CheckpointError> {
        for record in records {
            if record.index >= manifest.total_configs {
                return Err(CheckpointError::IndexOutOfRange {
                    segment: segment.display().to_string(),
                    index: record.index,
                    total: manifest.total_configs,
                });
            }
            if seen.insert(record.index) {
                stats.records += 1;
                outcomes.push((record.index, record.outcome));
            } else {
                stats.duplicates += 1;
            }
        }
        Ok(())
    };

    for &seq in &sealed {
        let path = sealed_path(dir, seq);
        let bytes = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let scan = scan_segment::<T>(&bytes, &path.display().to_string(), true)?;
        absorb(scan.records, &path)?;
        stats.sealed_segments += 1;
    }

    let mut next_seq = sealed.len() as u64;
    let mut tail = None;
    if let Some(&seq) = tails.first() {
        if seq != next_seq {
            return Err(CheckpointError::CorruptRecord {
                segment: open_path(dir, seq).display().to_string(),
                offset: 0,
                detail: format!(
                    "tail sequence {seq} does not follow {} sealed segment(s)",
                    sealed.len()
                ),
            });
        }
        let path = open_path(dir, seq);
        let bytes = fs::read(&path).map_err(|e| io_err("read", &path, e))?;
        let scan = scan_segment::<T>(&bytes, &path.display().to_string(), false)?;
        stats.torn_tail_bytes = bytes.len() as u64 - scan.clean_len;
        let records = scan.records.len();
        absorb(scan.records, &path)?;
        tail = Some((seq, scan.clean_len, records));
        next_seq = seq + 1;
    }

    Ok(Replay { manifest, outcomes, stats, next_seq, tail })
}

/// A sweep's checkpoint: the replayed history plus an armed writer for the
/// configurations still to run. Consumed by
/// [`run_measured_with_retry_resumable`](crate::parallel::SweepExecutor::run_measured_with_retry_resumable),
/// which takes it by value so one checkpoint can never journal two sweeps.
#[derive(Debug)]
pub struct SweepCheckpoint<T> {
    manifest: SweepManifest,
    pub(crate) writer: JournalWriter,
    pub(crate) replayed: Vec<(usize, SweepOutcome<T>)>,
    stats: ReplayStats,
}

impl<T: Serialize + DeserializeOwned> SweepCheckpoint<T> {
    /// Starts a fresh journal in `dir` (created if absent), writing
    /// `manifest` atomically. Refuses to clobber an existing journal.
    pub fn fresh(dir: &Path, manifest: SweepManifest) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(CheckpointError::JournalExists { dir: dir.display().to_string() });
        }
        let text = serde_json::to_string_pretty(&manifest)
            .map_err(|e| CheckpointError::Unencodable { detail: e.to_string() })?;
        write_atomic(&manifest_path, text.as_bytes())?;
        Ok(Self {
            manifest,
            writer: JournalWriter::new(dir.to_path_buf(), 0),
            replayed: Vec::new(),
            stats: ReplayStats::default(),
        })
    }

    /// Resumes the journal in `dir`: replays every durable record, repairs
    /// a torn tail (its clean prefix is sealed, the torn bytes dropped),
    /// and readies a writer for the remaining configurations. `expected`
    /// must match the on-disk manifest field-for-field.
    pub fn resume(dir: &Path, expected: &SweepManifest) -> Result<Self, CheckpointError> {
        let replay = replay::<T>(dir)?;
        for (field, exp, found) in [
            ("sweep_seed", expected.sweep_seed.to_string(), replay.manifest.sweep_seed.to_string()),
            (
                "total_configs",
                expected.total_configs.to_string(),
                replay.manifest.total_configs.to_string(),
            ),
            (
                "max_attempts",
                expected.max_attempts.to_string(),
                replay.manifest.max_attempts.to_string(),
            ),
            ("workload", expected.workload.clone(), replay.manifest.workload.clone()),
        ] {
            if exp != found {
                return Err(CheckpointError::ManifestMismatch { field, expected: exp, found });
            }
        }

        let mut next_seq = replay.next_seq;
        if let Some((seq, clean_len, records)) = replay.tail {
            // Repair: re-seal the tail's clean prefix through the same
            // tmp + rename protocol, then drop the torn original. If the
            // tail held no complete record it is simply removed and its
            // sequence number reused.
            let tail_path = open_path(dir, seq);
            if records > 0 {
                let bytes = fs::read(&tail_path).map_err(|e| io_err("read", &tail_path, e))?;
                let clean = &bytes[..clean_len as usize];
                write_atomic(&sealed_path(dir, seq), clean)?;
                next_seq = seq + 1;
            } else {
                next_seq = seq;
            }
            fs::remove_file(&tail_path).map_err(|e| io_err("remove", &tail_path, e))?;
        }

        Ok(Self {
            manifest: replay.manifest,
            writer: JournalWriter::new(dir.to_path_buf(), next_seq),
            replayed: replay.outcomes,
            stats: replay.stats,
        })
    }

    /// [`resume`](Self::resume) if `dir` holds a journal, else
    /// [`fresh`](Self::fresh) — the behavior behind `repro --checkpoint DIR
    /// --resume`.
    pub fn resume_or_fresh(
        dir: &Path,
        manifest: SweepManifest,
    ) -> Result<Self, CheckpointError> {
        if dir.join(MANIFEST_FILE).exists() {
            Self::resume(dir, &manifest)
        } else {
            Self::fresh(dir, manifest)
        }
    }

    /// The manifest this checkpoint was opened under.
    pub fn manifest(&self) -> &SweepManifest {
        &self.manifest
    }

    /// Outcomes replayed from the journal at open (empty for a fresh one).
    pub fn replayed(&self) -> &[(usize, SweepOutcome<T>)] {
        &self.replayed
    }

    /// Replay counters from open.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Arms deterministic crash injection on the writer (test/bench
    /// harness only).
    pub fn arm_crash(&mut self, plan: CrashPlan) {
        self.writer.arm_crash(plan);
    }

    /// Direct access to the journal writer — the escape hatch the
    /// truncation/corruption harnesses use to author journals record by
    /// record without running a sweep.
    pub fn writer_mut(&mut self) -> &mut JournalWriter {
        &mut self.writer
    }

    /// Overrides the writer's records-per-segment capacity.
    pub fn set_segment_capacity(&mut self, capacity: usize) {
        self.writer.set_segment_capacity(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_journal(label: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "enprop-ckpt-unit-{}-{label}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(total: usize) -> SweepManifest {
        SweepManifest::new(42, total, 3, "unit-test")
    }

    fn record(index: usize, value: f64) -> JournalRecord<f64> {
        JournalRecord { index, outcome: SweepOutcome::Ok { point: value, attempts: 1 } }
    }

    #[test]
    fn crc32_matches_published_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_round_trips_records() {
        let dir = temp_journal("roundtrip");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(8)).unwrap();
        for i in 0..8 {
            assert!(ckpt.writer.append(&record(i, i as f64 * 1.5)).unwrap());
        }
        ckpt.writer.finish().unwrap();
        let back = SweepCheckpoint::<f64>::resume(&dir, &manifest(8)).unwrap();
        assert_eq!(back.stats().records, 8);
        assert_eq!(back.stats().torn_tail_bytes, 0);
        let mut got: Vec<_> = back.replayed().to_vec();
        got.sort_by_key(|(i, _)| *i);
        for (i, (index, outcome)) in got.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*outcome, SweepOutcome::Ok { point: i as f64 * 1.5, attempts: 1 });
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_seal_at_capacity() {
        let dir = temp_journal("rotate");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(10)).unwrap();
        ckpt.set_segment_capacity(4);
        for i in 0..10 {
            ckpt.writer.append(&record(i, 0.0)).unwrap();
        }
        ckpt.writer.finish().unwrap();
        // 4 + 4 + 2 records → three sealed segments, no open tail.
        for seq in 0..3u64 {
            assert!(sealed_path(&dir, seq).exists(), "seg {seq} not sealed");
        }
        assert!(!open_path(&dir, 2).exists());
        let r = replay::<f64>(&dir).unwrap();
        assert_eq!(r.stats.sealed_segments, 3);
        assert_eq!(r.stats.records, 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_refuses_an_existing_journal() {
        let dir = temp_journal("exists");
        let _ = SweepCheckpoint::<f64>::fresh(&dir, manifest(4)).unwrap();
        let err = SweepCheckpoint::<f64>::fresh(&dir, manifest(4)).unwrap_err();
        assert!(matches!(err, CheckpointError::JournalExists { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_a_foreign_manifest() {
        let dir = temp_journal("mismatch");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(4)).unwrap();
        ckpt.writer.append(&record(0, 1.0)).unwrap();
        ckpt.writer.finish().unwrap();
        let mut other = manifest(4);
        other.sweep_seed = 43;
        let err = SweepCheckpoint::<f64>::resume(&dir, &other).unwrap_err();
        assert!(
            matches!(err, CheckpointError::ManifestMismatch { field: "sweep_seed", .. }),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_tears_the_tail_and_resume_repairs_it() {
        let dir = temp_journal("crash");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(8)).unwrap();
        ckpt.arm_crash(CrashPlan::kill_after(3).with_torn_bytes(11));
        for i in 0..8 {
            let durable = ckpt.writer.append(&record(i, i as f64)).unwrap();
            assert_eq!(durable, i < 3, "append {i}");
        }
        assert!(ckpt.writer.crashed());
        assert_eq!(ckpt.writer.appended(), 3);
        assert_eq!(ckpt.writer.lost(), 5);
        drop(ckpt); // the dead process never reaches finish()

        let back = SweepCheckpoint::<f64>::resume(&dir, &manifest(8)).unwrap();
        assert_eq!(back.stats().records, 3);
        assert!(back.stats().torn_tail_bytes > 0, "no torn bytes recorded");
        let mut indices: Vec<_> = back.replayed().iter().map(|(i, _)| *i).collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2]);
        // The torn tail is gone; its clean prefix is sealed.
        assert!(!open_path(&dir, 0).exists());
        assert!(sealed_path(&dir, 0).exists());
        // The repaired journal keeps accepting records.
        let mut back = back;
        assert!(back.writer.append(&record(3, 3.0)).unwrap());
        back.writer.finish().unwrap();
        let last = replay::<f64>(&dir).unwrap();
        assert_eq!(last.stats.records, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clean_kill_between_records_loses_nothing_durable() {
        let dir = temp_journal("cleankill");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(8)).unwrap();
        ckpt.arm_crash(CrashPlan::kill_after(5));
        for i in 0..8 {
            ckpt.writer.append(&record(i, i as f64)).unwrap();
        }
        drop(ckpt);
        let back = SweepCheckpoint::<f64>::resume(&dir, &manifest(8)).unwrap();
        assert_eq!(back.stats().records, 5);
        assert_eq!(back.stats().torn_tail_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_indices_replay_first_wins() {
        let dir = temp_journal("dupes");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(4)).unwrap();
        ckpt.writer.append(&record(1, 10.0)).unwrap();
        ckpt.writer.append(&record(1, 99.0)).unwrap();
        ckpt.writer.finish().unwrap();
        let r = replay::<f64>(&dir).unwrap();
        assert_eq!(r.stats.records, 1);
        assert_eq!(r.stats.duplicates, 1);
        assert_eq!(r.outcomes, vec![(1, SweepOutcome::Ok { point: 10.0, attempts: 1 })]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_a_typed_corruption_error() {
        let dir = temp_journal("bitflip");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(4)).unwrap();
        ckpt.writer.append(&record(0, 1.0)).unwrap();
        ckpt.writer.append(&record(1, 2.0)).unwrap();
        ckpt.writer.finish().unwrap();
        let path = sealed_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = replay::<f64>(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::CorruptRecord { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let dir = temp_journal("range");
        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(2)).unwrap();
        ckpt.writer.append(&record(7, 1.0)).unwrap();
        ckpt.writer.finish().unwrap();
        let err = replay::<f64>(&dir).unwrap_err();
        assert!(
            matches!(err, CheckpointError::IndexOutOfRange { index: 7, total: 2, .. }),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_and_missing_segment_are_typed() {
        let dir = temp_journal("missing");
        let err = replay::<f64>(&dir.join("nowhere")).unwrap_err();
        assert!(matches!(err, CheckpointError::ManifestMissing { .. }), "{err}");

        let mut ckpt = SweepCheckpoint::<f64>::fresh(&dir, manifest(8)).unwrap();
        ckpt.set_segment_capacity(2);
        for i in 0..6 {
            ckpt.writer.append(&record(i, 0.0)).unwrap();
        }
        ckpt.writer.finish().unwrap();
        fs::remove_file(sealed_path(&dir, 1)).unwrap();
        let err = replay::<f64>(&dir).unwrap_err();
        assert!(matches!(err, CheckpointError::CorruptRecord { .. }), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_plan_from_seed_is_deterministic_and_in_range() {
        for seed in 0..64u64 {
            let a = CrashPlan::from_seed(seed, 100);
            let b = CrashPlan::from_seed(seed, 100);
            assert_eq!(a, b);
            assert!(a.after_appends < 100);
            assert!(a.torn_bytes <= 16);
        }
        // The stream is domain-separated: different seeds move the plan.
        let distinct: HashSet<usize> =
            (0..64u64).map(|s| CrashPlan::from_seed(s, 1000).after_appends).collect();
        assert!(distinct.len() > 32, "crash points barely vary: {}", distinct.len());
    }
}
