//! Exact linear algebra for cross-config fitting.
//!
//! The parametric analyzer fits per-family coefficients and per-launch
//! event counts as integer-coefficient polynomials over fixed monomial
//! bases. Fitting is done with exact rational Gauss–Jordan elimination
//! (`i128` fractions, reduced at every step) over an overdetermined
//! system: a fit exists only if *every* sample row is satisfied exactly
//! and the solved coefficients are integers — anything else is reported
//! as a fallback, never rounded.

/// A reduced rational with positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Q {
    n: i128,
    d: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Q {
    fn int(n: i128) -> Q {
        Q { n, d: 1 }
    }

    fn reduce(n: i128, d: i128) -> Q {
        debug_assert!(d != 0);
        let g = gcd(n, d).max(1);
        let s = if d < 0 { -1 } else { 1 };
        Q { n: s * n / g, d: s * d / g }
    }

    fn is_zero(self) -> bool {
        self.n == 0
    }

    fn sub(self, o: Q) -> Q {
        Q::reduce(self.n * o.d - o.n * self.d, self.d * o.d)
    }

    fn mul(self, o: Q) -> Q {
        Q::reduce(self.n * o.n, self.d * o.d)
    }

    fn div(self, o: Q) -> Q {
        debug_assert!(o.n != 0);
        Q::reduce(self.n * o.d, self.d * o.n)
    }
}

/// Fits `y = Σ coef_j · basis_j` exactly over the sample rows
/// `(basis values, y)`. Returns the integer coefficient vector, or
/// `None` when the system is rank-deficient (ambiguous extrapolation),
/// inconsistent (no exact fit), or the exact solution is non-integral.
pub fn fit_int_poly(rows: &[(Vec<i128>, i128)], nbasis: usize) -> Option<Vec<i128>> {
    if rows.len() < nbasis {
        return None;
    }
    // Augmented matrix over Q.
    let mut m: Vec<Vec<Q>> = rows
        .iter()
        .map(|(b, y)| {
            debug_assert_eq!(b.len(), nbasis);
            b.iter().map(|&v| Q::int(v)).chain(std::iter::once(Q::int(*y))).collect()
        })
        .collect();

    let nrows = m.len();
    let mut pivot_rows = Vec::with_capacity(nbasis);
    let mut used = vec![false; nrows];
    for col in 0..nbasis {
        // Choose an unused row with a nonzero entry in this column.
        let Some(pr) = (0..nrows).find(|&r| !used[r] && !m[r][col].is_zero()) else {
            return None; // rank-deficient: this basis column is ambiguous
        };
        used[pr] = true;
        pivot_rows.push((col, pr));
        let piv = m[pr][col];
        for cell in m[pr][col..=nbasis].iter_mut() {
            *cell = cell.div(piv);
        }
        let piv_row = m[pr].clone();
        for (r, row) in m.iter_mut().enumerate().take(nrows) {
            if r != pr && !row[col].is_zero() {
                let f = row[col];
                for (cell, p) in row[col..=nbasis].iter_mut().zip(&piv_row[col..=nbasis]) {
                    *cell = cell.sub(p.mul(f));
                }
            }
        }
    }
    // Consistency: every non-pivot row must have reduced to zero.
    for r in 0..nrows {
        if !used[r] && !m[r][nbasis].is_zero() {
            return None;
        }
    }
    // Read off the (unique) solution; require integrality.
    let mut coefs = vec![0i128; nbasis];
    for &(col, pr) in &pivot_rows {
        let v = m[pr][nbasis];
        if v.d != 1 {
            return None;
        }
        coefs[col] = v.n;
    }
    // Re-verify on the original rows (belt and braces: the elimination
    // above already guarantees this, but the check is cheap).
    for (b, y) in rows {
        let s: i128 = b.iter().zip(&coefs).map(|(v, c)| v * c).sum();
        if s != *y {
            return None;
        }
    }
    Some(coefs)
}

/// Evaluates a fitted polynomial at a basis-value row.
pub fn eval_poly(coefs: &[i128], basis: &[i128]) -> i128 {
    coefs.iter().zip(basis).map(|(c, b)| c * b).sum()
}

/// Floor division on `i128` (rounds toward negative infinity).
pub fn div_floor(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division on `i128` (rounds toward positive infinity).
pub fn div_ceil(a: i128, b: i128) -> i128 {
    debug_assert!(b != 0);
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Extended GCD: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`,
/// `g ≥ 0`.
pub fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        if a < 0 {
            (-a, -1, 0)
        } else {
            (a, 1, 0)
        }
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_integer_polynomials() {
        // y = 3 + 2·a + 5·a·b over a few (a, b) points.
        let pts = [(1i128, 1i128), (2, 1), (3, 2), (1, 4), (5, 2), (4, 4)];
        let rows: Vec<(Vec<i128>, i128)> = pts
            .iter()
            .map(|&(a, b)| (vec![1, a, a * b], 3 + 2 * a + 5 * a * b))
            .collect();
        assert_eq!(fit_int_poly(&rows, 3), Some(vec![3, 2, 5]));
    }

    #[test]
    fn rejects_inconsistent_and_rank_deficient_systems() {
        // Inconsistent: same basis row, different y.
        let rows = vec![(vec![1, 2], 5), (vec![1, 2], 6), (vec![1, 3], 7)];
        assert_eq!(fit_int_poly(&rows, 2), None);
        // Rank-deficient: second column always zero.
        let rows = vec![(vec![1, 0], 5), (vec![2, 0], 10), (vec![3, 0], 15)];
        assert_eq!(fit_int_poly(&rows, 2), None);
    }

    #[test]
    fn rejects_non_integer_solutions() {
        // y = a/2 — exact but fractional.
        let rows = vec![(vec![2i128], 1i128), (vec![4], 2)];
        assert_eq!(fit_int_poly(&rows, 1), None);
    }

    #[test]
    fn floor_ceil_ext_gcd() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        let (g, x, y) = ext_gcd(12, 18);
        assert_eq!(g, 6);
        assert_eq!(12 * x + 18 * y, 6);
        let (g, x, y) = ext_gcd(-4, 6);
        assert_eq!(g, 2);
        assert_eq!(-4 * x + 6 * y, 2);
    }
}
