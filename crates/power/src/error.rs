//! Typed errors of the measurement pipeline.
//!
//! Real meters fail: RAPL counters report stale ranges, wall-socket meters
//! drop samples mid-run, transient serial hiccups lose whole readings, and
//! idle baselines drift between capture and run. The seed code answered
//! every one of those with a panic (`expect("baseline window too short")`,
//! a debug-underflow in `RaplDomain::delta`), which turns one bad reading
//! into an aborted 10k-configuration sweep. [`MeasureError`] names each
//! failure mode so sessions, runners, and sweep drivers can propagate,
//! retry, and finally record a failure instead of dying on it.

use enprop_units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Everything that can go wrong between "run the app" and "here is its
/// dynamic energy".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MeasureError {
    /// The baseline-capture window is shorter than the meter can resolve
    /// (fewer than two samples, or shorter than one sample period).
    BaselineTooShort {
        /// The requested capture window.
        window: Seconds,
        /// The meter's sampling period.
        sample_period: Seconds,
    },
    /// A measurement was requested before any idle baseline was captured
    /// (a [`cold`](crate::session::EnergySession::cold) session that was
    /// never successfully reseeded, or whose last reseed failed).
    BaselineNotCaptured,
    /// The meter lost the whole reading (serial timeout, dropped
    /// connection, EAGAIN from the counter file) — worth retrying.
    TransientReadFailure,
    /// So many samples were dropped that the trace cannot be integrated
    /// (fewer than two samples survived).
    TraceTooShort {
        /// Samples that did survive.
        samples: usize,
    },
    /// A sample is physically implausible — the signature of a wrapped or
    /// stale hardware counter leaking through as a bogus power reading.
    ImplausibleSample {
        /// Timestamp of the offending sample.
        at: Seconds,
        /// The implausible reading.
        power: Watts,
    },
    /// A RAPL counter reading exceeds the domain's advertised
    /// `max_energy_range_uj` — the range file is stale or misreported, so
    /// wraparound correction is meaningless.
    CounterRangeAnomaly {
        /// Domain name (e.g. `package-0`).
        domain: String,
        /// The reading that exceeded the range.
        reading_uj: u64,
        /// The advertised wraparound range.
        max_energy_range_uj: u64,
    },
    /// An I/O error from a hardware counter interface, carried as text so
    /// the error stays cloneable and comparable.
    Io {
        /// Human-readable context (`read energy_uj: ...`).
        context: String,
    },
    /// One measurement attempt overran its per-config watchdog budget. The
    /// sweep's retry policy converts hung or pathologically slow configs
    /// into this error instead of letting one config stall the campaign.
    DeadlineExceeded {
        /// The per-attempt wall-clock budget that was in force.
        budget: Seconds,
        /// How long the attempt actually took.
        elapsed: Seconds,
    },
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::BaselineTooShort { window, sample_period } => write!(
                f,
                "baseline window {window} is too short for a meter sampling every {sample_period}"
            ),
            MeasureError::BaselineNotCaptured => {
                write!(f, "no idle baseline captured; reseed the session before measuring")
            }
            MeasureError::TransientReadFailure => {
                write!(f, "transient meter read failure (reading lost)")
            }
            MeasureError::TraceTooShort { samples } => {
                write!(f, "power trace too short to integrate ({samples} sample(s) survived)")
            }
            MeasureError::ImplausibleSample { at, power } => {
                write!(f, "implausible sample {power} at t = {at} (wrapped/stale counter?)")
            }
            MeasureError::CounterRangeAnomaly { domain, reading_uj, max_energy_range_uj } => {
                write!(
                    f,
                    "RAPL domain {domain}: reading {reading_uj} uJ exceeds advertised range \
                     {max_energy_range_uj} uJ (stale max_energy_range_uj?)"
                )
            }
            MeasureError::Io { context } => write!(f, "counter I/O error: {context}"),
            MeasureError::DeadlineExceeded { budget, elapsed } => {
                write!(f, "measurement took {elapsed}, exceeding the {budget} deadline budget")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

impl From<std::io::Error> for MeasureError {
    fn from(e: std::io::Error) -> Self {
        MeasureError::Io { context: e.to_string() }
    }
}

impl MeasureError {
    /// True for failures that a bounded re-measure has a real chance of
    /// clearing (the retry policy's filter is deliberately permissive:
    /// everything except programmer-level misuse is worth one more try).
    pub fn is_transient(&self) -> bool {
        !matches!(self, MeasureError::BaselineTooShort { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = MeasureError::BaselineTooShort {
            window: Seconds(0.5),
            sample_period: Seconds(1.0),
        };
        let s = e.to_string();
        assert!(s.contains("baseline window"), "{s}");
        let e = MeasureError::CounterRangeAnomaly {
            domain: "package-0".into(),
            reading_uj: 10,
            max_energy_range_uj: 5,
        };
        assert!(e.to_string().contains("package-0"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::TimedOut, "serial timeout");
        let e: MeasureError = io.into();
        assert!(matches!(e, MeasureError::Io { .. }));
        assert!(e.to_string().contains("serial timeout"));
    }

    #[test]
    fn transience_classification() {
        assert!(MeasureError::TransientReadFailure.is_transient());
        assert!(MeasureError::BaselineNotCaptured.is_transient());
        // A blown deadline is worth retrying: the next attempt reseeds and
        // may simply not hit the slow path again.
        assert!(MeasureError::DeadlineExceeded {
            budget: Seconds(0.1),
            elapsed: Seconds(0.5)
        }
        .is_transient());
        assert!(!MeasureError::BaselineTooShort {
            window: Seconds(0.0),
            sample_period: Seconds(1.0)
        }
        .is_transient());
    }

    #[test]
    fn errors_round_trip_through_json() {
        let e = MeasureError::ImplausibleSample { at: Seconds(3.0), power: Watts(1e9) };
        let json = serde_json::to_string(&e).unwrap();
        let back: MeasureError = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        let e = MeasureError::DeadlineExceeded { budget: Seconds(0.25), elapsed: Seconds(1.5) };
        let json = serde_json::to_string(&e).unwrap();
        let back: MeasureError = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
