//! The paper's headline claims, asserted against the regenerated
//! artifacts. One test per claim, quoting the paper.

use enprop_bench::figures;

/// "Multicore CPUs were experimentally found to violate both strong and
/// weak EP" and "the graph shows that for all three processors, the
/// dynamic energy is a complex non-linear function of work performed, and
/// therefore strong EP does not hold for them." (Fig. 1)
#[test]
fn fig1_strong_ep_violated_on_all_three_processors() {
    let series = figures::fig1::generate();
    assert_eq!(series.len(), 3);
    for s in series {
        assert!(!s.strong_ep.holds, "{}", s.processor);
    }
}

/// Fig. 2: "The top right plot shows a region … where dynamic energy
/// increases monotonically with the execution time" (BS 1–20), and the
/// BS 21–32 region offers a real trade-off.
#[test]
fn fig2_regions_behave_as_published() {
    let f = figures::fig2::generate();
    assert!(f.low_bs_time_energy_corr > 0.9, "{}", f.low_bs_time_energy_corr);
    assert!(f.high_bs_region.len() >= 2);
    assert!(f.global.best_pair().is_some());
}

/// Fig. 4: performance "is linear until the peak performance of 700
/// GFLOPs before plateauing", and dynamic power exhibits "a nonfunctional
/// relationship" with average CPU utilization.
#[test]
fn fig4_plateau_and_nonfunctional_power() {
    for f in figures::fig4::generate() {
        let (level, _) = f.plateau.expect("plateau detected");
        assert!((550.0..780.0).contains(&level), "{}: {level}", f.flavor);
        assert!(f.power_non_functional, "{}", f.flavor);
        assert!(!f.weak_ep.holds, "{}", f.flavor);
    }
}

/// Fig. 6: "The dynamic energies are highly non-additive for N=5120. The
/// non-additivity keeps decreasing before becoming zero for matrix sizes
/// exceeding N=15360" (P100; K40c threshold 10240).
#[test]
fn fig6_nonadditivity_decays_with_n() {
    let gpus = figures::fig6::generate();
    let k40 = gpus.iter().find(|g| g.gpu.contains("K40c")).unwrap();
    let p100 = gpus.iter().find(|g| g.gpu.contains("P100")).unwrap();
    assert!(k40.additive_from_n.unwrap() <= p100.additive_from_n.unwrap());
    for gpu in &gpus {
        let small = gpu.rows.iter().find(|r| r.n == 5120 && r.g == 4).unwrap();
        let large = gpu.rows.iter().find(|r| r.n == 18432 && r.g == 4).unwrap();
        assert!(small.nonadditivity > 3.0 * large.nonadditivity.max(1e-9), "{}", gpu.gpu);
    }
}

/// Fig. 7 / §V-B: "For this GPU [K40c], the global Pareto front consists
/// of only one point, signifying that the optimal solution for
/// performance is optimal for dynamic energy", with multi-point local
/// fronts ("the observed average and the maximum points in the local
/// Pareto fronts are four and five").
#[test]
fn fig7_k40c_singleton_global_multi_point_local() {
    for p in figures::fig7::generate() {
        assert!(p.global.is_singleton(), "N={}", p.n);
        assert_eq!(p.global_optimum_bs, 32, "N={}", p.n);
        assert!((3..=6).contains(&p.local.len()), "N={}: {}", p.n, p.local.len());
    }
}

/// Fig. 8 / §V-B: "For N=10240, there are three points in the global
/// Pareto front where allowing 11% performance degradation … provides 50%
/// dynamic energy saving."
#[test]
fn fig8_p100_three_point_front_with_headline_tradeoff() {
    let panels = figures::fig8::generate();
    let n10240 = &panels[0];
    assert_eq!(n10240.n, 10240);
    assert!((2..=3).contains(&n10240.global.len()), "{}", n10240.global.len());
    // The first non-trivial front point: ~11% degradation, ~50% savings.
    let t = &n10240.global.front[1];
    assert!((0.05..0.20).contains(&t.degradation), "degradation {}", t.degradation);
    assert!((0.35..0.70).contains(&t.savings), "savings {}", t.savings);
}

/// §III: "We show that dynamic energy increases in all situations when
/// there are differences in utilizations of the cores" — E₃ > E₂ > E₁ on
/// the whole admissible grid.
#[test]
fn theory_ordering_holds_everywhere() {
    assert!(figures::theory::generate().all_hold);
}

/// §I/§V: "the maximum dynamic energy savings are up to 18% while
/// tolerating a performance degradation of 7% for Nvidia K40c GPU and
/// (50%, 11%) respectively, for Nvidia P100 PCIe GPU." We assert the
/// qualitative ordering (P100 ≫ K40c) and that both offer real savings;
/// exact percentages are calibration-dependent (see EXPERIMENTS.md).
#[test]
fn headline_savings_ordering() {
    let gs = figures::headline::generate();
    let k40 = gs.iter().find(|g| g.gpu.contains("K40c")).unwrap();
    let p100 = gs.iter().find(|g| g.gpu.contains("P100")).unwrap();
    let (ks, _) = k40.max_savings.unwrap();
    let (ps, pd) = p100.max_savings.unwrap();
    assert!(ks > 0.03, "K40c savings {ks}");
    assert!(ps > 0.35, "P100 savings {ps}");
    assert!(ps > 2.0 * ks, "ordering: P100 {ps} vs K40c {ks}");
    assert!(pd < 0.25, "P100 degradation {pd}");
    // Front-size bookkeeping: K40c local fronts avg ~4; P100 global ~2.
    assert!(k40.avg_front_points > p100.avg_front_points);
}

/// Table I renders the platforms with the paper's published values.
#[test]
fn table1_values() {
    let r = figures::table1::render();
    for needle in ["2880 (745 MHz)", "3584 (1328 MHz)", "12", "30720 KB"] {
        assert!(r.contains(needle), "missing {needle}");
    }
}
