//! Bench + regeneration of Fig. 4 (CPU dynamic power and performance vs
//! average utilization at N = 17408, MKL and OpenBLAS).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::fig4;

fn bench(c: &mut Criterion) {
    println!("{}", fig4::render());
    let mut g = c.benchmark_group("fig4");
    g.sample_size(20);
    g.bench_function("generate", |b| b.iter(fig4::generate));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
