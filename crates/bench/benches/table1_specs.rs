//! Bench + regeneration of Table I (platform specifications).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::table1;

fn bench(c: &mut Criterion) {
    println!("{}", table1::render());
    c.bench_function("table1/generate", |b| b.iter(table1::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
