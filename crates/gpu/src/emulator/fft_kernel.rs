//! A CUDA-style shared-memory FFT kernel on the emulator — the executable
//! counterpart of the CUFFT workload in the paper's strong-EP study
//! (Fig. 1).
//!
//! One thread block transforms one row of the `rows × n` signal: the row
//! is staged into shared memory in bit-reversed order, `log₂ n` butterfly
//! stages run with a `__syncthreads` barrier between them (each of the
//! `n/2` threads owns one butterfly per stage), and the spectrum is
//! written back to global memory. Complex values are stored as
//! interleaved (re, im) doubles.
//!
//! On the phase interpreter the kernel is a three-step state machine —
//! bit-reversed *load*, one *butterfly* phase per stage, *store* — with
//! the stage length carried in per-thread state. The original closure
//! form survives in [`EmuRowFft::run_legacy`] for old-vs-new equivalence.

use super::exec::{
    run_grid, run_grid_monitored, run_grid_monitored_sampled, run_grid_unbatched, AccessSink,
    BatchCtx, BlockExit, BlockKernel, Dim2, PhaseCtx, PhaseOutcome, PhaseTrace, WavePlan,
};
use super::legacy;
use super::mem::{EmuEvents, EventCounters, GlobalMem};
use super::simd::SimdPath;

/// The emulated batched row FFT: `rows` independent transforms of length
/// `n` (a power of two ≥ 2), the row pass of a 2-D FFT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmuRowFft {
    /// Transform length (power of two ≥ 2).
    pub n: usize,
    /// Number of rows (thread blocks).
    pub rows: usize,
    wave: WavePlan,
    simd: SimdPath,
}

impl EmuRowFft {
    /// Creates the kernel. Panics unless `n` is a power of two ≥ 2. The
    /// batched phase bodies run on the widest SIMD tier the host supports
    /// ([`SimdPath::detect`]); pin a narrower tier with
    /// [`with_simd`](EmuRowFft::with_simd).
    pub fn new(n: usize, rows: usize) -> Self {
        assert!(n >= 2 && n.is_power_of_two(), "FFT length must be a power of two >= 2");
        assert!(rows >= 1, "need at least one row");
        Self { n, rows, wave: WavePlan::auto(), simd: SimdPath::detect() }
    }

    /// Overrides the block-wave width (tests; benchmarking).
    pub fn with_wave(mut self, wave: WavePlan) -> Self {
        self.wave = wave;
        self
    }

    /// Pins the batched phase bodies to a SIMD tier, clamped to what the
    /// host supports ([`SimdPath::pin`]). Every tier is bitwise-identical
    /// by contract.
    pub fn with_simd(mut self, path: SimdPath) -> Self {
        self.simd = path.pin();
        self
    }

    /// The SIMD tier the batched phase bodies run on.
    pub fn simd(&self) -> SimdPath {
        self.simd
    }

    /// Launches the kernel over `data`: `rows × n` complex values as
    /// interleaved doubles (`2 · rows · n` cells), transformed in place.
    /// Returns the launch's event counts.
    pub fn run(&self, data: &GlobalMem) -> EmuEvents {
        let (n, rows) = (self.n, self.rows);
        assert_eq!(data.len(), 2 * rows * n, "signal size mismatch");

        let events = EventCounters::new();
        let kernel = FftKernel { n, stages: n.trailing_zeros() as usize, simd: self.simd, data };
        run_grid(Dim2::new(1, rows), &kernel, &events, self.wave);
        events.snapshot()
    }

    /// [`run`](EmuRowFft::run) with the batched fast path disabled
    /// ([`run_grid_unbatched`]): every phase takes the per-thread scalar
    /// loop, exactly the pre-batching interpreter. The benchmark baseline
    /// and equivalence oracle; bitwise-identical to [`run`](EmuRowFft::run)
    /// by contract.
    pub fn run_unbatched(&self, data: &GlobalMem) -> EmuEvents {
        let (n, rows) = (self.n, self.rows);
        assert_eq!(data.len(), 2 * rows * n, "signal size mismatch");

        let events = EventCounters::new();
        let kernel = FftKernel { n, stages: n.trailing_zeros() as usize, simd: self.simd, data };
        run_grid_unbatched(Dim2::new(1, rows), &kernel, &events, self.wave);
        events.snapshot()
    }

    /// [`run_monitored`](EmuRowFft::run_monitored) with per-block sampling
    /// ([`run_grid_monitored_sampled`]): blocks selected by `select` run
    /// fully instrumented, the rest take the uninstrumented (batched) fast
    /// path. Results and event counts stay identical to an unmonitored
    /// run; only checker *coverage* is sampled.
    pub fn run_monitored_sampled<S: AccessSink>(
        &self,
        data: &GlobalMem,
        select: impl FnMut(usize, usize) -> bool,
        make_sink: impl FnMut(usize, usize) -> S,
        collect: impl FnMut(usize, usize, S, BlockExit),
    ) -> EmuEvents {
        let (n, rows) = (self.n, self.rows);
        assert_eq!(data.len(), 2 * rows * n, "signal size mismatch");

        let events = EventCounters::new();
        let kernel = FftKernel { n, stages: n.trailing_zeros() as usize, simd: self.simd, data };
        run_grid_monitored_sampled(Dim2::new(1, rows), &kernel, &events, select, make_sink, collect);
        events.snapshot()
    }

    /// Launches the kernel under instrumentation ([`run_grid_monitored`]):
    /// per-block sinks observe every access, blocks run serially for
    /// deterministic diagnostics, and each block's sink plus its
    /// [`BlockExit`] come back through `collect`. With an inert sink the
    /// results are bitwise-identical to [`run`](EmuRowFft::run).
    pub fn run_monitored<S: AccessSink>(
        &self,
        data: &GlobalMem,
        make_sink: impl FnMut(usize, usize) -> S,
        collect: impl FnMut(usize, usize, S, BlockExit),
    ) -> EmuEvents {
        let (n, rows) = (self.n, self.rows);
        assert_eq!(data.len(), 2 * rows * n, "signal size mismatch");

        let events = EventCounters::new();
        let kernel = FftKernel { n, stages: n.trailing_zeros() as usize, simd: self.simd, data };
        run_grid_monitored(Dim2::new(1, rows), &kernel, &events, make_sink, collect);
        events.snapshot()
    }

    /// Launches the kernel on the retired OS-thread engine
    /// ([`super::legacy`]) — the equivalence oracle. Semantics and event
    /// counts are identical to [`run`](EmuRowFft::run).
    pub fn run_legacy(&self, data: &GlobalMem) -> EmuEvents {
        let (n, rows) = (self.n, self.rows);
        assert_eq!(data.len(), 2 * rows * n, "signal size mismatch");

        let stages = n.trailing_zeros() as usize;
        let events = EventCounters::new();
        legacy::launch(
            Dim2::new(1, rows),
            Dim2::new(n / 2, 1),
            2 * n, // one complex row in shared memory
            &events,
            |ctx: &legacy::ThreadCtx<'_>| {
                let row = ctx.by;
                let base = 2 * row * n;
                let tid = ctx.tx;

                // Stage the row into shared memory in bit-reversed order;
                // each thread loads two elements.
                for idx in [tid, tid + n / 2] {
                    let j = (idx.reverse_bits() >> (usize::BITS - stages as u32)) & (n - 1);
                    let re = ctx.global_load(data, base + 2 * idx);
                    let im = ctx.global_load(data, base + 2 * idx + 1);
                    ctx.shared_store(2 * j, re);
                    ctx.shared_store(2 * j + 1, im);
                }
                ctx.sync_threads();

                // Butterfly stages.
                let mut len = 2usize;
                while len <= n {
                    let half = len / 2;
                    // Thread `tid` owns butterfly `tid`: group g, offset k.
                    let g = tid / half;
                    let k = tid % half;
                    let i0 = g * len + k;
                    let i1 = i0 + half;
                    let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                    let (w_re, w_im) = (ang.cos(), ang.sin());

                    let u_re = ctx.shared_load(2 * i0);
                    let u_im = ctx.shared_load(2 * i0 + 1);
                    let v_re0 = ctx.shared_load(2 * i1);
                    let v_im0 = ctx.shared_load(2 * i1 + 1);
                    let v_re = v_re0 * w_re - v_im0 * w_im;
                    let v_im = v_re0 * w_im + v_im0 * w_re;
                    ctx.count_flops(10); // complex mul (6) + 2 complex adds (4)

                    ctx.shared_store(2 * i0, u_re + v_re);
                    ctx.shared_store(2 * i0 + 1, u_im + v_im);
                    ctx.shared_store(2 * i1, u_re - v_re);
                    ctx.shared_store(2 * i1 + 1, u_im - v_im);
                    ctx.sync_threads();
                    len <<= 1;
                }

                // Write the spectrum back; each thread stores two elements.
                for idx in [tid, tid + n / 2] {
                    let re = ctx.shared_load(2 * idx);
                    let im = ctx.shared_load(2 * idx + 1);
                    ctx.global_store(data, base + 2 * idx, re);
                    ctx.global_store(data, base + 2 * idx + 1, im);
                }
            },
        );
        events.snapshot()
    }
}

/// The row FFT as a phase state machine: one block per row, `n/2` threads.
struct FftKernel<'a> {
    n: usize,
    stages: usize,
    simd: SimdPath,
    data: &'a GlobalMem,
}

/// Which barrier-delimited segment a thread executes next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FftStep {
    /// Bit-reversed staging of the row into shared memory.
    Load,
    /// One butterfly stage of length `len` (2, 4, …, n).
    Butterfly {
        /// Current stage length.
        len: usize,
    },
    /// Spectrum write-back to global memory.
    Store,
}

impl BlockKernel for FftKernel<'_> {
    type State = FftStep;

    fn block(&self) -> Dim2 {
        Dim2::new(self.n / 2, 1)
    }

    fn shared_len(&self) -> usize {
        2 * self.n // one complex row
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) -> FftStep {
        FftStep::Load
    }

    fn run_phase<S: AccessSink>(
        &self,
        _phase: usize,
        st: &mut FftStep,
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        let n = self.n;
        let base = 2 * ctx.by * n;
        let tid = ctx.tx;
        match *st {
            FftStep::Load => {
                // Stage the row into shared memory in bit-reversed order;
                // each thread loads two elements.
                for idx in [tid, tid + n / 2] {
                    let j =
                        (idx.reverse_bits() >> (usize::BITS - self.stages as u32)) & (n - 1);
                    let re = ctx.global_load(self.data, base + 2 * idx);
                    let im = ctx.global_load(self.data, base + 2 * idx + 1);
                    ctx.shared_store(2 * j, re);
                    ctx.shared_store(2 * j + 1, im);
                }
                *st = FftStep::Butterfly { len: 2 };
                PhaseOutcome::Sync
            }
            FftStep::Butterfly { len } => {
                let half = len / 2;
                // Thread `tid` owns butterfly `tid`: group g, offset k.
                let g = tid / half;
                let k = tid % half;
                let i0 = g * len + k;
                let i1 = i0 + half;
                let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
                let (w_re, w_im) = (ang.cos(), ang.sin());

                let u_re = ctx.shared_load(2 * i0);
                let u_im = ctx.shared_load(2 * i0 + 1);
                let v_re0 = ctx.shared_load(2 * i1);
                let v_im0 = ctx.shared_load(2 * i1 + 1);
                let v_re = v_re0 * w_re - v_im0 * w_im;
                let v_im = v_re0 * w_im + v_im0 * w_re;
                ctx.count_flops(10); // complex mul (6) + 2 complex adds (4)

                ctx.shared_store(2 * i0, u_re + v_re);
                ctx.shared_store(2 * i0 + 1, u_im + v_im);
                ctx.shared_store(2 * i1, u_re - v_re);
                ctx.shared_store(2 * i1 + 1, u_im - v_im);
                *st = if len == n { FftStep::Store } else { FftStep::Butterfly { len: len << 1 } };
                PhaseOutcome::Sync
            }
            FftStep::Store => {
                // Write the spectrum back; each thread stores two elements.
                for idx in [tid, tid + n / 2] {
                    let re = ctx.shared_load(2 * idx);
                    let im = ctx.shared_load(2 * idx + 1);
                    ctx.global_store(self.data, base + 2 * idx, re);
                    ctx.global_store(self.data, base + 2 * idx + 1, im);
                }
                PhaseOutcome::Done
            }
        }
    }

    fn run_phase_batch(
        &self,
        _phase: usize,
        states: &mut [FftStep],
        ctx: &mut BatchCtx<'_>,
    ) -> Option<PhaseOutcome> {
        let n = self.n;
        let base = 2 * ctx.by * n;
        // The step register is block-uniform by construction.
        match states[0] {
            FftStep::Load => {
                if let Some(t) = ctx.trace() {
                    self.trace_load(base, t);
                }
                self.load_dispatch(base, ctx);
                for st in states.iter_mut() {
                    *st = FftStep::Butterfly { len: 2 };
                }
                Some(PhaseOutcome::Sync)
            }
            FftStep::Butterfly { len } => {
                if let Some(t) = ctx.trace() {
                    self.trace_butterfly(len, t);
                }
                self.butterfly_dispatch(len, ctx);
                let next =
                    if len == n { FftStep::Store } else { FftStep::Butterfly { len: len << 1 } };
                for st in states.iter_mut() {
                    *st = next;
                }
                Some(PhaseOutcome::Sync)
            }
            FftStep::Store => {
                if let Some(t) = ctx.trace() {
                    self.trace_store(base, t);
                }
                self.store_dispatch(base, ctx);
                Some(PhaseOutcome::Done)
            }
        }
    }
}

impl FftKernel<'_> {
    // ---- scalar batch bodies (the `ScalarSse2` tier) -----------------

    /// Bit-reversed staging as one pass over the row. Each idx's target
    /// `j` is a permutation, so writes are disjoint and the cross-thread
    /// reorder is unobservable.
    fn batch_load(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        let n = self.n;
        let shared = ctx.shared();
        for idx in 0..n {
            let j = (idx.reverse_bits() >> (usize::BITS - self.stages as u32)) & (n - 1);
            shared[2 * j] = self.data.load(base + 2 * idx);
            shared[2 * j + 1] = self.data.load(base + 2 * idx + 1);
        }
        let counts = ctx.counters();
        counts.global_loads += 2 * n as u64;
        counts.shared_stores += 2 * n as u64;
    }

    /// One butterfly stage over the whole row, `k`-outer so the twiddle
    /// for each `(k, len)` is computed once and reused across all `n/len`
    /// groups — bitwise the same value every scalar thread recomputed.
    fn batch_butterfly(&self, len: usize, ctx: &mut BatchCtx<'_>) {
        let n = self.n;
        let half = len / 2;
        let groups = n / len;
        let shared = ctx.shared();
        for k in 0..half {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
            let (w_re, w_im) = (ang.cos(), ang.sin());
            let mut g = 0;
            while g + 2 <= groups {
                butterfly(shared, g * len + k, half, w_re, w_im);
                butterfly(shared, (g + 1) * len + k, half, w_re, w_im);
                g += 2;
            }
            while g < groups {
                butterfly(shared, g * len + k, half, w_re, w_im);
                g += 1;
            }
        }
        self.count_butterfly(ctx);
    }

    /// Spectrum write-back: a straight contiguous copy.
    fn batch_store(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        let n = self.n;
        let shared = ctx.shared();
        for idx in 0..n {
            self.data.store(base + 2 * idx, shared[2 * idx]);
            self.data.store(base + 2 * idx + 1, shared[2 * idx + 1]);
        }
        let counts = ctx.counters();
        counts.shared_loads += 2 * n as u64;
        counts.global_stores += 2 * n as u64;
    }

    /// Bulk event counts of one butterfly stage: 10 flops and 4 shared
    /// loads + stores per butterfly, `n/2` butterflies.
    fn count_butterfly(&self, ctx: &mut BatchCtx<'_>) {
        let counts = ctx.counters();
        let butterflies = (self.n / 2) as u64;
        counts.flops += 10 * butterflies;
        counts.shared_loads += 4 * butterflies;
        counts.shared_stores += 4 * butterflies;
    }

    // ---- explicit-SIMD dispatch --------------------------------------

    fn load_dispatch(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        match self.simd {
            // SAFETY: the body only needs the x86-64 SSE2 baseline; the
            // `unsafe` covers its raw-pointer row access.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 | SimdPath::Avx2 => unsafe { self.batch_load_sse2(base, ctx) },
            _ => self.batch_load(base, ctx),
        }
    }

    fn butterfly_dispatch(&self, len: usize, ctx: &mut BatchCtx<'_>) {
        match self.simd {
            // SAFETY: `simd` never exceeds `SimdPath::detect()`.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => {
                let tw = self.twiddles(len);
                unsafe { self.batch_butterfly_avx512(len, &tw, ctx) }
            }
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => {
                let tw = self.twiddles(len);
                // SAFETY: as above — `simd` never exceeds host support.
                unsafe { self.batch_butterfly_avx2(len, &tw, ctx) }
            }
            _ => self.batch_butterfly(len, ctx),
        }
    }

    fn store_dispatch(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        match self.simd {
            // SAFETY: `simd` never exceeds `SimdPath::detect()`.
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx512 => unsafe { self.batch_store_avx512(base, ctx) },
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => unsafe { self.batch_store_avx2(base, ctx) },
            _ => self.batch_store(base, ctx),
        }
    }

    /// Duplicated twiddle rows for the vector butterfly: `[re re …]` then
    /// `[im im …]`, each value repeated per interleaved complex lane.
    /// Computed with the exact scalar formula, so every lane sees the
    /// same bits the scalar thread recomputed.
    #[cfg(target_arch = "x86_64")]
    fn twiddles(&self, len: usize) -> Vec<f64> {
        let half = len / 2;
        let mut tw = vec![0.0; 4 * half];
        let (re, im) = tw.split_at_mut(2 * half);
        for k in 0..half {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / len as f64;
            let (c, s) = (ang.cos(), ang.sin());
            re[2 * k] = c;
            re[2 * k + 1] = c;
            im[2 * k] = s;
            im[2 * k + 1] = s;
        }
        tw
    }

    /// Explicit-SIMD staging: the bit-reversal gather as 2-double
    /// (one-complex) vector moves. Pure copies — bitwise identity is
    /// trivial. Needs only the x86-64 SSE2 baseline, so both AVX tiers
    /// share it.
    ///
    /// # Safety
    /// None beyond compiling for x86-64 (SSE2 is baseline there); the fn
    /// is `unsafe` only for uniformity with the feature-gated dispatch
    /// arms.
    #[cfg(target_arch = "x86_64")]
    unsafe fn batch_load_sse2(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm_loadu_pd, _mm_storeu_pd};
        let n = self.n;
        let src = self.data.range_ptr(base, 2 * n);
        let dst = ctx.shared().as_mut_ptr();
        // SAFETY: `src` is a `range_ptr`-checked `2n`-length row, `dst`
        // spans the `2n`-cell shared row, and `j < n`.
        unsafe {
            for idx in 0..n {
                let j = (idx.reverse_bits() >> (usize::BITS - self.stages as u32)) & (n - 1);
                _mm_storeu_pd(dst.add(2 * j), _mm_loadu_pd(src.add(2 * idx)));
            }
        }
        let counts = ctx.counters();
        counts.global_loads += 2 * n as u64;
        counts.shared_stores += 2 * n as u64;
    }

    /// Explicit-SIMD butterfly stage (AVX2): vector lanes map across `k`
    /// within a group — two *butterflies* per vector, kept in interleaved
    /// (re, im) form. Per lane the operation order is exactly the scalar
    /// body's: two multiplies, then one add or subtract per component
    /// (`addsub` rounds each lane once; IEEE addition is commutative, so
    /// the swapped `v_im` operand order changes no bits), then the final
    /// `u ± v`. Never FMA.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn batch_butterfly_avx2(&self, len: usize, tw: &[f64], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{
            _mm256_add_pd, _mm256_addsub_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute_pd,
            _mm256_storeu_pd, _mm256_sub_pd,
        };
        let n = self.n;
        let half = len / 2;
        let groups = n / len;
        let sp = ctx.shared().as_mut_ptr();
        let (twre, twim) = tw.split_at(2 * half);
        // SAFETY: `sp` spans the `2n`-cell shared row; `u`/`v` offsets
        // stay below `2n` because `g·len + k + half < n`; twiddle rows
        // hold `2·half` doubles and `k + lanes/2 ≤ half`.
        unsafe {
            for g in 0..groups {
                let u_base = 2 * g * len;
                let v_base = u_base + 2 * half;
                let mut k = 0;
                while k + 2 <= half {
                    let u = _mm256_loadu_pd(sp.add(u_base + 2 * k));
                    let v0 = _mm256_loadu_pd(sp.add(v_base + 2 * k));
                    let wr = _mm256_loadu_pd(twre.as_ptr().add(2 * k));
                    let wi = _mm256_loadu_pd(twim.as_ptr().add(2 * k));
                    let t1 = _mm256_mul_pd(v0, wr);
                    let t2 = _mm256_mul_pd(_mm256_permute_pd(v0, 0b0101), wi);
                    let v = _mm256_addsub_pd(t1, t2);
                    _mm256_storeu_pd(sp.add(u_base + 2 * k), _mm256_add_pd(u, v));
                    _mm256_storeu_pd(sp.add(v_base + 2 * k), _mm256_sub_pd(u, v));
                    k += 2;
                }
                while k < half {
                    butterfly_ptr(sp, u_base + 2 * k, v_base + 2 * k, twre[2 * k], twim[2 * k]);
                    k += 1;
                }
            }
        }
        self.count_butterfly(ctx);
    }

    /// Explicit-SIMD butterfly stage (AVX-512): the AVX2 body's contract
    /// at four butterflies per vector; the missing `addsub` is a masked
    /// blend of one-rounding `add`/`sub` results.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn batch_butterfly_avx512(&self, len: usize, tw: &[f64], ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{
            _mm512_add_pd, _mm512_loadu_pd, _mm512_mask_blend_pd, _mm512_mul_pd,
            _mm512_permute_pd, _mm512_storeu_pd, _mm512_sub_pd,
        };
        let n = self.n;
        let half = len / 2;
        let groups = n / len;
        let sp = ctx.shared().as_mut_ptr();
        let (twre, twim) = tw.split_at(2 * half);
        // SAFETY: `sp` spans the `2n`-cell shared row; `u`/`v` offsets
        // stay below `2n` because `g·len + k + half < n`; twiddle rows
        // hold `2·half` doubles and `k + lanes/2 ≤ half`.
        unsafe {
            for g in 0..groups {
                let u_base = 2 * g * len;
                let v_base = u_base + 2 * half;
                let mut k = 0;
                while k + 4 <= half {
                    let u = _mm512_loadu_pd(sp.add(u_base + 2 * k));
                    let v0 = _mm512_loadu_pd(sp.add(v_base + 2 * k));
                    let wr = _mm512_loadu_pd(twre.as_ptr().add(2 * k));
                    let wi = _mm512_loadu_pd(twim.as_ptr().add(2 * k));
                    let t1 = _mm512_mul_pd(v0, wr);
                    let t2 = _mm512_mul_pd(_mm512_permute_pd(v0, 0x55), wi);
                    // Even (re) lanes take `t1 - t2`, odd (im) lanes take
                    // `t1 + t2`; the discarded result never rounds into
                    // the kept one.
                    let v = _mm512_mask_blend_pd(
                        0xAA,
                        _mm512_sub_pd(t1, t2),
                        _mm512_add_pd(t1, t2),
                    );
                    _mm512_storeu_pd(sp.add(u_base + 2 * k), _mm512_add_pd(u, v));
                    _mm512_storeu_pd(sp.add(v_base + 2 * k), _mm512_sub_pd(u, v));
                    k += 4;
                }
                while k < half {
                    butterfly_ptr(sp, u_base + 2 * k, v_base + 2 * k, twre[2 * k], twim[2 * k]);
                    k += 1;
                }
            }
        }
        self.count_butterfly(ctx);
    }

    /// Explicit-SIMD write-back (AVX2): one contiguous 4-lane copy.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn batch_store_avx2(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm256_loadu_pd, _mm256_storeu_pd};
        let n = self.n;
        let dst = self.data.range_ptr(base, 2 * n);
        let sp = ctx.shared().as_ptr();
        // SAFETY: both pointers span `2n` doubles and `i + lanes ≤ 2n`.
        unsafe {
            let mut i = 0;
            while i + 4 <= 2 * n {
                _mm256_storeu_pd(dst.add(i), _mm256_loadu_pd(sp.add(i)));
                i += 4;
            }
            while i < 2 * n {
                *dst.add(i) = *sp.add(i);
                i += 1;
            }
        }
        let counts = ctx.counters();
        counts.shared_loads += 2 * n as u64;
        counts.global_stores += 2 * n as u64;
    }

    /// Explicit-SIMD write-back (AVX-512): one contiguous 8-lane copy.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn batch_store_avx512(&self, base: usize, ctx: &mut BatchCtx<'_>) {
        use core::arch::x86_64::{_mm512_loadu_pd, _mm512_storeu_pd};
        let n = self.n;
        let dst = self.data.range_ptr(base, 2 * n);
        let sp = ctx.shared().as_ptr();
        // SAFETY: both pointers span `2n` doubles and `i + lanes ≤ 2n`.
        unsafe {
            let mut i = 0;
            while i + 8 <= 2 * n {
                _mm512_storeu_pd(dst.add(i), _mm512_loadu_pd(sp.add(i)));
                i += 8;
            }
            while i < 2 * n {
                *dst.add(i) = *sp.add(i);
                i += 1;
            }
        }
        let counts = ctx.counters();
        counts.shared_loads += 2 * n as u64;
        counts.global_stores += 2 * n as u64;
    }

    // ---- access-trace emission (bulk-sink monitored path) ------------
    //
    // Streams match the scalar loop's per-access hook order: thread-major
    // within a phase, each thread's accesses in scalar program order.
    // Every cell belongs to exactly one thread per phase, so per-cell
    // shadow order is preserved.

    /// Load records: each thread `tid` reads complexes `tid` and
    /// `tid + n/2` from global and stores them bit-reversed into shared.
    fn trace_load(&self, base: usize, t: &mut PhaseTrace) {
        let n = self.n;
        t.shared.reserve(2 * n);
        t.global.reserve(2 * n);
        t.global.begin_run(self.data.id(), self.data.len());
        for tid in 0..n / 2 {
            for idx in [tid, tid + n / 2] {
                t.global.push_load(tid, 0, base + 2 * idx);
                t.global.push_load(tid, 0, base + 2 * idx + 1);
            }
        }
        for tid in 0..n / 2 {
            for idx in [tid, tid + n / 2] {
                let j = (idx.reverse_bits() >> (usize::BITS - self.stages as u32)) & (n - 1);
                t.shared.push_store(tid, 0, 2 * j);
                t.shared.push_store(tid, 0, 2 * j + 1);
            }
        }
    }

    /// Butterfly records: thread `tid` owns butterfly `tid` — four shared
    /// loads (u, v) then four shared stores, in scalar order.
    fn trace_butterfly(&self, len: usize, t: &mut PhaseTrace) {
        let n = self.n;
        let half = len / 2;
        t.shared.reserve(8 * (n / 2));
        for tid in 0..n / 2 {
            let g = tid / half;
            let k = tid % half;
            let i0 = g * len + k;
            let i1 = i0 + half;
            t.shared.push_load(tid, 0, 2 * i0);
            t.shared.push_load(tid, 0, 2 * i0 + 1);
            t.shared.push_load(tid, 0, 2 * i1);
            t.shared.push_load(tid, 0, 2 * i1 + 1);
            t.shared.push_store(tid, 0, 2 * i0);
            t.shared.push_store(tid, 0, 2 * i0 + 1);
            t.shared.push_store(tid, 0, 2 * i1);
            t.shared.push_store(tid, 0, 2 * i1 + 1);
        }
    }

    /// Store records: each thread reads complexes `tid` and `tid + n/2`
    /// from shared and writes them back to global.
    fn trace_store(&self, base: usize, t: &mut PhaseTrace) {
        let n = self.n;
        t.shared.reserve(2 * n);
        t.global.reserve(2 * n);
        for tid in 0..n / 2 {
            for idx in [tid, tid + n / 2] {
                t.shared.push_load(tid, 0, 2 * idx);
                t.shared.push_load(tid, 0, 2 * idx + 1);
            }
        }
        t.global.begin_run(self.data.id(), self.data.len());
        for tid in 0..n / 2 {
            for idx in [tid, tid + n / 2] {
                t.global.push_store(tid, 0, base + 2 * idx);
                t.global.push_store(tid, 0, base + 2 * idx + 1);
            }
        }
    }
}

/// One radix-2 butterfly over raw interleaved shared memory — the scalar
/// tail of the vector butterfly bodies, in exactly the scalar phase
/// body's operation order.
///
/// # Safety
/// `sp` must span the block's shared row and `u0 + 1`, `v0 + 1` must be
/// in bounds.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn butterfly_ptr(sp: *mut f64, u0: usize, v0: usize, w_re: f64, w_im: f64) {
    // SAFETY: caller guarantees both 2-double slots are in bounds.
    unsafe {
        let u_re = *sp.add(u0);
        let u_im = *sp.add(u0 + 1);
        let v_re0 = *sp.add(v0);
        let v_im0 = *sp.add(v0 + 1);
        let v_re = v_re0 * w_re - v_im0 * w_im;
        let v_im = v_re0 * w_im + v_im0 * w_re;
        *sp.add(u0) = u_re + v_re;
        *sp.add(u0 + 1) = u_im + v_im;
        *sp.add(v0) = u_re - v_re;
        *sp.add(v0 + 1) = u_im - v_im;
    }
}

/// One radix-2 butterfly over interleaved shared memory, in exactly the
/// scalar phase body's operation order (so results stay bit-identical).
#[inline(always)]
fn butterfly(shared: &mut [f64], i0: usize, half: usize, w_re: f64, w_im: f64) {
    let i1 = i0 + half;
    let u_re = shared[2 * i0];
    let u_im = shared[2 * i0 + 1];
    let v_re0 = shared[2 * i1];
    let v_im0 = shared[2 * i1 + 1];
    let v_re = v_re0 * w_re - v_im0 * w_im;
    let v_im = v_re0 * w_im + v_im0 * w_re;
    shared[2 * i0] = u_re + v_re;
    shared[2 * i0 + 1] = u_im + v_im;
    shared[2 * i1] = u_re - v_re;
    shared[2 * i1 + 1] = u_im - v_im;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host reference DFT of one interleaved row.
    fn dft_row(row: &[f64]) -> Vec<f64> {
        let n = row.len() / 2;
        let mut out = vec![0.0; 2 * n];
        for k in 0..n {
            let (mut re, mut im) = (0.0, 0.0);
            for j in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                re += row[2 * j] * c - row[2 * j + 1] * s;
                im += row[2 * j] * s + row[2 * j + 1] * c;
            }
            out[2 * k] = re;
            out[2 * k + 1] = im;
        }
        out
    }

    fn signal(rows: usize, n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..2 * rows * n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn kernel_matches_dft_across_sizes() {
        for &n in &[2usize, 4, 8, 16, 32] {
            let host = signal(1, n, 7);
            let dev = GlobalMem::from_slice(&host);
            EmuRowFft::new(n, 1).run(&dev);
            let got = dev.to_vec();
            let expect = dft_row(&host);
            for (a, b) in got.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "n = {n}");
            }
        }
    }

    #[test]
    fn rows_are_independent() {
        let rows = 4;
        let n = 8;
        let host = signal(rows, n, 3);
        let dev = GlobalMem::from_slice(&host);
        EmuRowFft::new(n, rows).run(&dev);
        let got = dev.to_vec();
        for r in 0..rows {
            let expect = dft_row(&host[2 * r * n..2 * (r + 1) * n]);
            for (a, b) in got[2 * r * n..2 * (r + 1) * n].iter().zip(&expect) {
                assert!((a - b).abs() < 1e-9, "row {r}");
            }
        }
    }

    #[test]
    fn result_is_wave_width_invariant() {
        let (n, rows) = (16usize, 6usize);
        let host = signal(rows, n, 9);
        let run_with = |wave: usize| {
            let dev = GlobalMem::from_slice(&host);
            let ev = EmuRowFft::new(n, rows).with_wave(WavePlan::fixed(wave)).run(&dev);
            (dev.to_vec(), ev)
        };
        let (serial, ev1) = run_with(1);
        for wave in [2usize, 4, 16] {
            let (out, ev) = run_with(wave);
            assert_eq!(serial, out, "wave {wave}");
            assert_eq!(ev1, ev, "wave {wave}");
        }
    }

    #[test]
    fn event_counts_match_structure() {
        let (n, rows) = (16usize, 3usize);
        let dev = GlobalMem::from_slice(&signal(rows, n, 1));
        let ev = EmuRowFft::new(n, rows).run(&dev);
        let stages = 4u64; // log2(16)
        // 10 flops per butterfly, n/2 butterflies per stage, per row.
        assert_eq!(ev.flops, rows as u64 * stages * (n as u64 / 2) * 10);
        // Global traffic: every element read once and written once.
        assert_eq!(ev.global_loads, (2 * rows * n) as u64);
        assert_eq!(ev.global_stores, (2 * rows * n) as u64);
        // Barriers: one after staging + one per stage, per block.
        assert_eq!(ev.barriers, rows as u64 * (1 + stages));
    }

    #[test]
    fn phase_engine_equals_legacy_engine() {
        for &(n, rows) in &[(8usize, 2usize), (16, 3)] {
            let host = signal(rows, n, 13);
            let d1 = GlobalMem::from_slice(&host);
            let new_ev = EmuRowFft::new(n, rows).run(&d1);
            let d2 = GlobalMem::from_slice(&host);
            let old_ev = EmuRowFft::new(n, rows).run_legacy(&d2);
            assert_eq!(d1.to_vec(), d2.to_vec(), "n={n} rows={rows}");
            assert_eq!(new_ev, old_ev, "n={n} rows={rows}");
        }
    }

    #[test]
    fn agrees_with_host_fft_library() {
        // Cross-validate against the real host FFT from enprop-kernels.
        let n = 64;
        let host = signal(1, n, 11);
        let dev = GlobalMem::from_slice(&host);
        EmuRowFft::new(n, 1).run(&dev);
        let got = dev.to_vec();

        let mut x: Vec<enprop_kernels::Complex> =
            (0..n).map(|i| enprop_kernels::Complex::new(host[2 * i], host[2 * i + 1])).collect();
        enprop_kernels::fft_inplace(&mut x);
        for (i, c) in x.iter().enumerate() {
            assert!((got[2 * i] - c.re).abs() < 1e-9);
            assert!((got[2 * i + 1] - c.im).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        EmuRowFft::new(12, 1);
    }
}
