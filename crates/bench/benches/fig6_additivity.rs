//! Bench + regeneration of Fig. 6 (dynamic-energy non-additivity in G).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::fig6;

fn bench(c: &mut Criterion) {
    println!("{}", fig6::render());
    c.bench_function("fig6/generate", |b| b.iter(fig6::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
