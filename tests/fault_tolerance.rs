//! Acceptance test for the fault-tolerant measurement pipeline: a
//! 100+-configuration sweep through a meter with a 5% transient-failure
//! rate completes without panicking, reports the exact set of
//! configurations that exhausted their retries, and stays
//! bitwise-identical at 1, 2, and 8 worker threads.

use enprop::apps::{GpuMatMulApp, RetryPolicy, SweepExecutor};
use enprop::gpusim::GpuArch;
use enprop::power::{FaultPlan, MeasureError};

/// The Fig. 7 K40c workload at N = 8704: 102 configurations.
fn workload() -> (GpuMatMulApp, usize) {
    (GpuMatMulApp::new(GpuArch::k40c(), 8), 8704)
}

#[test]
fn hundred_config_sweep_survives_five_percent_faults() {
    let (app, n) = workload();
    assert!(app.configs(n).len() >= 100, "workload too small for the acceptance bar");

    let policy = RetryPolicy::default(); // 3 attempts, no sleep
    let plan = FaultPlan::transient(0.05);
    let sweep = app.sweep_measured_robust(n, &SweepExecutor::serial(42), policy, plan);

    // No configuration vanishes: every one is a point or a failure record.
    assert_eq!(sweep.points.len() + sweep.failures.len(), sweep.total);
    assert_eq!(sweep.total, app.configs(n).len());
    // At 5% per-measurement failure and 3 attempts, most configs survive.
    assert!(
        sweep.points.len() > sweep.total * 8 / 10,
        "only {} of {} configs survived",
        sweep.points.len(),
        sweep.total
    );
    // The injected faults actually fired.
    assert!(sweep.retried > 0, "5% fault rate never triggered a retry");
    // Every failure carries its configuration, index, attempt count, and a
    // transient error — enough to rerun it by hand.
    let all = app.configs(n);
    for f in &sweep.failures {
        assert_eq!(all[f.index], f.config);
        assert_eq!(f.attempts, policy.max_attempts);
        assert_eq!(f.error, MeasureError::TransientReadFailure);
    }
}

#[test]
fn failed_config_set_is_identical_across_thread_counts() {
    let (app, n) = workload();
    let policy = RetryPolicy::default();
    let plan = FaultPlan::transient(0.05);

    let serial = app.sweep_measured_robust(n, &SweepExecutor::serial(42), policy, plan);
    for threads in [2usize, 8] {
        let exec = SweepExecutor::new(42).with_threads(threads);
        let sweep = app.sweep_measured_robust(n, &exec, policy, plan);
        // Full bitwise equality: surviving points, the exhausted-retry
        // set (configs, indices, attempt counts, errors), and counters.
        assert_eq!(serial, sweep, "{threads}-thread sweep diverged from serial");
    }
}

#[test]
fn zero_fault_rate_is_transparent() {
    let (app, n) = workload();
    let exec = SweepExecutor::serial(42);
    let plain = app.sweep_measured(n, &exec);
    let robust =
        app.sweep_measured_robust(n, &exec, RetryPolicy::default(), FaultPlan::none());
    assert!(robust.is_complete());
    assert_eq!(robust.retried, 0);
    assert_eq!(robust.points, plain);
}
