//! Energy-proportionality metrics from the literature the paper surveys.
//!
//! All metrics consume a measured (utilization, power) curve. The *ideal*
//! energy-proportional curve runs linearly from the idle power at U = 0 to
//! the measured peak power at U = 1.

use enprop_units::{Utilization, Watts};

/// Ryckbosch et al.'s EP metric: one minus the area between the actual and
/// ideal power curves divided by the area under the ideal curve. 1.0 means
/// perfectly proportional; lower values mean larger deviation.
///
/// `curve` is a set of (utilization, power) samples that must include (or
/// bracket) both endpoints; the curve is integrated by the trapezoid rule
/// after sorting by utilization.
pub fn ep_metric_area(curve: &[(Utilization, Watts)]) -> f64 {
    assert!(curve.len() >= 2, "EP metric needs at least two samples");
    let mut pts: Vec<(f64, f64)> =
        curve.iter().map(|&(u, p)| (u.fraction(), p.value())).collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN utilization"));
    let idle = pts.first().expect("non-empty").1;
    let peak = pts.last().expect("non-empty").1;
    let span = pts.last().unwrap().0 - pts.first().unwrap().0;
    assert!(span > 0.0, "curve must span a utilization range");
    let u0 = pts.first().unwrap().0;

    // Ideal line from (u0, idle) to (u_max, peak).
    let ideal = |u: f64| idle + (peak - idle) * (u - u0) / span;

    let (mut dev_area, mut ideal_area) = (0.0, 0.0);
    for w in pts.windows(2) {
        let du = w[1].0 - w[0].0;
        let dev0 = (w[0].1 - ideal(w[0].0)).abs();
        let dev1 = (w[1].1 - ideal(w[1].0)).abs();
        dev_area += 0.5 * (dev0 + dev1) * du;
        ideal_area += 0.5 * (ideal(w[0].0) + ideal(w[1].0)) * du;
    }
    1.0 - dev_area / ideal_area
}

/// Barroso & Hölzle's dynamic range: peak power divided by idle power.
/// Energy-proportional servers want a *large* dynamic range (idle power
/// near zero).
pub fn dynamic_range(idle: Watts, peak: Watts) -> f64 {
    assert!(idle.value() > 0.0, "idle power must be positive");
    peak.value() / idle.value()
}

/// The proportionality gap at one utilization: `(P_actual − P_ideal) /
/// P_peak`, where the ideal is the linear idle→peak curve. Positive values
/// mean the system draws more than proportional power at that load.
pub fn proportionality_gap(u: Utilization, actual: Watts, idle: Watts, peak: Watts) -> f64 {
    assert!(peak > idle, "peak must exceed idle");
    let ideal = idle.value() + (peak.value() - idle.value()) * u.fraction();
    (actual.value() - ideal) / peak.value()
}

/// Hsu & Poole's integrated proportionality metric: one minus the mean
/// *absolute* proportionality gap over the measured curve (trapezoid
/// integration over utilization). 1.0 for a perfectly linear idle→peak
/// curve; smaller for bowed curves.
pub fn ep_metric_hsu_poole(curve: &[(Utilization, Watts)]) -> f64 {
    assert!(curve.len() >= 2, "metric needs at least two samples");
    let mut pts: Vec<(f64, f64)> =
        curve.iter().map(|&(u, p)| (u.fraction(), p.value())).collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN utilization"));
    let idle = Watts(pts.first().expect("non-empty").1);
    let peak = Watts(pts.last().expect("non-empty").1);
    assert!(peak > idle, "peak must exceed idle");
    let span = pts.last().unwrap().0 - pts.first().unwrap().0;
    assert!(span > 0.0, "curve must span a utilization range");
    let gap = |p: &(f64, f64)| {
        proportionality_gap(Utilization::new(p.0), Watts(p.1), idle, peak).abs()
    };
    let mut integral = 0.0;
    for w in pts.windows(2) {
        integral += 0.5 * (gap(&w[0]) + gap(&w[1])) * (w[1].0 - w[0].0);
    }
    1.0 - integral / span
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f64)]) -> Vec<(Utilization, Watts)> {
        points.iter().map(|&(u, p)| (Utilization::new(u), Watts(p))).collect()
    }

    #[test]
    fn linear_curve_scores_one() {
        let c = curve(&[(0.0, 50.0), (0.25, 100.0), (0.5, 150.0), (1.0, 250.0)]);
        assert!((ep_metric_area(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bowed_curve_scores_below_one() {
        // Typical server: power jumps early then saturates (concave).
        let c = curve(&[(0.0, 50.0), (0.25, 180.0), (0.5, 220.0), (1.0, 250.0)]);
        let m = ep_metric_area(&c);
        assert!(m < 0.9, "{m}");
        assert!(m > 0.0);
    }

    #[test]
    fn metric_is_symmetric_in_deviation_sign() {
        let above = curve(&[(0.0, 50.0), (0.5, 200.0), (1.0, 250.0)]);
        let below = curve(&[(0.0, 50.0), (0.5, 100.0), (1.0, 250.0)]);
        let ma = ep_metric_area(&above);
        let mb = ep_metric_area(&below);
        assert!((ma - mb).abs() < 1e-12, "{ma} vs {mb}");
    }

    #[test]
    fn dynamic_range_basics() {
        assert_eq!(dynamic_range(Watts(50.0), Watts(250.0)), 5.0);
    }

    #[test]
    fn proportionality_gap_signs() {
        let (idle, peak) = (Watts(50.0), Watts(250.0));
        // At 50% the ideal is 150 W.
        assert!(proportionality_gap(Utilization::new(0.5), Watts(200.0), idle, peak) > 0.0);
        assert!(proportionality_gap(Utilization::new(0.5), Watts(100.0), idle, peak) < 0.0);
        assert_eq!(proportionality_gap(Utilization::new(0.5), Watts(150.0), idle, peak), 0.0);
    }

    #[test]
    fn hsu_poole_metric() {
        let linear = curve(&[(0.0, 50.0), (0.5, 150.0), (1.0, 250.0)]);
        assert!((ep_metric_hsu_poole(&linear) - 1.0).abs() < 1e-12);
        let bowed = curve(&[(0.0, 50.0), (0.25, 200.0), (0.5, 230.0), (1.0, 250.0)]);
        let m = ep_metric_hsu_poole(&bowed);
        assert!(m < 0.95 && m > 0.0, "{m}");
        // The two area metrics agree on ordering.
        assert!(ep_metric_area(&bowed) < ep_metric_area(&linear));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let c = curve(&[(1.0, 250.0), (0.0, 50.0), (0.5, 150.0)]);
        assert!((ep_metric_area(&c) - 1.0).abs() < 1e-12);
    }
}
