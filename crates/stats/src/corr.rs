//! Correlation coefficients.
//!
//! The energy-predictive-model methodology selects model variables with "a
//! high positive correlation with dynamic energy"; Pearson and Spearman
//! coefficients are provided for that selection step.

/// Pearson product-moment correlation coefficient of two samples.
/// Returns 0 for degenerate (constant) inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch in pearson");
    assert!(xs.len() >= 2, "correlation needs at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman rank correlation coefficient (Pearson on fractional ranks, so
/// ties are handled by mid-ranking).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch in spearman");
    pearson(&ranks(xs), &ranks(ys))
}

/// Fractional (mid) ranks of a sample, 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in sample"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Mid-rank for the tie group [i, j].
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -x + 10.0).collect();
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_yields_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn spearman_is_monotonicity_not_linearity() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn uncorrelated_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.25);
    }
}
