//! Analytic 2-D FFT model for the strong-EP study (Fig. 1) on GPUs.
//!
//! The paper's strong-EP experiment runs CUFFT 2-D transforms for N from
//! 125 to 44000 and observes that dynamic energy is a "complex non-linear
//! function of work". The non-linearity comes from regime changes: at
//! small N the device is latency-bound and under-occupied (energy per unit
//! work is high); once the signal spills the L2 cache the transform becomes
//! DRAM-bound; at large N the kernel settles into a bandwidth-limited
//! steady state with a different energy slope. The model reproduces those
//! regimes.

use crate::arch::GpuArch;
use crate::model::KernelEstimate;
use enprop_units::{Seconds, Watts, Work};

/// The paper's work measure for an `N × N` 2-D FFT: `W = 5 N² log₂ N`.
pub fn fft2d_work(n: usize) -> Work {
    let nf = n as f64;
    Work(5.0 * nf * nf * nf.log2())
}

/// Analytic CUFFT-style 2-D FFT execution model on one architecture.
#[derive(Debug, Clone)]
pub struct GpuFft2d {
    arch: GpuArch,
}

/// FFT achieves roughly this fraction of peak DP flops when compute-bound.
const FFT_COMPUTE_EFF: f64 = 0.45;
/// Row+column passes move the signal this many times (reads + writes,
/// including the transpose steps of the out-of-place row–column method).
const PASS_TRAFFIC_MULT: f64 = 6.0;
/// N below which kernels cannot fill the device (latency-bound floor).
const SATURATION_N: f64 = 2048.0;

impl GpuFft2d {
    /// Binds the model to an architecture.
    pub fn new(arch: GpuArch) -> Self {
        Self { arch }
    }

    /// The bound architecture.
    pub fn arch(&self) -> &GpuArch {
        &self.arch
    }

    /// Predicts one forward 2-D transform of an `N × N` complex-double
    /// signal.
    pub fn estimate(&self, n: usize) -> KernelEstimate {
        assert!(n >= 2, "FFT size must be at least 2");
        let arch = &self.arch;
        let pm = &arch.power;
        let nf = n as f64;

        // Device fill: small transforms leave SMs idle.
        let fill = (nf / SATURATION_N).min(1.0);

        let flops = fft2d_work(n).value();
        let compute_rate = arch.peak_dp_flops() * FFT_COMPUTE_EFF * fill;
        let compute_time = flops / compute_rate;

        let signal_bytes = 16.0 * nf * nf; // complex double
        let cache_mult = if signal_bytes <= arch.l2_cache.value() { 3.0 } else { 1.0 };
        let bandwidth = arch.dram_bandwidth.value() * fill.sqrt() * cache_mult;
        let mem_time = signal_bytes * PASS_TRAFFIC_MULT / bandwidth;

        let t = compute_time.max(mem_time) + 2.0e-5;
        let s_comp = compute_time / compute_time.max(mem_time);
        let s_mem = mem_time / compute_time.max(mem_time);

        let occ = fill; // under-filled device ≈ proportional occupancy
        let boosted = occ >= pm.boost_occupancy;
        let gate = pm.gating_effectiveness;
        let mut power = pm.active_base_w
            + pm.compute_w * occ.powf(pm.occ_exponent) * (gate * s_comp + (1.0 - gate))
            + pm.memory_w * s_mem;
        if boosted {
            power = (power * pm.boost_power_mult).min(arch.tdp.value() * 0.88);
        }

        KernelEstimate {
            time: Seconds(t),
            steady_power: Watts(power),
            warmup_power: Watts(pm.warmup_power_w),
            warmup_time: Seconds(t.min(pm.warmup_duration_s)),
            occupancy: occ,
            compute_share: s_comp,
            memory_share: s_mem,
            boosted,
        }
    }

    /// Dynamic energy per unit work at size `n` — constant under strong EP,
    /// varying under its violation.
    pub fn energy_per_work(&self, n: usize) -> f64 {
        self.estimate(n).dynamic_energy().value() / fft2d_work(n).value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_formula() {
        assert_eq!(fft2d_work(1024).value(), 5.0 * 1024.0 * 1024.0 * 10.0);
    }

    #[test]
    fn time_grows_with_n() {
        let m = GpuFft2d::new(GpuArch::p100_pcie());
        let mut prev = 0.0;
        for n in [128, 512, 2048, 8192, 32768] {
            let t = m.estimate(n).time.value();
            assert!(t > prev, "n={n}");
            prev = t;
        }
    }

    #[test]
    fn strong_ep_violated_energy_per_work_not_constant() {
        // Energy per unit work varies by well over the 2.5% measurement
        // precision across the Fig. 1 size range — strong EP does not hold.
        for arch in [GpuArch::k40c(), GpuArch::p100_pcie()] {
            let m = GpuFft2d::new(arch);
            let ratios: Vec<f64> =
                [128, 256, 1024, 4096, 16384, 44032].iter().map(|&n| m.energy_per_work(n)).collect();
            let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
            let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min > 1.5, "{}: spread {}", m.arch().name, max / min);
        }
    }

    #[test]
    fn small_sizes_are_least_efficient() {
        let m = GpuFft2d::new(GpuArch::k40c());
        assert!(m.energy_per_work(128) > m.energy_per_work(8192));
    }

    #[test]
    fn power_bounded_by_tdp() {
        let m = GpuFft2d::new(GpuArch::p100_pcie());
        for n in [128, 1024, 16384, 44032] {
            let p = m.estimate(n).steady_power.value();
            assert!(p > 0.0 && p <= m.arch().tdp.value(), "n={n}: {p}");
        }
    }
}
