//! Bi-objective workload partitioning across heterogeneous processors.
//!
//! The methodology lineage the paper builds on (Reddy & Lastovetsky;
//! Khaleghzadeh et al., §II-A) solves this problem: given each processor's
//! *discrete* time and dynamic-energy functions of workload size,
//! distribute a workload across the processors so that no other
//! distribution is better in both execution time (the parallel makespan)
//! and total dynamic energy. This module implements the exact solver:
//! a processor-by-processor dynamic program over partial distributions,
//! pruning dominated (time, energy) states at every step.
//!
//! Profiles come from anywhere — measured points, or the toolkit's CPU/GPU
//! simulators (see the `heterogeneous_partition` example).

use enprop_pareto::{pareto_front, BiPoint};
use enprop_units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// One processor's discrete cost profile: entry `k` holds the execution
/// time and dynamic energy of processing `k` workload chunks
/// (`k = 0..=granularity`, with entry 0 = zero cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteProfile {
    /// Processor label.
    pub name: String,
    /// `costs[k] = (time, energy)` for `k` chunks.
    pub costs: Vec<(Seconds, Joules)>,
}

impl DiscreteProfile {
    /// Builds a profile from a cost function over chunk counts.
    /// `granularity` is the maximum chunk count the processor can take.
    pub fn from_fn(
        name: impl Into<String>,
        granularity: usize,
        mut cost: impl FnMut(usize) -> (Seconds, Joules),
    ) -> Self {
        assert!(granularity >= 1, "granularity must be at least 1");
        let mut costs = Vec::with_capacity(granularity + 1);
        costs.push((Seconds::ZERO, Joules::ZERO));
        for k in 1..=granularity {
            let (t, e) = cost(k);
            assert!(
                t.value() >= 0.0 && e.value() >= 0.0,
                "costs must be non-negative ({k} chunks)"
            );
            costs.push((t, e));
        }
        Self { name: name.into(), costs }
    }

    /// Maximum chunks this processor can take.
    pub fn granularity(&self) -> usize {
        self.costs.len() - 1
    }
}

/// One Pareto-optimal distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Distribution {
    /// Chunks assigned to each processor, in profile order.
    pub chunks: Vec<usize>,
    /// Makespan: the slowest processor's time.
    pub time: Seconds,
    /// Total dynamic energy across processors.
    pub energy: Joules,
}

/// The exact bi-objective partitioner.
#[derive(Debug, Clone)]
pub struct Partitioner {
    profiles: Vec<DiscreteProfile>,
}

/// A partial solution during the DP sweep.
#[derive(Debug, Clone)]
struct Partial {
    chunks: Vec<usize>,
    time: f64,
    energy: f64,
}

impl Partitioner {
    /// Creates a partitioner over the given processor profiles.
    pub fn new(profiles: Vec<DiscreteProfile>) -> Self {
        assert!(!profiles.is_empty(), "need at least one processor");
        Self { profiles }
    }

    /// The processor profiles.
    pub fn profiles(&self) -> &[DiscreteProfile] {
        &self.profiles
    }

    /// Computes the Pareto-optimal set of distributions of `total_chunks`
    /// over the processors (every chunk must be assigned). Returns
    /// distributions sorted by increasing time; empty when the workload
    /// cannot be placed (total exceeds the summed granularities).
    pub fn solve(&self, total_chunks: usize) -> Vec<Distribution> {
        let capacity: usize = self.profiles.iter().map(|p| p.granularity()).sum();
        if total_chunks > capacity {
            return Vec::new();
        }

        // states[w] = non-dominated partials that have assigned w chunks.
        let mut states: Vec<Vec<Partial>> = vec![Vec::new(); total_chunks + 1];
        states[0].push(Partial { chunks: Vec::new(), time: 0.0, energy: 0.0 });

        for (p_idx, profile) in self.profiles.iter().enumerate() {
            let remaining_capacity: usize =
                self.profiles[p_idx + 1..].iter().map(|p| p.granularity()).sum();
            let mut next: Vec<Vec<Partial>> = vec![Vec::new(); total_chunks + 1];
            for (assigned, bucket) in states.iter().enumerate() {
                for partial in bucket {
                    for k in 0..=profile.granularity().min(total_chunks - assigned) {
                        let w = assigned + k;
                        // Prune branches that cannot place the rest.
                        if total_chunks - w > remaining_capacity {
                            continue;
                        }
                        let (t, e) = profile.costs[k];
                        let mut chunks = partial.chunks.clone();
                        chunks.push(k);
                        next[w].push(Partial {
                            chunks,
                            time: partial.time.max(t.value()),
                            energy: partial.energy + e.value(),
                        });
                    }
                }
            }
            // Dominance-prune each bucket to keep the frontier small.
            for bucket in &mut next {
                prune(bucket);
            }
            states = next;
        }

        let mut out: Vec<Distribution> = states[total_chunks]
            .iter()
            .map(|p| Distribution {
                chunks: p.chunks.clone(),
                time: Seconds(p.time),
                energy: Joules(p.energy),
            })
            .collect();
        out.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("NaN time")
                .then(a.energy.partial_cmp(&b.energy).expect("NaN energy"))
        });
        out
    }
}

/// Keeps only non-dominated partials (and one representative per duplicate
/// objective vector).
fn prune(bucket: &mut Vec<Partial>) {
    if bucket.len() <= 1 {
        return;
    }
    let pts: Vec<BiPoint> = bucket.iter().map(|p| BiPoint::new(p.time, p.energy)).collect();
    let keep = pareto_front(&pts);
    let mut kept: Vec<Partial> = keep.into_iter().map(|i| bucket[i].clone()).collect();
    std::mem::swap(bucket, &mut kept);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A processor with linear time `a·k` and energy `b·k`.
    fn linear(name: &str, q: usize, a: f64, b: f64) -> DiscreteProfile {
        DiscreteProfile::from_fn(name, q, |k| (Seconds(a * k as f64), Joules(b * k as f64)))
    }

    /// Brute force over all splits of `total` across the profiles.
    fn brute_force(profiles: &[DiscreteProfile], total: usize) -> Vec<(f64, f64)> {
        fn rec(
            profiles: &[DiscreteProfile],
            left: usize,
            time: f64,
            energy: f64,
            out: &mut Vec<(f64, f64)>,
        ) {
            if profiles.is_empty() {
                if left == 0 {
                    out.push((time, energy));
                }
                return;
            }
            for k in 0..=profiles[0].granularity().min(left) {
                let (t, e) = profiles[0].costs[k];
                rec(
                    &profiles[1..],
                    left - k,
                    time.max(t.value()),
                    energy + e.value(),
                    out,
                );
            }
        }
        let mut all = Vec::new();
        rec(profiles, total, 0.0, 0.0, &mut all);
        let pts: Vec<BiPoint> = all.iter().map(|&(t, e)| BiPoint::new(t, e)).collect();
        let mut front: Vec<(f64, f64)> =
            pareto_front(&pts).into_iter().map(|i| all[i]).collect();
        front.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        front.dedup();
        front
    }

    #[test]
    fn two_identical_processors_split_evenly_for_time() {
        let p = Partitioner::new(vec![linear("a", 10, 1.0, 1.0), linear("b", 10, 1.0, 1.0)]);
        let front = p.solve(10);
        // Energy is 10 no matter what; the makespan-optimal split is 5/5,
        // so the front is that single point.
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].chunks, vec![5, 5]);
        assert_eq!(front[0].time, Seconds(5.0));
        assert_eq!(front[0].energy, Joules(10.0));
    }

    #[test]
    fn fast_hungry_vs_slow_frugal_yields_tradeoff() {
        // Processor a: fast but energy-hungry; b: slow but frugal.
        let p = Partitioner::new(vec![linear("fast", 8, 1.0, 10.0), linear("slow", 8, 4.0, 1.0)]);
        let front = p.solve(8);
        assert!(front.len() >= 3, "{front:?}");
        // Extremes: everything on the frugal processor is slowest/cheapest.
        let cheapest = front.last().unwrap();
        assert_eq!(cheapest.chunks, vec![0, 8]);
        // Monotone trade-off along the front.
        for w in front.windows(2) {
            assert!(w[1].time > w[0].time);
            assert!(w[1].energy < w[0].energy);
        }
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Non-linear, non-monotone energy profiles (nonproportional
        // processors — the whole point of the paper).
        let bend = |name: &str, q: usize, seed: u64| {
            DiscreteProfile::from_fn(name, q, |k| {
                let kf = k as f64;
                let wob = ((seed as f64 + kf) * 2.3).sin() * 0.3 + 1.0;
                (Seconds(kf * wob), Joules(kf * kf * 0.2 * wob + 1.0))
            })
        };
        let profiles = vec![bend("x", 6, 1), bend("y", 5, 2), bend("z", 4, 3)];
        let p = Partitioner::new(profiles.clone());
        for total in [1usize, 5, 9, 15] {
            let solved: Vec<(f64, f64)> = p
                .solve(total)
                .iter()
                .map(|d| (d.time.value(), d.energy.value()))
                .collect();
            let expect = brute_force(&profiles, total);
            assert_eq!(solved, expect, "total = {total}");
        }
    }

    #[test]
    fn chunks_always_sum_to_total() {
        let p = Partitioner::new(vec![linear("a", 7, 2.0, 3.0), linear("b", 9, 1.5, 5.0)]);
        for total in 1..=16 {
            for d in p.solve(total) {
                assert_eq!(d.chunks.iter().sum::<usize>(), total);
                assert_eq!(d.chunks.len(), 2);
            }
        }
    }

    #[test]
    fn infeasible_workload_returns_empty() {
        let p = Partitioner::new(vec![linear("a", 3, 1.0, 1.0)]);
        assert!(p.solve(4).is_empty());
        assert_eq!(p.solve(3).len(), 1);
    }

    #[test]
    fn single_processor_trivial() {
        let p = Partitioner::new(vec![linear("only", 5, 2.0, 7.0)]);
        let front = p.solve(4);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].chunks, vec![4]);
        assert_eq!(front[0].time, Seconds(8.0));
        assert_eq!(front[0].energy, Joules(28.0));
    }
}
