//! The scalar quantity newtypes and their dimensional arithmetic.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Defines an `f64` newtype quantity with same-type linear arithmetic
/// (`+`, `-`, scalar `*`/`/`, `Sum`) and a dimensionless `ratio`.
macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// The underlying scalar value in base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Dimensionless ratio `self / other`.
            #[inline]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Component-wise minimum.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// True if the value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                crate::display::EngFormat::new(self.0, $unit).fmt(f)
            }
        }
    };
}

quantity!(
    /// Energy in joules. Obtained from [`Watts`] × [`Seconds`].
    Joules,
    "J"
);
quantity!(
    /// Power in watts. Obtained from [`Joules`] ÷ [`Seconds`].
    Watts,
    "W"
);
quantity!(
    /// Wall-clock time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// A count of floating-point operations.
    Flops,
    "flop"
);
quantity!(
    /// Floating-point throughput (flop/s).
    FlopsPerSecond,
    "flop/s"
);
quantity!(
    /// Application *work* in the paper's abstract units (e.g. `5 N² log₂ N`
    /// for the 2-D FFT). Work is proportional to, but not identical to,
    /// [`Flops`]: strong EP is stated against work.
    Work,
    "wu"
);
quantity!(
    /// A number of bytes (memory footprint or traffic volume).
    MemBytes,
    "B"
);
quantity!(
    /// Memory bandwidth in bytes per second.
    BytesPerSecond,
    "B/s"
);
quantity!(
    /// A clock frequency in hertz.
    Hertz,
    "Hz"
);

// ---- Cross-type dimensional arithmetic -------------------------------------

impl Mul<Seconds> for Watts {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;
    #[inline]
    fn mul(self, rhs: Watts) -> Joules {
        Joules(self.0 * rhs.0)
    }
}

impl Div<Seconds> for Joules {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Seconds) -> Watts {
        Watts(self.0 / rhs.0)
    }
}

impl Div<Watts> for Joules {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: Watts) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Div<Seconds> for Flops {
    type Output = FlopsPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> FlopsPerSecond {
        FlopsPerSecond(self.0 / rhs.0)
    }
}

impl Div<FlopsPerSecond> for Flops {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: FlopsPerSecond) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for FlopsPerSecond {
    type Output = Flops;
    #[inline]
    fn mul(self, rhs: Seconds) -> Flops {
        Flops(self.0 * rhs.0)
    }
}

impl Div<Seconds> for MemBytes {
    type Output = BytesPerSecond;
    #[inline]
    fn div(self, rhs: Seconds) -> BytesPerSecond {
        BytesPerSecond(self.0 / rhs.0)
    }
}

impl Div<BytesPerSecond> for MemBytes {
    type Output = Seconds;
    #[inline]
    fn div(self, rhs: BytesPerSecond) -> Seconds {
        Seconds(self.0 / rhs.0)
    }
}

impl Mul<Seconds> for BytesPerSecond {
    type Output = MemBytes;
    #[inline]
    fn mul(self, rhs: Seconds) -> MemBytes {
        MemBytes(self.0 * rhs.0)
    }
}

impl FlopsPerSecond {
    /// Convenience accessor in Gflop/s (the unit of the paper's Fig. 4).
    #[inline]
    pub fn gflops(self) -> f64 {
        self.0 / 1.0e9
    }

    /// Builds a rate from a Gflop/s value.
    #[inline]
    pub fn from_gflops(g: f64) -> Self {
        Self(g * 1.0e9)
    }
}

impl Hertz {
    /// Builds a frequency from megahertz (Table I lists clock in MHz).
    #[inline]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1.0e6)
    }

    /// The frequency in megahertz.
    #[inline]
    pub fn mhz(self) -> f64 {
        self.0 / 1.0e6
    }
}

impl MemBytes {
    /// Builds a size from kibibytes.
    #[inline]
    pub fn from_kib(kib: f64) -> Self {
        Self(kib * 1024.0)
    }

    /// Builds a size from gibibytes.
    #[inline]
    pub fn from_gib(gib: f64) -> Self {
        Self(gib * 1024.0 * 1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_ops() {
        let a = Joules(2.0) + Joules(3.0) - Joules(1.0);
        assert_eq!(a, Joules(4.0));
        assert_eq!(a * 2.0, Joules(8.0));
        assert_eq!(2.0 * a, Joules(8.0));
        assert_eq!(a / 4.0, Joules(1.0));
        assert_eq!(-a, Joules(-4.0));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = [Joules(1.0), Joules(2.5)].into_iter().sum();
        assert_eq!(total, Joules(3.5));
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Watts(3.0).max(Watts(5.0)), Watts(5.0));
        assert_eq!(Watts(3.0).min(Watts(5.0)), Watts(3.0));
        assert_eq!(Watts(-3.0).abs(), Watts(3.0));
    }

    #[test]
    fn bandwidth_roundtrip() {
        let bytes = MemBytes(64.0e9);
        let bw = bytes / Seconds(2.0);
        assert_eq!(bw, BytesPerSecond(32.0e9));
        assert_eq!(bw * Seconds(2.0), bytes);
        assert_eq!(bytes / bw, Seconds(2.0));
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(Hertz::from_mhz(745.0).mhz(), 745.0);
        assert_eq!(MemBytes::from_kib(2.0), MemBytes(2048.0));
        assert_eq!(MemBytes::from_gib(1.0), MemBytes(1073741824.0));
        assert_eq!(FlopsPerSecond::from_gflops(1.5).gflops(), 1.5);
    }

    #[test]
    fn energy_time_power_triangle() {
        let e = Joules(1000.0);
        let p = Watts(250.0);
        assert_eq!(e / p, Seconds(4.0));
        assert_eq!(p * (e / p), e);
    }
}
