#![warn(missing_docs)]

//! Power-measurement substrate.
//!
//! The paper's energy numbers come from a **WattsUp Pro** wall-socket power
//! meter sitting between the A/C outlet and the node, read over serial USB
//! by the **HCLWATTSUP** tool, which subtracts the node's idle (static)
//! power from the integrated total to obtain *dynamic* energy. Neither the
//! meter nor the instrumented node is available here, so this crate
//! simulates the whole chain faithfully:
//!
//! * [`source`] — things that draw power over time: constant and piecewise
//!   loads, and composition of loads on a node with an idle floor;
//! * [`trace`] — timestamped power samples with trapezoidal energy
//!   integration;
//! * [`wattsup`] — the simulated meter: finite sample rate (1 Hz like the
//!   real device), 0.1 W quantization, Gaussian sensor noise;
//! * [`session`] — the HCLWATTSUP-style measurement session: capture an
//!   idle baseline, run the application, report total / static / dynamic
//!   energy;
//! * [`rapl`] — the real-hardware bridge: Intel RAPL energy counters via
//!   the Linux powercap sysfs, for metering the toolkit's real kernels on
//!   machines that expose them;
//! * [`error`] — the typed failure taxonomy ([`MeasureError`]) every layer
//!   of the pipeline propagates instead of panicking;
//! * [`meter`] — the [`Meter`] seam sessions measure through, so fallible
//!   meters slot in where the infallible simulation used to be hardwired;
//! * [`fault`] — a deterministic, seed-driven [`FaultInjectingMeter`]
//!   (dropouts, glitches, baseline drift, transient read failures) so the
//!   failure handling is testable without hardware.
//!
//! The simulation's purpose is *methodological* fidelity: measurement noise
//! and finite sampling force the statistics machinery (repetition until a
//! Student-t confidence interval is met) to do the same work it does in the
//! paper.

pub mod error;
pub mod fault;
pub mod meter;
pub mod rapl;
pub mod session;
pub mod source;
pub mod trace;
pub mod wattsup;

pub use error::MeasureError;
pub use fault::{FaultInjectingMeter, FaultPlan, GLITCH_POWER};
pub use meter::Meter;
pub use rapl::{RaplDomain, RaplReader};
pub use session::{EnergyReading, EnergySession, PLAUSIBLE_POWER_CAP};
pub use source::{CompositeLoad, ConstantLoad, PiecewiseLoad, PowerSource};
pub use trace::{PowerSample, PowerTrace};
pub use wattsup::{MeterSpec, SimulatedWattsUp};
