//! JSON round-trips of every artifact the `repro` binary can dump: the
//! structures must survive serialize → deserialize unchanged, since the
//! JSON files are the source of record for EXPERIMENTS.md.

use enprop_bench::figures;

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

/// Float comparison at JSON round-trip precision (last-ULP differences are
/// acceptable; structural corruption is not).
fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() <= 1e-12 * a.abs().max(b.abs())
}

#[test]
fn table1_roundtrip() {
    let v = figures::table1::generate();
    let back = roundtrip(&v);
    assert_eq!(format!("{v:?}"), format!("{back:?}"));
}

#[test]
fn fig1_roundtrip() {
    let v = figures::fig1::generate();
    let back = roundtrip(&v);
    assert_eq!(v.len(), back.len());
    for (a, b) in v.iter().zip(&back) {
        assert_eq!(a.processor, b.processor);
        assert_eq!(a.points.len(), b.points.len());
        assert_eq!(a.strong_ep.holds, b.strong_ep.holds);
        assert!(close(a.strong_ep.c, b.strong_ep.c));
    }
}

#[test]
fn fig6_roundtrip() {
    let v = figures::fig6::generate();
    let back = roundtrip(&v);
    for (a, b) in v.iter().zip(&back) {
        assert_eq!(a.gpu, b.gpu);
        assert_eq!(a.additive_from_n, b.additive_from_n);
        assert!(close(a.implied_component_w, b.implied_component_w));
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!((x.n, x.g), (y.n, y.g));
            assert!(close(x.energy, y.energy));
            assert!(close(x.nonadditivity, y.nonadditivity));
        }
    }
}

#[test]
fn fig8_roundtrip() {
    let v = figures::fig8::generate();
    let back = roundtrip(&v);
    for (a, b) in v.iter().zip(&back) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.cloud.len(), b.cloud.len());
        assert_eq!(a.global.front.len(), b.global.front.len());
        for (x, y) in a.cloud.iter().zip(&b.cloud) {
            assert_eq!(x.config, y.config);
            assert!(close(x.time.value(), y.time.value()));
            assert!(close(x.dynamic_energy.value(), y.dynamic_energy.value()));
        }
        assert_eq!(a.weak_ep.holds, b.weak_ep.holds);
        assert!(close(a.weak_ep.rel_spread, b.weak_ep.rel_spread));
    }
}

#[test]
fn theory_and_headline_roundtrip() {
    let t = figures::theory::generate();
    let tb = roundtrip(&t);
    assert_eq!(t.rows.len(), tb.rows.len());
    for (x, y) in t.rows.iter().zip(&tb.rows) {
        assert!(close(x.e3, y.e3));
        assert_eq!(x.holds, y.holds);
    }
    assert_eq!(t.all_hold, tb.all_hold);

    let h = figures::headline::generate();
    let hb = roundtrip(&h);
    for (a, b) in h.iter().zip(&hb) {
        assert_eq!(a.gpu, b.gpu);
        assert_eq!(a.per_size.len(), b.per_size.len());
        let (s1, d1) = a.max_savings.expect("savings present");
        let (s2, d2) = b.max_savings.expect("savings present");
        assert!(close(s1, s2) && close(d1, d2));
    }
}

#[test]
fn ablations_and_sensitivity_roundtrip() {
    let a = figures::ablations::generate();
    let ab = roundtrip(&a);
    assert_eq!(a.len(), ab.len());
    for (x, y) in a.iter().zip(&ab) {
        assert_eq!(x.mechanism, y.mechanism);
        assert!(close(x.with, y.with));
        assert!(close(x.without, y.without));
    }

    let s = figures::sensitivity::generate();
    let sb = roundtrip(&s);
    assert!(close(s.survival_rate, sb.survival_rate));
    assert_eq!(s.perturbations.len(), sb.perturbations.len());
}
