//! Bench + regeneration of Fig. 2 (P100 weak EP and Pareto regions at
//! N = 18432).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::fig2;

fn bench(c: &mut Criterion) {
    println!("{}", fig2::render());
    c.bench_function("fig2/generate", |b| b.iter(fig2::generate));
}

criterion_group!(benches, bench);
criterion_main!(benches);
