//! Cross-validation between independent implementations of the same
//! quantity: the functional emulator vs. the analytic CUPTI model, the
//! real kernels vs. the simulators' work accounting, and /proc/stat
//! round-trips through the application layer.

use enprop::cpusim::{BlasFlavor, CpuDgemmConfig, CpuSimulator, Partitioning, Pinning, ProcStat};
use enprop::gpusim::cupti::{CuptiCounter, CuptiReport};
use enprop::gpusim::emulator::{EmuDgemm, GlobalMem};
use enprop::gpusim::TiledDgemmConfig;
use enprop::kernels::{dgemm_naive, dgemm_threadgroups, Matrix, ThreadgroupConfig};

/// The emulator's measured event counts equal the analytic CUPTI model on
/// a grid of configurations — two independent derivations of the Fig. 5
/// kernel's behaviour.
#[test]
fn emulator_counts_equal_analytic_counts_on_grid() {
    for &(n, bs) in &[(8usize, 2usize), (12, 3), (16, 4), (16, 8), (24, 4)] {
        for &(g, r) in &[(1usize, 1usize), (2, 1), (1, 3), (2, 2)] {
            let cfg = TiledDgemmConfig { n, bs, g, r };
            let a = GlobalMem::from_slice(Matrix::filled(n, n, 1).as_slice());
            let b = GlobalMem::from_slice(Matrix::filled(n, n, 2).as_slice());
            let c = GlobalMem::zeroed(n * n);
            let events = EmuDgemm::new(cfg).run(&a, &b, &c);
            let analytic = CuptiReport::of(&cfg);
            assert_eq!(
                analytic.get(CuptiCounter::FlopCountDp).true_count,
                events.flops as u128,
                "flops n={n} bs={bs} g={g} r={r}"
            );
            assert_eq!(
                analytic.get(CuptiCounter::GldTransactions).true_count,
                events.global_loads as u128,
                "gld n={n} bs={bs} g={g} r={r}"
            );
            assert_eq!(
                analytic.get(CuptiCounter::BarrierSync).true_count,
                events.barriers as u128,
                "barriers n={n} bs={bs} g={g} r={r}"
            );
        }
    }
}

/// The emulator's numerical result equals the real CPU kernel's result —
/// the GPU and CPU implementations of the same matrix product agree.
#[test]
fn emulator_agrees_with_real_cpu_kernel() {
    let n = 24;
    let a = Matrix::filled(n, n, 3);
    let b = Matrix::filled(n, n, 4);

    // Real threadgroup kernel (one product).
    let mut c_cpu = Matrix::square(n);
    dgemm_threadgroups(
        ThreadgroupConfig { groups: 2, threads_per_group: 2, block_size: 8 },
        &a,
        &b,
        &mut c_cpu,
    );

    // Emulated GPU kernel (one product).
    let da = GlobalMem::from_slice(a.as_slice());
    let db = GlobalMem::from_slice(b.as_slice());
    let dc = GlobalMem::zeroed(n * n);
    EmuDgemm::new(TiledDgemmConfig { n, bs: 4, g: 1, r: 1 }).run(&da, &db, &dc);
    let c_gpu = dc.to_vec();

    let err = c_cpu
        .as_slice()
        .iter()
        .zip(&c_gpu)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max);
    assert!(err < 1e-10, "max err {err}");

    // And both agree with the naive reference.
    let mut reference = Matrix::square(n);
    dgemm_naive(1.0, &a, &b, 0.0, &mut reference);
    assert!(reference.max_abs_diff(&c_cpu) < 1e-10);
}

/// `/proc/stat` text produced by a simulated run parses back and yields
/// the run's utilization — the monitoring-tool path the paper uses.
#[test]
fn procstat_text_roundtrip_through_simulator() {
    let sim = CpuSimulator::haswell();
    let cfg = CpuDgemmConfig {
        partitioning: Partitioning::RowWise,
        pinning: Pinning::Compact,
        groups: 3,
        threads_per_group: 8,
        flavor: BlasFlavor::OpenBlas,
    };
    let run = sim.run_dgemm(&cfg, 8192);
    let (before, after) = run.procstat_snapshots();

    // Serialize to the kernel text format and back.
    let text_before = before.render();
    let text_after = after.render();
    assert_eq!(text_after.lines().count(), 49, "48 cpus + aggregate");
    let parsed_before = ProcStat::parse(&text_before).expect("parse before");
    let parsed_after = ProcStat::parse(&text_after).expect("parse after");

    let recovered = parsed_after.average_utilization_since(&parsed_before);
    let truth = run.average_utilization();
    assert!(
        (recovered.fraction() - truth.fraction()).abs() < 0.01,
        "{recovered} vs {truth}"
    );
}

/// The analytic model's flop accounting matches the emulator-scale reality:
/// `2 N³` per product, exactly, whenever BS | N.
#[test]
fn flop_accounting_exact_for_divisible_tiles() {
    for &(n, bs) in &[(16usize, 4usize), (32, 8), (24, 6)] {
        let rep = CuptiReport::of(&TiledDgemmConfig { n, bs, g: 1, r: 1 });
        assert_eq!(
            rep.get(CuptiCounter::FlopCountDp).true_count,
            2 * (n as u128).pow(3)
        );
    }
}
