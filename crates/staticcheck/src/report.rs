//! Structured results of static analysis: findings, fallbacks, reports.
//!
//! Static diagnostics reuse the dynamic sanitizer's [`Checker`] taxonomy
//! so a static finding and the dynamic finding for the same bug carry
//! the same checker / phase / buffer attribution — the fixture-parity
//! gate compares exactly those three fields.

use enprop_sanitize::report::{AccessKind, Checker, MemSpace};
use serde::Serialize;
use std::fmt;

/// One statically-derived diagnostic.
///
/// Unlike the dynamic sanitizer's findings (which name the concrete
/// access that tripped a checker), a static finding names a *witness*
/// derived from the affine summaries: concrete thread/cell coordinates
/// that realize the proven hazard.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StaticFinding {
    /// The checker taxonomy entry this finding maps to.
    pub checker: Checker,
    /// Phase attribution (the first phase the offending summary occupies).
    pub phase: Option<usize>,
    /// Memory space of the offending access.
    pub space: Option<MemSpace>,
    /// Registered buffer name (global memory only).
    pub buffer: Option<String>,
    /// Canonical one-line rendering.
    pub message: String,
}

impl fmt::Display for StaticFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Why a summary could not be proven — the typed reasons the analyzer
/// falls back to dynamic sanitizing instead of claiming a proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FallbackKind {
    /// The recorded accesses do not fit an affine form (e.g. the FFT's
    /// bit-reversed indexing), or fit one that later probes refute.
    NonAffine,
    /// The accesses are affine but outside the fragment the analytic
    /// checks can decide (e.g. occurrence-varying shared addresses).
    Unsupported,
}

impl FallbackKind {
    /// Lower-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackKind::NonAffine => "non-affine",
            FallbackKind::Unsupported => "unsupported",
        }
    }
}

/// A typed fallback: the launch (or one summary of it) must be checked
/// dynamically because static analysis cannot decide it.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fallback {
    /// Why the analyzer gave up.
    pub kind: FallbackKind,
    /// Phase attribution when known.
    pub phase: Option<usize>,
    /// Memory space when known.
    pub space: Option<MemSpace>,
    /// Buffer name when known.
    pub buffer: Option<String>,
    /// Human-readable explanation.
    pub detail: String,
}

impl Fallback {
    /// A fallback with full attribution.
    pub fn new(
        kind: FallbackKind,
        phase: Option<usize>,
        space: Option<MemSpace>,
        buffer: Option<&str>,
        detail: String,
    ) -> Self {
        Fallback { kind, phase, space, buffer: buffer.map(str::to_owned), detail }
    }

    /// A launch-level fallback (no phase/space attribution).
    pub fn launch(kind: FallbackKind, detail: String) -> Self {
        Fallback { kind, phase: None, space: None, buffer: None, detail }
    }
}

impl fmt::Display for Fallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "static fallback ({}): {}", self.kind.as_str(), self.detail)
    }
}

/// Static analysis result for one launch (or one lattice entry).
#[derive(Debug, Clone, Default, Serialize)]
pub struct StaticReport {
    /// What was analyzed (kernel label or config rendering).
    pub label: String,
    /// Proven hazards.
    pub findings: Vec<StaticFinding>,
    /// Summaries that must fall back to dynamic sanitizing.
    pub fallbacks: Vec<Fallback>,
}

impl StaticReport {
    /// An empty report for `label`.
    pub fn new(label: impl Into<String>) -> Self {
        StaticReport { label: label.into(), findings: Vec::new(), fallbacks: Vec::new() }
    }

    /// `true` when the launch is *proven* clean: no findings and nothing
    /// left undecided.
    pub fn proven_clean(&self) -> bool {
        self.findings.is_empty() && self.fallbacks.is_empty()
    }
}

/// `"write-write"` when both access kinds store, `"read-write"` otherwise.
pub(crate) fn hazard_label(a: AccessKind, b: AccessKind) -> &'static str {
    if a == AccessKind::Write && b == AccessKind::Write {
        "write-write"
    } else {
        "read-write"
    }
}
