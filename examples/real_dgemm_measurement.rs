//! Runs the paper's Fig. 3 threadgroup decomposition as *real compute* on
//! this machine — actual f64 matrix products on actual OS threads — and
//! applies the paper's statistical methodology to the measured wall times.
//!
//! The host has no wall-power meter, so energy is attached from the
//! calibrated Haswell power model: this demonstrates the full
//! measurement-analysis pipeline on genuine executions.
//!
//! ```text
//! cargo run --release --example real_dgemm_measurement [N]
//! ```

use enprop::kernels::{dgemm_threadgroups, Matrix, ThreadgroupConfig};
use enprop::stats::protocol::{measure_until_ci, MeasureConfig};
use enprop::units::{Joules, Seconds};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(384);
    let a = Matrix::filled(n, n, 1);
    let b = Matrix::filled(n, n, 2);
    let flops = 2.0 * (n as f64).powi(3);

    println!("real threadgroup DGEMM, N = {n} ({:.1e} flops per product):", flops);
    println!(
        "{:>10} {:>12} {:>10} {:>6} {:>10} {:>12}",
        "config", "time[s]", "Gflop/s", "reps", "imbalance", "E_d(model)[J]"
    );

    let protocol = MeasureConfig { max_reps: 15, ..MeasureConfig::default() };
    for (p, t) in [(1usize, 1usize), (1, 2), (2, 1), (1, 4), (2, 2), (4, 1)] {
        let cfg = ThreadgroupConfig { groups: p, threads_per_group: t, block_size: 48 };
        let mut last_imbalance = 0.0;
        // The paper's protocol: repeat the run until the sample mean of the
        // wall time lies in a 95% CI at 2.5% precision.
        let m = measure_until_ci(protocol, || {
            let mut c = Matrix::square(n);
            let run = dgemm_threadgroups(cfg, &a, &b, &mut c);
            last_imbalance = run.imbalance();
            run.wall_seconds
        });
        let gflops = flops / m.mean / 1.0e9;

        // Attach energy from the calibrated CPU power model: active threads
        // at full utilization for the measured duration.
        let sim = enprop::cpusim::CpuSimulator::haswell();
        let per_core =
            sim.topology().power.core_w * (p * t).min(sim.topology().physical_cores()) as f64;
        let energy: Joules =
            enprop::units::Watts(per_core + sim.topology().power.uncore_w * 0.5)
                * Seconds(m.mean);

        println!(
            "{:>10} {:>12.5} {:>10.2} {:>6} {:>9.1}% {:>12.2}",
            format!("p={p} t={t}"),
            m.mean,
            gflops,
            m.reps,
            last_imbalance * 100.0,
            energy.value()
        );
    }

    println!("\n(one thread per core, A and C row-banded per group, B shared — Fig. 3)");
}
