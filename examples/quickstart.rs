//! Quickstart: measure a workload's configurations, test energy
//! proportionality, and extract the energy/performance trade-off.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use enprop::ep::{StrongEpTest, WeakEpTest};
use enprop::gpusim::{GpuArch, TiledDgemm, TiledDgemmConfig};
use enprop::pareto::{BiPoint, TradeoffAnalysis};
use enprop::units::{Joules, Work};

fn main() {
    // 1. Pick a processor model — here the paper's P100 PCIe — and the
    //    application: G×R tiled matrix products of size N.
    let model = TiledDgemm::new(GpuArch::p100_pcie());
    let n = 10240;

    // 2. Sweep every application configuration solving the same workload.
    let configs = TiledDgemmConfig::enumerate(model.arch(), n, 8);
    println!("P100 PCIe, N = {n}: {} configurations solve the workload", configs.len());

    let points: Vec<(TiledDgemmConfig, f64, f64)> = configs
        .iter()
        .map(|cfg| {
            let e = model.estimate(cfg);
            (*cfg, e.time.value(), e.dynamic_energy().value())
        })
        .collect();

    // 3. Weak EP: is dynamic energy a constant across configurations?
    let energies: Vec<Joules> = points.iter().map(|p| Joules(p.2)).collect();
    let weak = WeakEpTest::default().run(&energies);
    println!(
        "weak EP {} — energies spread over {:.0}% (CV {:.2})",
        if weak.holds { "holds" } else { "is VIOLATED" },
        weak.rel_spread * 100.0,
        weak.cv
    );

    // 4. Strong EP: does dynamic energy grow linearly with work?
    //    (Vary the workload at the performance-optimal configuration.)
    let sweep: Vec<(Work, Joules)> = [2048usize, 4096, 8192, 12288, 16384]
        .iter()
        .map(|&nn| {
            let e = model.estimate(&TiledDgemmConfig { n: nn, bs: 32, g: 1, r: 1 });
            (Work(2.0 * (nn as f64).powi(3)), e.dynamic_energy())
        })
        .collect();
    let strong = StrongEpTest::default().run(&sweep);
    println!(
        "strong EP {} — worst departure from E = c·W is {:.0}%",
        if strong.holds { "holds" } else { "is VIOLATED" },
        strong.max_rel_residual * 100.0
    );

    // 5. Nonproportionality is an opportunity: compute the Pareto front
    //    and read off the paper's headline trade-off.
    let cloud: Vec<BiPoint> = points.iter().map(|p| BiPoint::new(p.1, p.2)).collect();
    let analysis = TradeoffAnalysis::of(&cloud);
    println!("\nglobal Pareto front ({} points):", analysis.len());
    for t in &analysis.front {
        let cfg = points[t.index].0;
        println!(
            "  BS={:<2} G={} R={}  time {:.3}s  E_d {:.0}J  (+{:.1}% time → −{:.1}% energy)",
            cfg.bs,
            cfg.g,
            cfg.r,
            t.point.time,
            t.point.energy,
            t.degradation * 100.0,
            t.savings * 100.0
        );
    }
    if let Some((savings, degradation)) = analysis.best_pair() {
        println!(
            "\ntolerating {:.0}% performance degradation saves {:.0}% dynamic energy",
            degradation * 100.0,
            savings * 100.0
        );
    }
}
