//! The Fig. 4 workflow on the simulated Haswell node: sweep the
//! (partitioning, threadgroups, threads-per-group) space for both BLAS
//! flavors, recover utilization through the emulated `/proc/stat`, and
//! show that dynamic power is a *non-functional* relation of average
//! utilization.
//!
//! ```text
//! cargo run --release --example cpu_utilization_study [N]
//! ```

use enprop::cpusim::{BlasFlavor, CpuDgemmConfig, CpuSimulator};
use enprop::stats::trend::{FunctionalTest, Plateau};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(17408);
    let sim = CpuSimulator::haswell();
    let logical = sim.topology().logical_cores();

    for flavor in [BlasFlavor::IntelMkl, BlasFlavor::OpenBlas] {
        let configs = CpuDgemmConfig::enumerate(logical, flavor);
        println!("== {} DGEMM, N = {n}: {} configurations ==", flavor.name(), configs.len());

        let mut labels = Vec::new();
        let mut utils = Vec::new();
        let mut powers = Vec::new();
        let mut gflops = Vec::new();
        for cfg in &configs {
            let run = sim.run_dgemm(cfg, n);
            // Utilization via the /proc/stat emulation — exactly the
            // interface the paper reads ("the first 'cpu' line aggregates
            // … 49 lines in total").
            let (before, after) = run.procstat_snapshots();
            labels.push(cfg.label());
            utils.push(after.average_utilization_since(&before).fraction());
            powers.push(run.dynamic_power.value());
            gflops.push(run.gflops);
        }

        if let Some(pl) = Plateau::detect(&utils, &gflops, 0.08) {
            println!(
                "performance: linear rise, then a plateau at {:.0} Gflop/s from {:.0}% utilization",
                pl.level,
                pl.onset_x * 100.0
            );
        }

        let f = FunctionalTest::run(&utils, &powers, 20, 0.15);
        println!(
            "power vs average utilization is {} — spread up to {:.0}% around {:.0}% utilization",
            if f.is_non_functional() { "NON-FUNCTIONAL" } else { "functional" },
            f.max_within_spread * 100.0,
            f.worst_x * 100.0
        );

        // Show a same-utilization band — the C/D lines of Fig. 4: same
        // average utilization, different power and performance.
        let target = f.worst_x;
        let mut band: Vec<usize> = (0..configs.len())
            .filter(|&i| (utils[i] - target).abs() < 0.02)
            .collect();
        band.sort_by(|&a, &b| powers[a].partial_cmp(&powers[b]).expect("NaN power"));
        println!("configurations near {:.0}% average utilization:", target * 100.0);
        let shown: Vec<usize> = if band.len() <= 6 {
            band.clone()
        } else {
            band[..3].iter().chain(&band[band.len() - 3..]).copied().collect()
        };
        for i in shown {
            println!(
                "  {:<22} util {:>5.1}%  power {:>6.1} W  perf {:>6.0} Gflop/s",
                labels[i],
                utils[i] * 100.0,
                powers[i],
                gflops[i]
            );
        }
        println!();
    }
}
