//! Probability distributions used by the measurement protocol:
//! Normal, Student-t and χ².

use crate::special::{erf, reg_beta, reg_gamma_p};

/// A normal (Gaussian) distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Location parameter μ.
    pub mean: f64,
    /// Scale parameter σ (> 0).
    pub sd: f64,
}

impl Normal {
    /// The standard normal `N(0, 1)`.
    pub const STANDARD: Normal = Normal { mean: 0.0, sd: 1.0 };

    /// Creates a normal distribution. Panics if `sd <= 0`.
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(sd > 0.0, "Normal requires sd > 0, got {sd}");
        Self { mean, sd }
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.sd;
        (-0.5 * z * z).exp() / (self.sd * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / (self.sd * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Quantile (inverse CDF) for `p ∈ (0, 1)`.
    ///
    /// Acklam's rational approximation refined with one Halley step;
    /// absolute error < 1e-12 across the open unit interval.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "inv_cdf requires p in (0,1), got {p}");
        self.mean + self.sd * standard_normal_quantile(p)
    }
}

/// Acklam's inverse-normal approximation with a Halley refinement step.
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method against the exact CDF.
    let e = Normal::STANDARD.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Student's t distribution with `df` degrees of freedom.
///
/// Drives the paper's stopping rule: the sample mean must lie in a 95%
/// confidence interval whose half-width is 2.5% of the mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    /// Degrees of freedom ν (> 0).
    pub df: f64,
}

impl StudentT {
    /// Creates a t distribution. Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "StudentT requires df > 0, got {df}");
        Self { df }
    }

    /// Probability density at `t`.
    pub fn pdf(&self, t: f64) -> f64 {
        let v = self.df;
        let ln_c = crate::special::ln_gamma((v + 1.0) / 2.0)
            - crate::special::ln_gamma(v / 2.0)
            - 0.5 * (v * std::f64::consts::PI).ln();
        (ln_c - (v + 1.0) / 2.0 * (1.0 + t * t / v).ln()).exp()
    }

    /// Cumulative distribution function at `t`.
    pub fn cdf(&self, t: f64) -> f64 {
        let v = self.df;
        let x = v / (v + t * t);
        let tail = 0.5 * reg_beta(v / 2.0, 0.5, x);
        if t >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Quantile (inverse CDF) for `p ∈ (0, 1)`, by bisection on the CDF.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "inv_cdf requires p in (0,1), got {p}");
        if (p - 0.5).abs() < 1e-15 {
            return 0.0;
        }
        // Bracket the root; t quantiles are modest for the p we use.
        let (mut lo, mut hi) = (-1.0e3, 1.0e3);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Two-sided critical value `t*` such that `P(|T| <= t*) = confidence`.
    ///
    /// E.g. `StudentT::new(9.0).two_sided_critical(0.95)` ≈ 2.262.
    pub fn two_sided_critical(&self, confidence: f64) -> f64 {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1), got {confidence}"
        );
        self.inv_cdf(0.5 + confidence / 2.0)
    }
}

/// χ² distribution with `k` degrees of freedom.
///
/// Used for Pearson's χ² goodness-of-fit normality check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    /// Degrees of freedom k (> 0).
    pub df: f64,
}

impl ChiSquared {
    /// Creates a χ² distribution. Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "ChiSquared requires df > 0, got {df}");
        Self { df }
    }

    /// Cumulative distribution function at `x ≥ 0`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        reg_gamma_p(self.df / 2.0, x / 2.0)
    }

    /// Upper-tail probability `P(X > x)` — the p-value of a χ² statistic.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF) for `p ∈ (0, 1)`, by bisection.
    pub fn inv_cdf(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "inv_cdf requires p in (0,1), got {p}");
        let (mut lo, mut hi) = (0.0, self.df * 100.0 + 100.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-10 {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn normal_cdf_table() {
        let n = Normal::STANDARD;
        close(n.cdf(0.0), 0.5, 1e-12);
        close(n.cdf(1.0), 0.8413447460685429, 1e-10);
        close(n.cdf(-1.96), 0.024997895148220435, 1e-9);
        close(n.cdf(2.575), 0.9949883, 1e-6);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(10.0, 2.0);
        for &p in &[0.001, 0.025, 0.1, 0.5, 0.9, 0.975, 0.999] {
            close(n.cdf(n.inv_cdf(p)), p, 1e-10);
        }
    }

    #[test]
    fn normal_pdf_integrates_to_one() {
        // Crude trapezoid over ±8σ.
        let n = Normal::new(-3.0, 0.7);
        let (a, b, steps) = (-3.0 - 8.0 * 0.7, -3.0 + 8.0 * 0.7, 20000);
        let h = (b - a) / steps as f64;
        let mut total = 0.5 * (n.pdf(a) + n.pdf(b));
        for i in 1..steps {
            total += n.pdf(a + i as f64 * h);
        }
        close(total * h, 1.0, 1e-8);
    }

    #[test]
    fn student_t_critical_values_match_tables() {
        // Standard two-sided 95% critical values.
        close(StudentT::new(1.0).two_sided_critical(0.95), 12.706, 2e-3);
        close(StudentT::new(4.0).two_sided_critical(0.95), 2.776, 1e-3);
        close(StudentT::new(9.0).two_sided_critical(0.95), 2.262, 1e-3);
        close(StudentT::new(29.0).two_sided_critical(0.95), 2.045, 1e-3);
        // t → normal as df → ∞.
        close(StudentT::new(1.0e6).two_sided_critical(0.95), 1.95996, 1e-3);
    }

    #[test]
    fn student_t_cdf_symmetry() {
        let t = StudentT::new(7.0);
        for &x in &[0.3, 1.1, 2.7] {
            close(t.cdf(x) + t.cdf(-x), 1.0, 1e-12);
        }
        close(t.cdf(0.0), 0.5, 1e-12);
    }

    #[test]
    fn student_t_pdf_nonnegative_and_peaked_at_zero() {
        let t = StudentT::new(5.0);
        assert!(t.pdf(0.0) > t.pdf(1.0));
        assert!(t.pdf(1.0) > t.pdf(3.0));
        assert!(t.pdf(-2.0) > 0.0);
        close(t.pdf(2.0), t.pdf(-2.0), 1e-14);
    }

    #[test]
    fn chi_squared_table() {
        // Known upper critical values: χ²_{0.95, k}.
        close(ChiSquared::new(1.0).inv_cdf(0.95), 3.841, 2e-3);
        close(ChiSquared::new(5.0).inv_cdf(0.95), 11.070, 2e-3);
        close(ChiSquared::new(10.0).inv_cdf(0.95), 18.307, 2e-3);
    }

    #[test]
    fn chi_squared_sf_complements_cdf() {
        let c = ChiSquared::new(6.0);
        for &x in &[0.5, 3.0, 10.0, 25.0] {
            close(c.cdf(x) + c.sf(x), 1.0, 1e-12);
        }
        assert_eq!(c.cdf(0.0), 0.0);
        assert_eq!(c.cdf(-1.0), 0.0);
    }
}
