#![warn(missing_docs)]

//! Multicore CPU simulator: the substitute for the paper's dual-socket
//! Intel Haswell E5-2670 v3 node.
//!
//! The paper's CPU study (§III, Fig. 4) runs Intel-MKL and OpenBLAS DGEMM
//! under a threadgroup harness and observes that dynamic power is a
//! *non-functional* relation of average CPU utilization: configurations
//! with the same mean utilization draw different power because their
//! per-core utilization *distributions* differ — precisely the mechanism
//! the paper's two-core theorem formalizes.
//!
//! The simulator reproduces that generating mechanism:
//!
//! * [`topology`] — sockets / physical cores / SMT, clocks and caches
//!   (Table I's Haswell preset);
//! * [`procstat`] — a faithful `/proc/stat` emulation (jiffies per logical
//!   CPU, render + parse + utilization-between-snapshots), because that is
//!   the interface the paper measures utilization through;
//! * [`config`] — the application configuration space: matrix partitioning
//!   × number of threadgroups × threads per group × BLAS flavor;
//! * [`sim`] — the execution model: per-thread throughput with SMT and
//!   memory-roofline contention, per-core utilization synthesis, and the
//!   dynamic-power aggregation including the dTLB page-walk term that
//!   Khokhriakov et al. identify as the energy-nonproportional component;
//! * [`fft_model`] — the CPU side of the strong-EP study (Fig. 1).

pub mod config;
pub mod dvfs;
pub mod fft_model;
pub mod procstat;
pub mod sim;
pub mod topology;

pub use config::{BlasFlavor, CpuDgemmConfig, Partitioning, Pinning};
pub use dvfs::{account_trace, DvfsTable, Governor, GovernorSim, PState, TraceSummary};
pub use procstat::{CpuTimes, ProcStat};
pub use sim::{CpuRunEstimate, CpuSimulator};
pub use topology::{CpuPowerModel, CpuTopology};
