//! The cooperative barrier-phase block interpreter.
//!
//! CUDA kernels written for this emulator are expressed as an explicit
//! phase state machine: a [`BlockKernel`] carries per-thread state and a
//! [`run_phase`](BlockKernel::run_phase) body holding the code *between*
//! `__syncthreads` boundaries. One host thread executes all threads of a
//! block in lockstep phase order — phase `p` runs for every thread of the
//! block before phase `p + 1` starts — which reproduces the barrier's
//! ordering guarantees exactly, without spawning an OS thread per CUDA
//! thread, without a [`std::sync::Barrier`], and without atomic bit-store
//! memories. Event counts accumulate in plain per-block counters
//! ([`BlockCounters`]) flushed once into the launch-wide
//! [`EventCounters`] at block retirement.
//!
//! # Instrumentation: the [`AccessSink`] seam
//!
//! Every emulated memory access funnels through the four [`PhaseCtx`]
//! accessors, which makes them the natural instrumentation point — the
//! same seam NVIDIA's `compute-sanitizer` exploits by binary-patching
//! loads and stores on real hardware. [`PhaseCtx`] is generic over an
//! [`AccessSink`] that observes each access (with full block/thread/phase
//! attribution) *before* it happens and may veto it; the default
//! [`NoSink`] compiles every hook to an inlined `true`, so the
//! uninstrumented hot path is monomorphized back to exactly the
//! un-instrumented code — zero overhead. `crates/sanitizer` builds its
//! racecheck/memcheck analyses on this trait.
//!
//! The barrier-misuse detection the OS-thread engine got from a real
//! barrier (deadlock) is preserved, but *loudly*: if the threads of a
//! block disagree on whether another phase follows — some return
//! [`PhaseOutcome::Sync`], others [`PhaseOutcome::Done`] — the plain
//! interpreter panics with a diagnostic instead of hanging, while the
//! monitored interpreter ([`run_grid_monitored`]) returns the divergence
//! as a structured [`BlockExit::Diverged`] naming the early-retired
//! threads (the sanitizer's synccheck).
//!
//! Blocks are independent (no inter-block communication in this model),
//! so the grid is executed in parallel *across blocks* by a small worker
//! pool whose width — the "wave" width, analogous to blocks resident
//! across SMs — comes from [`WavePlan`]: the host's
//! `available_parallelism`, optionally capped by the architecture's
//! occupancy-limited resident-block count, and overridable for tests.
//!
//! The previous engine (one OS thread per CUDA thread) lives on in
//! [`super::legacy`] solely so equivalence tests can assert the two
//! engines produce identical results and event counts.

use super::mem::{BlockCounters, BufId, EventCounters, GlobalMem};
use crate::arch::GpuArch;
use crate::occupancy::Occupancy;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A 2-D extent (grid or block dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim2 {
    /// Extent along x.
    pub x: usize,
    /// Extent along y.
    pub y: usize,
}

impl Dim2 {
    /// Creates an extent; both dimensions must be positive.
    pub fn new(x: usize, y: usize) -> Self {
        assert!(x > 0 && y > 0, "dimensions must be positive");
        Self { x, y }
    }

    /// Total elements `x × y`.
    pub fn count(&self) -> usize {
        self.x * self.y
    }
}

/// What a thread did at the end of a phase segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// The thread reached a `__syncthreads` — another phase follows.
    Sync,
    /// The thread returned from the kernel.
    Done,
}

/// Full attribution of one emulated memory access: which thread of which
/// block touched memory, and in which barrier phase. Handed to every
/// [`AccessSink`] hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPoint {
    /// `blockIdx.x`.
    pub bx: usize,
    /// `blockIdx.y`.
    pub by: usize,
    /// `threadIdx.x`.
    pub tx: usize,
    /// `threadIdx.y`.
    pub ty: usize,
    /// The barrier phase the access occurs in.
    pub phase: usize,
}

impl AccessPoint {
    /// The thread coordinate `(tx, ty)`.
    pub fn thread(&self) -> (usize, usize) {
        (self.tx, self.ty)
    }

    /// The block coordinate `(bx, by)`.
    pub fn block(&self) -> (usize, usize) {
        (self.bx, self.by)
    }
}

/// Observer of every memory access a kernel performs — the emulator's
/// `compute-sanitizer` attach point.
///
/// Each hook fires *before* the access with full [`AccessPoint`]
/// attribution plus the index and the allocation length, and returns
/// whether the access should proceed. Returning `false` suppresses it:
/// a suppressed load reads `0.0`, a suppressed store is dropped — which
/// is how the sanitizer's memcheck survives an out-of-bounds access long
/// enough to report it instead of tearing the process down. Event
/// counters are bumped either way, so a sink that never suppresses is
/// observationally transparent.
///
/// The default implementation, [`NoSink`], answers `true` from inlined
/// empty bodies; monomorphization erases it entirely, keeping the
/// uninstrumented interpreter at zero overhead.
pub trait AccessSink {
    /// Whether this sink is statically known to observe nothing — `true`
    /// only for sinks whose hooks are inlined no-ops ([`NoSink`]).
    ///
    /// The interpreter consults this constant (a compile-time branch,
    /// erased by monomorphization) to decide whether a kernel's batched
    /// fast path ([`BlockKernel::run_phase_batch`]) may replace the
    /// per-thread scalar loop: batched bodies perform the same memory
    /// accesses but do not report them one by one, so they are only
    /// admissible when no sink is listening — or when the sink consumes
    /// per-phase bulk records instead ([`AccessSink::BULK`]). Plain
    /// instrumented runs (`INERT = false`, `BULK = false`) always take
    /// the scalar loop and see every access one by one.
    const INERT: bool = false;

    /// Whether this sink consumes per-phase **bulk** access records
    /// ([`observe_shared_batch`](AccessSink::observe_shared_batch) /
    /// [`observe_global_batch`](AccessSink::observe_global_batch)),
    /// letting kernels with batched phase bodies run under monitoring
    /// without falling back to the scalar interpreter.
    ///
    /// A bulk sink observes the same accesses with the same
    /// block/thread/phase attribution, but *after* the phase body ran
    /// rather than before each access — so it cannot veto (suppress) an
    /// access. That is sound for the monitoring use case: batched bodies
    /// bounds-check every access themselves (an overrun panics instead of
    /// proceeding), and kernels whose phases need veto-based survival
    /// (the sanitizer's buggy fixtures) carry no batched bodies, so they
    /// take the scalar hook path regardless of this flag.
    const BULK: bool = false;

    /// A shared-memory load of `idx` (allocation length `len`).
    fn shared_load(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool;

    /// A shared-memory store to `idx` (allocation length `len`).
    fn shared_store(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool;

    /// A global-memory load of `idx` from allocation `buf` (length `len`).
    fn global_load(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool;

    /// A global-memory store to `idx` of allocation `buf` (length `len`).
    fn global_store(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool;

    /// Consumes one batched phase's shared-memory access records (block
    /// `(bx, by)`, barrier phase `phase`, shared allocation length `len`).
    ///
    /// Records arrive in scalar program order per thread, threads in
    /// row-major order — the same per-cell access order the scalar loop
    /// would have reported. The default implementation replays each
    /// record through the scalar hooks (veto answers are ignored; see
    /// [`AccessSink::BULK`]).
    fn observe_shared_batch(
        &mut self,
        bx: usize,
        by: usize,
        phase: usize,
        len: usize,
        batch: &SharedBatch,
    ) {
        for a in batch.iter() {
            let at = AccessPoint { bx, by, tx: a.tx, ty: a.ty, phase };
            if a.store {
                self.shared_store(at, a.idx, len);
            } else {
                self.shared_load(at, a.idx, len);
            }
        }
    }

    /// Consumes one batched phase's global-memory access records,
    /// grouped into per-buffer runs (each run names the allocation and
    /// its length). Within a run, records are in scalar program order
    /// per thread, threads in row-major order; per-buffer shadow state
    /// is independent, so regrouping by buffer is unobservable. The
    /// default implementation replays through the scalar hooks.
    fn observe_global_batch(&mut self, bx: usize, by: usize, phase: usize, batch: &GlobalBatch) {
        for run in batch.runs() {
            for a in run.accesses() {
                let at = AccessPoint { bx, by, tx: a.tx, ty: a.ty, phase };
                if a.store {
                    self.global_store(at, run.buf, a.idx, run.len);
                } else {
                    self.global_load(at, run.buf, a.idx, run.len);
                }
            }
        }
    }
}

/// One decoded access record from a [`SharedBatch`] or [`GlobalBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAccess {
    /// `threadIdx.x` of the accessing thread.
    pub tx: usize,
    /// `threadIdx.y` of the accessing thread.
    pub ty: usize,
    /// The accessed cell index.
    pub idx: usize,
    /// `true` for a store, `false` for a load.
    pub store: bool,
}

/// Packs one access into a 64-bit word: bit 0 = store flag, bits 1..32 =
/// cell index, bits 32..48 = tx, bits 48..64 = ty. The ranges comfortably
/// cover every kernel in this tree (shared regions are KiB-scale, block
/// dimensions are bounded by the architecture's 1024-thread block limit);
/// emission debug-asserts the bounds.
#[inline(always)]
fn encode_access(tx: usize, ty: usize, idx: usize, store: bool) -> u64 {
    debug_assert!(idx < (1 << 31), "batch access index {idx} exceeds the 31-bit record field");
    debug_assert!(tx < (1 << 16) && ty < (1 << 16), "thread ({tx}, {ty}) exceeds 16-bit fields");
    store as u64 | ((idx as u64) << 1) | ((tx as u64) << 32) | ((ty as u64) << 48)
}

#[inline(always)]
fn decode_access(word: u64) -> BatchAccess {
    BatchAccess {
        tx: ((word >> 32) & 0xffff) as usize,
        ty: (word >> 48) as usize,
        idx: ((word >> 1) & 0x7fff_ffff) as usize,
        store: word & 1 != 0,
    }
}

/// The shared-memory access records of one batched phase, packed one
/// access per 64-bit word (see [`BatchAccess`] for the decoded view).
/// Batched phase bodies append records in scalar program order per
/// thread, threads row-major — the order the scalar loop reports.
#[derive(Debug, Default)]
pub struct SharedBatch {
    words: Vec<u64>,
}

impl SharedBatch {
    /// Appends a load record for thread `(tx, ty)` at cell `idx`.
    #[inline(always)]
    pub fn push_load(&mut self, tx: usize, ty: usize, idx: usize) {
        self.words.push(encode_access(tx, ty, idx, false));
    }

    /// Appends a store record for thread `(tx, ty)` at cell `idx`.
    #[inline(always)]
    pub fn push_store(&mut self, tx: usize, ty: usize, idx: usize) {
        self.words.push(encode_access(tx, ty, idx, true));
    }

    /// Number of recorded accesses.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no access was recorded.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Drops all records, keeping the allocation for the next phase.
    pub fn clear(&mut self) {
        self.words.clear();
    }

    /// Pre-sizes the record buffer for a phase of `n` accesses.
    pub fn reserve(&mut self, n: usize) {
        self.words.reserve(n);
    }

    /// Decoded records in emission order.
    pub fn iter(&self) -> impl Iterator<Item = BatchAccess> + '_ {
        self.words.iter().map(|&w| decode_access(w))
    }
}

/// The global-memory access records of one batched phase, grouped into
/// per-buffer runs. A batched body opens a run with
/// [`begin_run`](GlobalBatch::begin_run) and appends that buffer's
/// records; per-buffer shadow state is independent, so emitting one
/// buffer's accesses before another's is unobservable to the checkers
/// even where the scalar loop interleaved them.
#[derive(Debug, Default)]
pub struct GlobalBatch {
    /// `(buffer, allocation length, starting word offset)` per run; a
    /// run's records end where the next run starts (or at `words.len()`).
    runs: Vec<(BufId, usize, usize)>,
    words: Vec<u64>,
}

/// One per-buffer run of records inside a [`GlobalBatch`].
#[derive(Debug, Clone, Copy)]
pub struct GlobalRun<'a> {
    /// The accessed allocation.
    pub buf: BufId,
    /// The allocation's length in doubles.
    pub len: usize,
    words: &'a [u64],
}

impl GlobalRun<'_> {
    /// Decoded records of this run in emission order.
    pub fn accesses(&self) -> impl Iterator<Item = BatchAccess> + '_ {
        self.words.iter().map(|&w| decode_access(w))
    }
}

impl GlobalBatch {
    /// Starts a run of records against `buf` (allocation length `len`).
    pub fn begin_run(&mut self, buf: BufId, len: usize) {
        self.runs.push((buf, len, self.words.len()));
    }

    /// Appends a load record for thread `(tx, ty)` at cell `idx` of the
    /// current run's buffer.
    #[inline(always)]
    pub fn push_load(&mut self, tx: usize, ty: usize, idx: usize) {
        debug_assert!(!self.runs.is_empty(), "global batch record before begin_run");
        self.words.push(encode_access(tx, ty, idx, false));
    }

    /// Appends a store record for thread `(tx, ty)` at cell `idx` of the
    /// current run's buffer.
    #[inline(always)]
    pub fn push_store(&mut self, tx: usize, ty: usize, idx: usize) {
        debug_assert!(!self.runs.is_empty(), "global batch record before begin_run");
        self.words.push(encode_access(tx, ty, idx, true));
    }

    /// Number of recorded accesses across all runs.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no access was recorded.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Drops all records and runs, keeping the allocations.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.words.clear();
    }

    /// Pre-sizes the record buffer for a phase of `n` accesses.
    pub fn reserve(&mut self, n: usize) {
        self.words.reserve(n);
    }

    /// The per-buffer runs in emission order.
    pub fn runs(&self) -> impl Iterator<Item = GlobalRun<'_>> + '_ {
        (0..self.runs.len()).map(move |i| {
            let (buf, len, start) = self.runs[i];
            let end = self.runs.get(i + 1).map_or(self.words.len(), |&(_, _, s)| s);
            GlobalRun { buf, len, words: &self.words[start..end] }
        })
    }
}

/// The access trace of one batched phase: everything a bulk sink needs to
/// reconstruct what the scalar loop would have reported.
#[derive(Debug, Default)]
pub struct PhaseTrace {
    /// Shared-memory records.
    pub shared: SharedBatch,
    /// Global-memory records, grouped per buffer.
    pub global: GlobalBatch,
}

impl PhaseTrace {
    /// Drops all records, keeping allocations for the next phase.
    pub fn clear(&mut self) {
        self.shared.clear();
        self.global.clear();
    }
}

/// The inert sink: every hook is an inlined `true`, so the compiler
/// erases the instrumentation from the uninstrumented path entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSink;

impl AccessSink for NoSink {
    const INERT: bool = true;

    #[inline(always)]
    fn shared_load(&mut self, _at: AccessPoint, _idx: usize, _len: usize) -> bool {
        true
    }

    #[inline(always)]
    fn shared_store(&mut self, _at: AccessPoint, _idx: usize, _len: usize) -> bool {
        true
    }

    #[inline(always)]
    fn global_load(&mut self, _at: AccessPoint, _buf: BufId, _idx: usize, _len: usize) -> bool {
        true
    }

    #[inline(always)]
    fn global_store(&mut self, _at: AccessPoint, _buf: BufId, _idx: usize, _len: usize) -> bool {
        true
    }
}

/// A transparent sink that is deliberately **not** inert: every hook
/// answers `true` from an empty body, but `INERT` stays `false`, so the
/// interpreter keeps the per-thread scalar loop even for kernels that
/// carry a batched body.
///
/// This is the "before" side of the batched-vs-scalar benchmark and the
/// oracle of the batch-equivalence suite: a [`ScalarProbe`] run executes
/// exactly the pre-batching code path, letting tests assert that the
/// batched fast path is bitwise-identical (memory contents *and* flushed
/// event counters) to the scalar interpreter it replaced.
#[derive(Debug, Default, Clone, Copy)]
#[must_use]
pub struct ScalarProbe;

impl AccessSink for ScalarProbe {
    #[inline(always)]
    fn shared_load(&mut self, _at: AccessPoint, _idx: usize, _len: usize) -> bool {
        true
    }

    #[inline(always)]
    fn shared_store(&mut self, _at: AccessPoint, _idx: usize, _len: usize) -> bool {
        true
    }

    #[inline(always)]
    fn global_load(&mut self, _at: AccessPoint, _buf: BufId, _idx: usize, _len: usize) -> bool {
        true
    }

    #[inline(always)]
    fn global_store(&mut self, _at: AccessPoint, _buf: BufId, _idx: usize, _len: usize) -> bool {
        true
    }
}

/// Pins any sink to the per-thread scalar loop by masking its bulk
/// capability: `INERT` and `BULK` both stay `false` whatever the wrapped
/// sink declares, so every access flows through the scalar hooks one by
/// one. The "before" side of the batched-monitored benchmark and the
/// oracle for monitored batch equivalence.
#[derive(Debug, Default)]
#[must_use]
pub struct ForceScalar<S>(pub S);

impl<S: AccessSink> AccessSink for ForceScalar<S> {
    #[inline(always)]
    fn shared_load(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
        self.0.shared_load(at, idx, len)
    }

    #[inline(always)]
    fn shared_store(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
        self.0.shared_store(at, idx, len)
    }

    #[inline(always)]
    fn global_load(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
        self.0.global_load(at, buf, idx, len)
    }

    #[inline(always)]
    fn global_store(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
        self.0.global_store(at, buf, idx, len)
    }
}

/// How a block's execution ended under the monitored interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockExit {
    /// Every thread returned from the kernel in the same phase.
    Retired,
    /// Barrier divergence: in `phase`, the `synced` threads reached
    /// `__syncthreads` while the `returned` threads exited the kernel —
    /// on real hardware the block would deadlock. The monitored
    /// interpreter stops the block here (no further phase can run) and
    /// reports both sides.
    Diverged {
        /// The phase in which the threads disagreed.
        phase: usize,
        /// Threads `(tx, ty)` that reached the barrier.
        synced: Vec<(usize, usize)>,
        /// Threads `(tx, ty)` that retired early.
        returned: Vec<(usize, usize)>,
    },
}

/// A kernel expressed as barrier-delimited phases over per-thread state.
///
/// [`run_phase`](BlockKernel::run_phase) holds the straight-line code of
/// one segment between `__syncthreads` boundaries (loops whose body spans
/// a barrier become state-machine steps, with induction variables stored
/// in [`State`](BlockKernel::State)). Every thread of a block must return
/// the same [`PhaseOutcome`] from a given phase — the CUDA requirement
/// that `__syncthreads` is reached uniformly — and the interpreter
/// enforces it.
///
/// `run_phase` is generic over the [`AccessSink`] so the same kernel body
/// runs uninstrumented ([`NoSink`], zero overhead) or under the sanitizer
/// without duplication.
pub trait BlockKernel: Sync {
    /// Per-thread state carried across phases (registers + the program
    /// counter of the implicit coroutine).
    type State: Send;

    /// Block dimensions (`blockDim`).
    fn block(&self) -> Dim2;

    /// Doubles of per-block shared memory.
    fn shared_len(&self) -> usize;

    /// Builds the state of thread `(tx, ty)` of block `(bx, by)`.
    fn init(&self, bx: usize, by: usize, tx: usize, ty: usize) -> Self::State;

    /// Executes phase `phase` for one thread.
    fn run_phase<S: AccessSink>(
        &self,
        phase: usize,
        state: &mut Self::State,
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome;

    /// Optional batched fast path: executes `phase` for **every** thread
    /// of the block in one call, over the structure-of-arrays view the
    /// interpreter maintains (`states` in row-major thread order,
    /// contiguous shared memory, bulk event counters in [`BatchCtx`]).
    ///
    /// Returning `None` (the default) makes the interpreter fall back to
    /// looping the scalar [`run_phase`](BlockKernel::run_phase) over the
    /// threads, so existing kernels keep working unchanged. A kernel that
    /// returns `Some(outcome)` asserts that every thread of the block
    /// finished the phase with that same outcome — which is the CUDA
    /// uniformity requirement anyway; a kernel whose threads can diverge
    /// must answer `None` for the divergent phase so the scalar loop can
    /// report the divergence per thread.
    ///
    /// # Contract (checked by the batch-equivalence suite)
    ///
    /// The batched body must be observationally identical to the scalar
    /// loop: same memory contents bit for bit (each thread's arithmetic
    /// in the same order — reassociating a per-thread accumulation is a
    /// contract violation), and the same event-counter totals. Per-access
    /// ordering between *different* threads may differ, which is
    /// unobservable for a race-free phase. The hook runs when no
    /// [`AccessSink`] is attached ([`AccessSink::INERT`]) **or** when the
    /// attached sink consumes bulk records ([`AccessSink::BULK`]); plain
    /// per-access sinks take the scalar loop, so their veto semantics are
    /// untouched.
    ///
    /// When the interpreter demands an access trace
    /// ([`BatchCtx::tracing`] is `true` — a bulk sink is attached), the
    /// body must either record **every** shared and global access of the
    /// phase into [`BatchCtx::trace`] with exact thread/index/kind
    /// attribution, or return `None` for that phase so the scalar loop
    /// reports the accesses itself. Silently computing without emitting
    /// the trace would blind the sanitizer.
    fn run_phase_batch(
        &self,
        phase: usize,
        states: &mut [Self::State],
        ctx: &mut BatchCtx<'_>,
    ) -> Option<PhaseOutcome> {
        let _ = (phase, states, ctx);
        None
    }
}

/// Block-wide execution context of one batched phase: the whole block's
/// shared memory and event counters, without the per-thread bookkeeping
/// of [`PhaseCtx`].
///
/// A batched kernel body addresses shared memory directly as a contiguous
/// slice ([`shared`](BatchCtx::shared)), performs bounds-checked global
/// accesses without per-access event accounting
/// ([`global_load`](BatchCtx::global_load) /
/// [`global_store`](BatchCtx::global_store)), and adds its event counts
/// in bulk ([`counters`](BatchCtx::counters)) — one add per phase instead
/// of one per access. The totals must match what the scalar loop would
/// have counted; the batch-equivalence suite enforces it.
#[must_use]
pub struct BatchCtx<'a> {
    /// This block's `blockIdx.x`.
    pub bx: usize,
    /// This block's `blockIdx.y`.
    pub by: usize,
    /// The barrier phase being executed.
    pub phase: usize,
    shared: &'a mut [f64],
    counts: &'a mut BlockCounters,
    /// Present when a bulk sink is attached: the body must record every
    /// access of the phase here (see [`BlockKernel::run_phase_batch`]).
    trace: Option<&'a mut PhaseTrace>,
}

impl BatchCtx<'_> {
    /// The block's shared memory as one contiguous slice.
    #[inline]
    pub fn shared(&mut self) -> &mut [f64] {
        self.shared
    }

    /// Whether the interpreter demands an access trace for this phase —
    /// `true` exactly when a bulk sink ([`AccessSink::BULK`]) is
    /// attached. A body that cannot trace a phase must return `None`
    /// when this is `true`.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The phase's access-record buffers, when tracing is demanded.
    #[inline]
    pub fn trace(&mut self) -> Option<&mut PhaseTrace> {
        self.trace.as_deref_mut()
    }

    /// The block's event counters, for bulk accounting. The batched body
    /// is responsible for adding exactly what the scalar loop would have
    /// counted (flops, shared/global loads and stores).
    #[inline]
    pub fn counters(&mut self) -> &mut BlockCounters {
        self.counts
    }

    /// Bounds-checked global load *without* event accounting — count the
    /// phase's loads in bulk via [`counters`](BatchCtx::counters).
    #[inline]
    pub fn global_load(&self, mem: &GlobalMem, idx: usize) -> f64 {
        mem.load(idx)
    }

    /// Bounds-checked global store *without* event accounting — count the
    /// phase's stores in bulk via [`counters`](BatchCtx::counters).
    #[inline]
    pub fn global_store(&self, mem: &GlobalMem, idx: usize, v: f64) {
        mem.store(idx, v)
    }
}

/// Per-thread view of a block's execution context during one phase: the
/// thread/block coordinates plus shared memory, global memory access and
/// event accounting. The emulator's equivalent of `threadIdx`/`blockIdx`
/// and the device intrinsics, minus `__syncthreads` — which is implicit
/// in returning [`PhaseOutcome::Sync`].
///
/// Generic over the attached [`AccessSink`]; the default [`NoSink`] keeps
/// the accessors identical to uninstrumented code after inlining.
pub struct PhaseCtx<'a, S: AccessSink = NoSink> {
    /// This thread's `threadIdx.x`.
    pub tx: usize,
    /// This thread's `threadIdx.y`.
    pub ty: usize,
    /// This block's `blockIdx.x`.
    pub bx: usize,
    /// This block's `blockIdx.y`.
    pub by: usize,
    /// The barrier phase being executed.
    pub phase: usize,
    shared: &'a mut [f64],
    counts: &'a mut BlockCounters,
    sink: &'a mut S,
}

impl<S: AccessSink> PhaseCtx<'_, S> {
    /// This access's full attribution.
    #[inline]
    fn point(&self) -> AccessPoint {
        AccessPoint { bx: self.bx, by: self.by, tx: self.tx, ty: self.ty, phase: self.phase }
    }

    /// Panics with full attribution on an out-of-bounds access that no
    /// sink suppressed.
    #[cold]
    #[inline(never)]
    fn oob(&self, kind: &str, op: &str, idx: usize, len: usize) -> ! {
        panic!(
            "{kind} memory {op} out of bounds: index {idx} >= len {len} \
             at block ({}, {}) thread ({}, {}) phase {}",
            self.bx, self.by, self.tx, self.ty, self.phase
        )
    }

    /// Shared-memory load with event accounting.
    #[inline]
    pub fn shared_load(&mut self, idx: usize) -> f64 {
        self.counts.shared_loads += 1;
        let (at, len) = (self.point(), self.shared.len());
        if self.sink.shared_load(at, idx, len) {
            match self.shared.get(idx) {
                Some(v) => *v,
                None => self.oob("shared", "load", idx, len),
            }
        } else {
            0.0
        }
    }

    /// Shared-memory store with event accounting.
    #[inline]
    pub fn shared_store(&mut self, idx: usize, v: f64) {
        self.counts.shared_stores += 1;
        let (at, len) = (self.point(), self.shared.len());
        if self.sink.shared_store(at, idx, len) {
            match self.shared.get_mut(idx) {
                Some(cell) => *cell = v,
                None => self.oob("shared", "store", idx, len),
            }
        }
    }

    /// Global-memory load with event accounting.
    #[inline]
    pub fn global_load(&mut self, mem: &GlobalMem, idx: usize) -> f64 {
        self.counts.global_loads += 1;
        let (at, len) = (self.point(), mem.len());
        if self.sink.global_load(at, mem.id(), idx, len) {
            if idx < len {
                mem.load(idx)
            } else {
                self.oob("global", "load", idx, len)
            }
        } else {
            0.0
        }
    }

    /// Global-memory store with event accounting.
    #[inline]
    pub fn global_store(&mut self, mem: &GlobalMem, idx: usize, v: f64) {
        self.counts.global_stores += 1;
        let (at, len) = (self.point(), mem.len());
        if self.sink.global_store(at, mem.id(), idx, len) {
            if idx < len {
                mem.store(idx, v);
            } else {
                self.oob("global", "store", idx, len)
            }
        }
    }

    /// Records `n` double-precision flops.
    #[inline]
    pub fn count_flops(&mut self, n: u64) {
        self.counts.flops += n;
    }
}

/// The number of thread blocks a launch executes concurrently.
///
/// Replaces the old hardcoded `WAVE_WIDTH = 4`: the width is derived from
/// the host's `available_parallelism` — there is no point in more workers
/// than cores — optionally capped by the modeled device's occupancy (the
/// number of blocks that can actually be resident across its SMs), and
/// overridable for tests via [`WavePlan::fixed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavePlan {
    width: usize,
}

/// Host threads available to the process (1 if indeterminate).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl WavePlan {
    /// A fixed wave width (clamped to at least 1) — the test override.
    pub fn fixed(width: usize) -> Self {
        Self { width: width.max(1) }
    }

    /// Width from host parallelism alone (no architecture bound).
    pub fn auto() -> Self {
        Self::fixed(host_parallelism())
    }

    /// Width from host parallelism capped by `arch`'s occupancy-limited
    /// resident blocks (`blocks_per_sm × num_sms`) for a kernel with
    /// `threads_per_block` threads and `shared_bytes` of shared memory
    /// per block. Falls back to 1 when the kernel cannot launch on the
    /// architecture at all.
    pub fn for_arch(arch: &GpuArch, threads_per_block: usize, shared_bytes: usize) -> Self {
        let resident = Occupancy::compute(arch, threads_per_block, shared_bytes)
            .map(|o| o.blocks_per_sm * arch.num_sms)
            .unwrap_or(1);
        Self::fixed(host_parallelism().min(resident))
    }

    /// The wave width.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Default for WavePlan {
    fn default() -> Self {
        Self::auto()
    }
}

/// Executes one block to retirement (or divergence) on the calling
/// thread, reporting every access to `sink`, and flushes its event
/// counts. The shared engine under both the plain and the monitored
/// interpreters; with [`NoSink`] it monomorphizes to the uninstrumented
/// hot path.
fn exec_block<K: BlockKernel, S: AccessSink>(
    kernel: &K,
    bx: usize,
    by: usize,
    events: &EventCounters,
    sink: &mut S,
) -> BlockExit {
    let block = kernel.block();
    let threads = block.count();
    let mut shared = vec![0.0f64; kernel.shared_len()];
    let mut counts = BlockCounters::default();
    let mut states: Vec<K::State> = Vec::with_capacity(threads);
    for ty in 0..block.y {
        for tx in 0..block.x {
            states.push(kernel.init(bx, by, tx, ty));
        }
    }

    // Per-thread outcomes of the current phase, kept so a divergence can
    // name exactly which threads retired early (one byte write per thread
    // per phase — noise next to the phase body itself).
    let mut outcomes = vec![PhaseOutcome::Done; threads];
    // Access-record buffers for bulk sinks, reused across phases. Only
    // materialized when the sink consumes bulk records.
    let mut trace = if S::BULK { Some(PhaseTrace::default()) } else { None };
    let mut phase = 0usize;
    let exit = loop {
        // Batched fast path: when no sink is listening, or when the sink
        // consumes per-phase bulk records (both compile-time branches —
        // `S::INERT` / `S::BULK` are associated consts, so the dead arms
        // are erased by monomorphization) and the kernel carries a
        // batched body for this phase. A batched phase is uniform by
        // contract, so divergence bookkeeping is skipped entirely.
        if S::INERT || S::BULK {
            if let Some(t) = trace.as_mut() {
                t.clear();
            }
            let batched = {
                let mut bctx = BatchCtx {
                    bx,
                    by,
                    phase,
                    shared: &mut shared,
                    counts: &mut counts,
                    trace: trace.as_mut(),
                };
                kernel.run_phase_batch(phase, &mut states, &mut bctx)
            };
            if let Some(outcome) = batched {
                if S::BULK {
                    let t = trace.as_ref().expect("bulk sinks always carry a trace");
                    if !t.shared.is_empty() {
                        sink.observe_shared_batch(bx, by, phase, shared.len(), &t.shared);
                    }
                    if !t.global.is_empty() {
                        sink.observe_global_batch(bx, by, phase, &t.global);
                    }
                }
                if outcome == PhaseOutcome::Done {
                    break BlockExit::Retired;
                }
                counts.barriers += 1;
                phase += 1;
                continue;
            }
        }
        let mut syncs = 0usize;
        for ty in 0..block.y {
            for tx in 0..block.x {
                let mut ctx = PhaseCtx {
                    tx,
                    ty,
                    bx,
                    by,
                    phase,
                    shared: &mut shared,
                    counts: &mut counts,
                    sink: &mut *sink,
                };
                let state = &mut states[ty * block.x + tx];
                let outcome = kernel.run_phase(phase, state, &mut ctx);
                outcomes[ty * block.x + tx] = outcome;
                if outcome == PhaseOutcome::Sync {
                    syncs += 1;
                }
            }
        }
        if syncs == 0 {
            break BlockExit::Retired; // every thread returned from the kernel
        }
        if syncs != threads {
            let coords = |want: PhaseOutcome| {
                (0..block.y)
                    .flat_map(|ty| (0..block.x).map(move |tx| (tx, ty)))
                    .filter(|&(tx, ty)| outcomes[ty * block.x + tx] == want)
                    .collect::<Vec<_>>()
            };
            break BlockExit::Diverged {
                phase,
                synced: coords(PhaseOutcome::Sync),
                returned: coords(PhaseOutcome::Done),
            };
        }
        counts.barriers += 1;
        phase += 1;
    };
    counts.flush_into(events);
    exit
}

/// Executes one block to retirement on the calling thread under a fresh
/// default-constructed sink and flushes its event counts, panicking on
/// barrier divergence (the plain interpreter's contract).
fn run_block<K: BlockKernel, S: AccessSink + Default>(
    kernel: &K,
    bx: usize,
    by: usize,
    events: &EventCounters,
) {
    match exec_block(kernel, bx, by, events, &mut S::default()) {
        BlockExit::Retired => {}
        BlockExit::Diverged { phase, synced, returned } => panic!(
            "__syncthreads divergence: at phase {phase} of block ({bx}, {by}), \
             {} of {} threads reached the barrier while the rest \
             returned — this kernel would deadlock on real hardware",
            synced.len(),
            synced.len() + returned.len()
        ),
    }
}

/// The shared engine behind [`run_grid`] and [`run_grid_unbatched`]: the
/// sink type selects (at compile time, via [`AccessSink::INERT`]) whether
/// kernels may take their batched fast path.
fn run_grid_with<K: BlockKernel, S: AccessSink + Default>(
    grid: Dim2,
    kernel: &K,
    events: &EventCounters,
    plan: WavePlan,
) {
    let blocks: Vec<(usize, usize)> =
        (0..grid.y).flat_map(|by| (0..grid.x).map(move |bx| (bx, by))).collect();
    let wave = plan.width().min(blocks.len());
    if wave <= 1 {
        for &(bx, by) in &blocks {
            run_block::<K, S>(kernel, bx, by, events);
        }
        return;
    }

    // Chunked claiming: amortize cursor traffic over runs of blocks.
    let chunk = blocks.len().div_ceil(wave * 4).clamp(1, 64);
    let cursor = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..wave {
            scope.spawn(|_| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= blocks.len() {
                    break;
                }
                let end = (start + chunk).min(blocks.len());
                for &(bx, by) in &blocks[start..end] {
                    run_block::<K, S>(kernel, bx, by, events);
                }
            });
        }
    })
    .expect("block wave panicked");
}

/// Runs `kernel` over `grid` blocks with `plan.width()` blocks in flight.
///
/// Blocks are claimed from an atomic cursor in chunks, each executed to
/// retirement by one worker; because blocks are independent and their
/// event totals are summed commutatively, any schedule produces identical
/// memory contents and counts. Kernels that implement
/// [`BlockKernel::run_phase_batch`] execute each phase as one batched
/// call across all threads of the block.
pub fn run_grid<K: BlockKernel>(grid: Dim2, kernel: &K, events: &EventCounters, plan: WavePlan) {
    run_grid_with::<K, NoSink>(grid, kernel, events, plan)
}

/// [`run_grid`] with the batched fast path disabled: every phase runs the
/// per-thread scalar loop, exactly as before batching existed. The
/// baseline of the batched-vs-scalar benchmark and the oracle of the
/// batch-equivalence suite; results and event counts are bitwise-identical
/// to [`run_grid`] by contract.
pub fn run_grid_unbatched<K: BlockKernel>(
    grid: Dim2,
    kernel: &K,
    events: &EventCounters,
    plan: WavePlan,
) {
    run_grid_with::<K, ScalarProbe>(grid, kernel, events, plan)
}

/// Runs `kernel` over `grid` under instrumentation: each block gets a
/// fresh sink from `make_sink(bx, by)`, executes to retirement *or*
/// structured divergence ([`BlockExit`]), and hands the sink back through
/// `collect`.
///
/// Blocks run serially in row-major order on the calling thread, so the
/// access stream each sink observes — and therefore every diagnostic the
/// sanitizer derives from it — is deterministic. Sanitized runs trade the
/// block-wave parallelism for reproducible reports; the uninstrumented
/// path through [`run_grid`] is untouched.
pub fn run_grid_monitored<K, S, MF, CF>(
    grid: Dim2,
    kernel: &K,
    events: &EventCounters,
    mut make_sink: MF,
    mut collect: CF,
) where
    K: BlockKernel,
    S: AccessSink,
    MF: FnMut(usize, usize) -> S,
    CF: FnMut(usize, usize, S, BlockExit),
{
    for by in 0..grid.y {
        for bx in 0..grid.x {
            let mut sink = make_sink(bx, by);
            let exit = exec_block(kernel, bx, by, events, &mut sink);
            collect(bx, by, sink, exit);
        }
    }
}

/// [`run_grid_monitored`] with per-block sampling: blocks for which
/// `select(bx, by)` answers `true` run fully instrumented (sink created,
/// every access observed, exit collected); the rest run uninstrumented on
/// the fast path ([`NoSink`], batched where the kernel supports it) and
/// never touch the monitor.
///
/// This is the sanitizer's production-scale mode: monitoring 1-in-k
/// blocks keeps the shadow-memory cost proportional to the sample while
/// the unsampled blocks still execute (and still count events), so the
/// launch's results are identical to an unmonitored run. Unselected
/// blocks are invisible to the checkers — see DESIGN.md for what 1-in-k
/// sampling can and cannot catch. Blocks still run serially in row-major
/// order, so sampled diagnostics stay deterministic.
pub fn run_grid_monitored_sampled<K, S, PF, MF, CF>(
    grid: Dim2,
    kernel: &K,
    events: &EventCounters,
    mut select: PF,
    mut make_sink: MF,
    mut collect: CF,
) where
    K: BlockKernel,
    S: AccessSink,
    PF: FnMut(usize, usize) -> bool,
    MF: FnMut(usize, usize) -> S,
    CF: FnMut(usize, usize, S, BlockExit),
{
    for by in 0..grid.y {
        for bx in 0..grid.x {
            if select(bx, by) {
                let mut sink = make_sink(bx, by);
                let exit = exec_block(kernel, bx, by, events, &mut sink);
                collect(bx, by, sink, exit);
            } else {
                // Unsampled blocks run to retirement on the fast path. A
                // divergence here stops the block (as in the monitored
                // interpreter) but is not reported — that is precisely
                // the 1-in-k blind spot the sampling-soundness argument
                // documents, and why the self-test corpus never samples.
                let _ = exec_block(kernel, bx, by, events, &mut NoSink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially phase-structured kernel for engine tests: phase 0
    /// writes each thread's slot, phase 1 reads the neighbour's.
    struct NeighbourRead<'a> {
        out: &'a GlobalMem,
        width: usize,
    }

    impl BlockKernel for NeighbourRead<'_> {
        type State = ();

        fn block(&self) -> Dim2 {
            Dim2::new(self.width, 1)
        }

        fn shared_len(&self) -> usize {
            self.width
        }

        fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

        fn run_phase<S: AccessSink>(
            &self,
            phase: usize,
            _state: &mut (),
            ctx: &mut PhaseCtx<'_, S>,
        ) -> PhaseOutcome {
            match phase {
                0 => {
                    ctx.shared_store(ctx.tx, ctx.tx as f64 + 1.0);
                    PhaseOutcome::Sync
                }
                1 => {
                    let neighbour = (ctx.tx + 1) % self.width;
                    let v = ctx.shared_load(neighbour);
                    ctx.global_store(self.out, ctx.tx, v);
                    PhaseOutcome::Done
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn phase_order_replaces_the_barrier() {
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(8);
        let k = NeighbourRead { out: &out, width: 8 };
        run_grid(Dim2::new(1, 1), &k, &events, WavePlan::fixed(1));
        let expect: Vec<f64> = (0..8).map(|i| ((i + 1) % 8) as f64 + 1.0).collect();
        assert_eq!(out.to_vec(), expect);
        // One barrier (the phase-0 → phase-1 boundary), counted per block.
        assert_eq!(events.snapshot().barriers, 1);
    }

    /// Each thread stores 1.0 at its global slot; used for grid coverage
    /// and wave-width invariance.
    struct MarkAll<'a> {
        out: &'a GlobalMem,
        grid: Dim2,
        block: Dim2,
    }

    impl BlockKernel for MarkAll<'_> {
        type State = ();

        fn block(&self) -> Dim2 {
            self.block
        }

        fn shared_len(&self) -> usize {
            0
        }

        fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

        fn run_phase<S: AccessSink>(
            &self,
            _p: usize,
            _s: &mut (),
            ctx: &mut PhaseCtx<'_, S>,
        ) -> PhaseOutcome {
            let block_id = ctx.by * self.grid.x + ctx.bx;
            let thread_id = ctx.ty * self.block.x + ctx.tx;
            ctx.global_store(self.out, block_id * self.block.count() + thread_id, 1.0);
            PhaseOutcome::Done
        }
    }

    #[test]
    fn every_thread_runs_once_at_any_wave_width() {
        for wave in [1usize, 2, 3, 16] {
            let events = EventCounters::new();
            let out = GlobalMem::zeroed(4 * 9);
            let k = MarkAll { out: &out, grid: Dim2::new(2, 2), block: Dim2::new(3, 3) };
            run_grid(Dim2::new(2, 2), &k, &events, WavePlan::fixed(wave));
            assert_eq!(out.to_vec(), vec![1.0; 36], "wave {wave}");
            assert_eq!(events.snapshot().global_stores, 36, "wave {wave}");
        }
    }

    /// Threads disagree on phase count: tx 0 wants a second phase, the
    /// rest return — the misuse the old engine punished with a deadlock.
    struct Divergent;

    impl BlockKernel for Divergent {
        type State = ();

        fn block(&self) -> Dim2 {
            Dim2::new(4, 1)
        }

        fn shared_len(&self) -> usize {
            0
        }

        fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

        fn run_phase<S: AccessSink>(
            &self,
            phase: usize,
            _s: &mut (),
            ctx: &mut PhaseCtx<'_, S>,
        ) -> PhaseOutcome {
            if ctx.tx == 0 && phase == 0 {
                PhaseOutcome::Sync
            } else {
                PhaseOutcome::Done
            }
        }
    }

    #[test]
    #[should_panic(expected = "__syncthreads divergence")]
    fn divergent_phase_counts_fail_loudly() {
        let events = EventCounters::new();
        run_grid(Dim2::new(1, 1), &Divergent, &events, WavePlan::fixed(1));
    }

    #[test]
    fn monitored_run_reports_divergence_structurally() {
        let events = EventCounters::new();
        let mut exits = Vec::new();
        run_grid_monitored(
            Dim2::new(1, 1),
            &Divergent,
            &events,
            |_, _| NoSink,
            |bx, by, _sink, exit| exits.push((bx, by, exit)),
        );
        assert_eq!(exits.len(), 1);
        let (bx, by, exit) = &exits[0];
        assert_eq!((*bx, *by), (0, 0));
        match exit {
            BlockExit::Diverged { phase, synced, returned } => {
                assert_eq!(*phase, 0);
                assert_eq!(synced, &[(0, 0)]);
                assert_eq!(returned, &[(1, 0), (2, 0), (3, 0)]);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    /// A sink that records every access and suppresses out-of-bounds ones.
    #[derive(Default)]
    struct Recorder {
        shared: Vec<(AccessPoint, usize, bool)>,
        global: Vec<(AccessPoint, usize, bool)>,
    }

    impl AccessSink for Recorder {
        fn shared_load(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
            self.shared.push((at, idx, false));
            idx < len
        }

        fn shared_store(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
            self.shared.push((at, idx, true));
            idx < len
        }

        fn global_load(&mut self, at: AccessPoint, _buf: BufId, idx: usize, len: usize) -> bool {
            self.global.push((at, idx, false));
            idx < len
        }

        fn global_store(&mut self, at: AccessPoint, _buf: BufId, idx: usize, len: usize) -> bool {
            self.global.push((at, idx, true));
            idx < len
        }
    }

    #[test]
    fn sink_observes_attributed_accesses() {
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(8);
        let k = NeighbourRead { out: &out, width: 8 };
        let mut recorders = Vec::new();
        run_grid_monitored(
            Dim2::new(1, 1),
            &k,
            &events,
            |_, _| Recorder::default(),
            |_, _, sink, exit| {
                assert_eq!(exit, BlockExit::Retired);
                recorders.push(sink);
            },
        );
        let rec = &recorders[0];
        // Phase 0: 8 shared stores; phase 1: 8 shared loads.
        assert_eq!(rec.shared.len(), 16);
        assert!(rec.shared[..8].iter().all(|(at, _, write)| at.phase == 0 && *write));
        assert!(rec.shared[8..].iter().all(|(at, _, write)| at.phase == 1 && !*write));
        // Thread attribution: store i comes from thread (i, 0).
        assert!(rec.shared[..8].iter().enumerate().all(|(i, (at, idx, _))| {
            at.thread() == (i, 0) && *idx == i
        }));
        assert_eq!(rec.global.len(), 8);
        // Counters identical to an uninstrumented run.
        let plain = EventCounters::new();
        let out2 = GlobalMem::zeroed(8);
        let k2 = NeighbourRead { out: &out2, width: 8 };
        run_grid(Dim2::new(1, 1), &k2, &plain, WavePlan::fixed(1));
        assert_eq!(events.snapshot(), plain.snapshot());
        assert_eq!(out.to_vec(), out2.to_vec());
    }

    /// A kernel whose thread 0 reads one element past shared memory in
    /// phase 0 — the OOB the sink may veto.
    struct SharedOob;

    impl BlockKernel for SharedOob {
        type State = ();

        fn block(&self) -> Dim2 {
            Dim2::new(2, 1)
        }

        fn shared_len(&self) -> usize {
            2
        }

        fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

        fn run_phase<S: AccessSink>(
            &self,
            _p: usize,
            _s: &mut (),
            ctx: &mut PhaseCtx<'_, S>,
        ) -> PhaseOutcome {
            if ctx.tx == 0 {
                ctx.shared_load(2); // one past the end
            }
            PhaseOutcome::Done
        }
    }

    #[test]
    #[should_panic(expected = "shared memory load out of bounds: index 2 >= len 2")]
    fn unsuppressed_oob_panics_with_attribution() {
        let events = EventCounters::new();
        run_grid(Dim2::new(1, 1), &SharedOob, &events, WavePlan::fixed(1));
    }

    #[test]
    fn suppressing_sink_survives_oob() {
        let events = EventCounters::new();
        let mut saw_oob = false;
        run_grid_monitored(
            Dim2::new(1, 1),
            &SharedOob,
            &events,
            |_, _| Recorder::default(),
            |_, _, sink, exit| {
                assert_eq!(exit, BlockExit::Retired);
                saw_oob = sink.shared.iter().any(|&(_, idx, _)| idx == 2);
            },
        );
        assert!(saw_oob, "the sink never observed the out-of-bounds index");
        // The suppressed load still counted as an event.
        assert_eq!(events.snapshot().shared_loads, 1);
    }

    #[test]
    fn per_block_counters_flush_to_launch_totals() {
        // 6 blocks × 9 threads × 1 store, plus per-block barrier counts.
        struct TwoPhase<'a> {
            out: &'a GlobalMem,
        }
        impl BlockKernel for TwoPhase<'_> {
            type State = ();
            fn block(&self) -> Dim2 {
                Dim2::new(3, 3)
            }
            fn shared_len(&self) -> usize {
                0
            }
            fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}
            fn run_phase<S: AccessSink>(
                &self,
                phase: usize,
                _s: &mut (),
                ctx: &mut PhaseCtx<'_, S>,
            ) -> PhaseOutcome {
                match phase {
                    0 => {
                        ctx.count_flops(10);
                        PhaseOutcome::Sync
                    }
                    _ => {
                        // One representative store per block (thread (0,0)).
                        if ctx.tx == 0 && ctx.ty == 0 {
                            let block_id = ctx.by * 3 + ctx.bx;
                            ctx.global_store(self.out, block_id, 1.0);
                        }
                        PhaseOutcome::Done
                    }
                }
            }
        }
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(6);
        run_grid(Dim2::new(3, 2), &TwoPhase { out: &out }, &events, WavePlan::fixed(4));
        let s = events.snapshot();
        assert_eq!(s.flops, 6 * 9 * 10);
        assert_eq!(s.global_stores, 6);
        assert_eq!(s.barriers, 6); // one per block
    }

    #[test]
    fn batch_records_roundtrip_through_the_packed_word() {
        for (tx, ty, idx, store) in
            [(0, 0, 0, false), (65535, 65535, (1 << 31) - 1, true), (3, 7, 4096, true)]
        {
            let got = decode_access(encode_access(tx, ty, idx, store));
            assert_eq!(got, BatchAccess { tx, ty, idx, store });
        }
    }

    #[test]
    fn global_batch_groups_records_into_runs() {
        let mut batch = GlobalBatch::default();
        let (a, b) = (GlobalMem::zeroed(4), GlobalMem::zeroed(8));
        batch.begin_run(a.id(), a.len());
        batch.push_load(0, 0, 1);
        batch.push_store(1, 0, 2);
        batch.begin_run(b.id(), b.len());
        batch.push_load(2, 0, 7);
        let runs: Vec<_> = batch.runs().collect();
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].buf, runs[0].len), (a.id(), 4));
        assert_eq!(runs[0].accesses().count(), 2);
        assert_eq!((runs[1].buf, runs[1].len), (b.id(), 8));
        let rec: Vec<_> = runs[1].accesses().collect();
        assert_eq!(rec, vec![BatchAccess { tx: 2, ty: 0, idx: 7, store: false }]);
        assert_eq!(batch.len(), 3);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.runs().count(), 0);
    }

    /// `NeighbourRead` with a traced batched body, for bulk-sink tests.
    struct BatchedNeighbourRead<'a> {
        inner: NeighbourRead<'a>,
    }

    impl BlockKernel for BatchedNeighbourRead<'_> {
        type State = ();

        fn block(&self) -> Dim2 {
            self.inner.block()
        }

        fn shared_len(&self) -> usize {
            self.inner.shared_len()
        }

        fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

        fn run_phase<S: AccessSink>(
            &self,
            phase: usize,
            state: &mut (),
            ctx: &mut PhaseCtx<'_, S>,
        ) -> PhaseOutcome {
            self.inner.run_phase(phase, state, ctx)
        }

        fn run_phase_batch(
            &self,
            phase: usize,
            _states: &mut [()],
            ctx: &mut BatchCtx<'_>,
        ) -> Option<PhaseOutcome> {
            let width = self.inner.width;
            match phase {
                0 => {
                    for (tx, cell) in ctx.shared().iter_mut().enumerate().take(width) {
                        *cell = tx as f64 + 1.0;
                    }
                    if let Some(t) = ctx.trace() {
                        for tx in 0..width {
                            t.shared.push_store(tx, 0, tx);
                        }
                    }
                    ctx.counters().shared_stores += width as u64;
                    Some(PhaseOutcome::Sync)
                }
                1 => {
                    for tx in 0..width {
                        let neighbour = (tx + 1) % width;
                        let v = ctx.shared()[neighbour];
                        ctx.global_store(self.inner.out, tx, v);
                    }
                    if let Some(t) = ctx.trace() {
                        t.global.begin_run(self.inner.out.id(), self.inner.out.len());
                        for tx in 0..width {
                            t.shared.push_load(tx, 0, (tx + 1) % width);
                            t.global.push_store(tx, 0, tx);
                        }
                    }
                    ctx.counters().shared_loads += width as u64;
                    ctx.counters().global_stores += width as u64;
                    Some(PhaseOutcome::Done)
                }
                _ => unreachable!(),
            }
        }
    }

    /// A recording sink that consumes bulk records via the trait's
    /// default delegation to the scalar hooks.
    #[derive(Default)]
    struct BulkRecorder(Recorder);

    impl AccessSink for BulkRecorder {
        const BULK: bool = true;

        fn shared_load(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
            self.0.shared_load(at, idx, len)
        }

        fn shared_store(&mut self, at: AccessPoint, idx: usize, len: usize) -> bool {
            self.0.shared_store(at, idx, len)
        }

        fn global_load(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
            self.0.global_load(at, buf, idx, len)
        }

        fn global_store(&mut self, at: AccessPoint, buf: BufId, idx: usize, len: usize) -> bool {
            self.0.global_store(at, buf, idx, len)
        }
    }

    #[test]
    fn bulk_sink_rides_the_batched_path_and_sees_every_access() {
        // Scalar reference: the unbatched kernel under a plain recorder.
        let scalar_events = EventCounters::new();
        let scalar_out = GlobalMem::zeroed(8);
        let k = NeighbourRead { out: &scalar_out, width: 8 };
        let mut scalar_rec = Vec::new();
        run_grid_monitored(
            Dim2::new(1, 1),
            &k,
            &scalar_events,
            |_, _| Recorder::default(),
            |_, _, sink, exit| {
                assert_eq!(exit, BlockExit::Retired);
                scalar_rec.push(sink);
            },
        );

        // Bulk: the batched kernel under a BULK recorder — the batched
        // arm must run (same results, same counters) and the trace must
        // replay the identical attributed access stream.
        let bulk_events = EventCounters::new();
        let bulk_out = GlobalMem::zeroed(8);
        let bk = BatchedNeighbourRead { inner: NeighbourRead { out: &bulk_out, width: 8 } };
        let mut bulk_rec = Vec::new();
        run_grid_monitored(
            Dim2::new(1, 1),
            &bk,
            &bulk_events,
            |_, _| BulkRecorder::default(),
            |_, _, sink, exit| {
                assert_eq!(exit, BlockExit::Retired);
                bulk_rec.push(sink.0);
            },
        );

        assert_eq!(scalar_out.to_vec(), bulk_out.to_vec());
        assert_eq!(scalar_events.snapshot(), bulk_events.snapshot());
        assert_eq!(scalar_rec[0].shared, bulk_rec[0].shared);
        assert_eq!(scalar_rec[0].global, bulk_rec[0].global);
    }

    #[test]
    fn force_scalar_masks_bulk_and_pins_the_scalar_loop() {
        // The same batched kernel under ForceScalar<BulkRecorder> must
        // take the scalar loop — observationally identical to the plain
        // recorder run.
        let events = EventCounters::new();
        let out = GlobalMem::zeroed(8);
        let bk = BatchedNeighbourRead { inner: NeighbourRead { out: &out, width: 8 } };
        let mut recs = Vec::new();
        run_grid_monitored(
            Dim2::new(1, 1),
            &bk,
            &events,
            |_, _| ForceScalar(BulkRecorder::default()),
            |_, _, sink, exit| {
                assert_eq!(exit, BlockExit::Retired);
                recs.push(sink.0 .0);
            },
        );
        let expect: Vec<f64> = (0..8).map(|i| ((i + 1) % 8) as f64 + 1.0).collect();
        assert_eq!(out.to_vec(), expect);
        // 8 stores then 8 loads, exactly as the scalar loop reports them.
        assert_eq!(recs[0].shared.len(), 16);
        assert!(recs[0].shared[..8].iter().all(|(at, _, write)| at.phase == 0 && *write));
    }

    #[test]
    fn wave_plan_from_arch_is_occupancy_capped() {
        let arch = GpuArch::k40c();
        // BS = 32 tiles: 1024 threads/block → 2 blocks/SM × 15 SMs = 30.
        let plan = WavePlan::for_arch(&arch, 32 * 32, 2 * 32 * 32 * 8);
        assert!(plan.width() <= 30.min(host_parallelism().max(1)).max(1));
        assert!(plan.width() >= 1);
        // An unlaunchable kernel degrades to a serial wave.
        let bad = WavePlan::for_arch(&arch, 33 * 33, 0);
        assert_eq!(bad.width(), 1);
    }

    #[test]
    fn fixed_wave_width_is_clamped_positive() {
        assert_eq!(WavePlan::fixed(0).width(), 1);
        assert_eq!(WavePlan::fixed(7).width(), 7);
        assert!(WavePlan::auto().width() >= 1);
    }
}
