//! Load generator for `enprop-serve`.
//!
//! ```text
//! serve-load --addr HOST:PORT [--clients N] [--requests N] [--hot N]
//!            [--seed S] [--arch k40c|p100] [--n N] [--products P] [--chunk C]
//! ```
//!
//! Spawns N concurrent clients issuing a mixed hot/cold key stream and
//! prints the [`LoadReport`](enprop_serve::LoadReport) as JSON. Exits
//! non-zero if any request failed or any hot key's responses disagreed.

use enprop_serve::{run_load, LoadOptions};
use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr: Option<SocketAddr> = None;
    let mut options = LoadOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut next = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => {
                    let v = next("--addr")?;
                    addr = Some(
                        v.to_socket_addrs()
                            .map_err(|e| format!("--addr {v:?}: {e}"))?
                            .next()
                            .ok_or_else(|| format!("--addr {v:?} resolves to nothing"))?,
                    );
                }
                "--clients" => options.clients = parse(&next("--clients")?)?,
                "--requests" => options.requests_per_client = parse(&next("--requests")?)?,
                "--hot" => options.hot_keys = parse(&next("--hot")?)?,
                "--seed" => options.seed_base = parse(&next("--seed")?)?,
                "--arch" => options.arch = next("--arch")?,
                "--n" => options.n = parse(&next("--n")?)?,
                "--products" => options.products = parse(&next("--products")?)?,
                "--chunk" => options.chunk = parse(&next("--chunk")?)?,
                "--help" | "-h" => {
                    usage();
                    std::process::exit(0);
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("serve-load: {e}");
            usage();
            return ExitCode::FAILURE;
        }
    }
    let Some(addr) = addr else {
        eprintln!("serve-load: --addr is required");
        usage();
        return ExitCode::FAILURE;
    };

    let report = run_load(addr, &options);
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("serve-load: cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.ok == report.requests && report.hot_identical && report.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("cannot parse {value:?}"))
}

fn usage() {
    eprintln!(
        "usage: serve-load --addr HOST:PORT [--clients N] [--requests N] [--hot N] \
         [--seed S] [--arch k40c|p100] [--n N] [--products P] [--chunk C]"
    );
}
