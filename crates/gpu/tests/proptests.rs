//! Property-based tests of the GPU substrate: emulator correctness on
//! random configurations, occupancy bounds, and model sanity across the
//! whole valid configuration space.

use enprop_gpusim::cupti::{CuptiCounter, CuptiReport};
use enprop_gpusim::emulator::{EmuDgemm, GlobalMem};
use enprop_gpusim::{GpuArch, Occupancy, TiledDgemm, TiledDgemmConfig};
use proptest::prelude::*;

/// Deterministic fill for test matrices.
fn filled(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The emulated kernel computes `C += (G·R)·A·B` for random tiles and
    /// its events match the analytic CUPTI model exactly.
    #[test]
    fn emulator_correct_on_random_configs(
        tiles in 1usize..4,
        bs in 1usize..6,
        g in 1usize..4,
        r in 1usize..3,
        seed in 0u64..100,
    ) {
        let n = tiles * bs;
        let host_a = filled(n * n, seed);
        let host_b = filled(n * n, seed + 1);
        let host_c = filled(n * n, seed + 2);
        let (a, b, c) = (
            GlobalMem::from_slice(&host_a),
            GlobalMem::from_slice(&host_b),
            GlobalMem::from_slice(&host_c),
        );
        let cfg = TiledDgemmConfig { n, bs, g, r };
        let events = EmuDgemm::new(cfg).run(&a, &b, &c);

        // Numeric correctness.
        let k = (g * r) as f64;
        let got = c.to_vec();
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for l in 0..n {
                    acc += host_a[i * n + l] * host_b[l * n + j];
                }
                let expect = host_c[i * n + j] + k * acc;
                prop_assert!((got[i * n + j] - expect).abs() < 1e-9);
            }
        }

        // Event-count agreement with the analytic model.
        let rep = CuptiReport::of(&cfg);
        prop_assert_eq!(rep.get(CuptiCounter::FlopCountDp).true_count, events.flops as u128);
        prop_assert_eq!(rep.get(CuptiCounter::SharedLoad).true_count, events.shared_loads as u128);
        prop_assert_eq!(rep.get(CuptiCounter::SharedStore).true_count, events.shared_stores as u128);
        prop_assert_eq!(rep.get(CuptiCounter::GldTransactions).true_count, events.global_loads as u128);
        prop_assert_eq!(rep.get(CuptiCounter::GstTransactions).true_count, events.global_stores as u128);
        prop_assert_eq!(rep.get(CuptiCounter::BarrierSync).true_count, events.barriers as u128);
    }
}

proptest! {
    /// Occupancy never exceeds the SM limits and shrinks (weakly) when the
    /// kernel asks for more shared memory.
    #[test]
    fn occupancy_bounds(tpb in 1usize..1025, shmem_kib in 0usize..49) {
        for arch in [GpuArch::k40c(), GpuArch::p100_pcie()] {
            if let Some(o) = Occupancy::compute(&arch, tpb, shmem_kib * 1024) {
                prop_assert!(o.blocks_per_sm >= 1);
                prop_assert!(o.blocks_per_sm <= arch.max_blocks_per_sm);
                prop_assert!(o.active_threads_per_sm <= arch.max_threads_per_sm);
                prop_assert!(o.fraction > 0.0 && o.fraction <= 1.0);
                // More shared memory never raises occupancy.
                if let Some(o2) = Occupancy::compute(&arch, tpb, (shmem_kib + 1) * 1024) {
                    prop_assert!(o2.blocks_per_sm <= o.blocks_per_sm);
                }
            }
        }
    }

    /// Every valid configuration yields a finite, positive estimate with
    /// power below TDP and shares that partition the bottleneck.
    #[test]
    fn model_sane_on_all_valid_configs(
        bs in 1usize..33,
        g in 1usize..9,
        r in 1usize..5,
        n_k in 1usize..8,
    ) {
        let n = n_k * 1024;
        for arch in [GpuArch::k40c(), GpuArch::p100_pcie()] {
            let cfg = TiledDgemmConfig { n, bs, g, r };
            let model = TiledDgemm::new(arch);
            if !cfg.is_valid(model.arch()) {
                continue;
            }
            let e = model.estimate(&cfg);
            prop_assert!(e.time.value() > 0.0 && e.time.is_finite());
            prop_assert!(e.steady_power.value() > 0.0);
            prop_assert!(e.steady_power.value() <= model.arch().tdp.value());
            prop_assert!(e.warmup_time <= e.time);
            prop_assert!((e.compute_share.max(e.memory_share) - 1.0).abs() < 1e-9);
            prop_assert!(e.dynamic_energy().value() > 0.0);
        }
    }

    /// Adding repetitions strictly increases time and energy.
    #[test]
    fn more_work_costs_more(bs in 4usize..33, r in 1usize..4) {
        let arch = GpuArch::p100_pcie();
        let model = TiledDgemm::new(arch);
        let base = TiledDgemmConfig { n: 2048, bs, g: 1, r };
        let more = TiledDgemmConfig { r: r + 1, ..base };
        if base.is_valid(model.arch()) && more.is_valid(model.arch()) {
            let a = model.estimate(&base);
            let b = model.estimate(&more);
            prop_assert!(b.time > a.time);
            prop_assert!(b.dynamic_energy() > a.dynamic_energy());
        }
    }

    /// Reported CUPTI values always equal the truth modulo 2³².
    #[test]
    fn cupti_wrap_consistent(n in 64usize..3000, bs in 1usize..33, g in 1usize..9) {
        let cfg = TiledDgemmConfig { n, bs, g, r: 1 };
        let rep = CuptiReport::of(&cfg);
        for r in &rep.readings {
            prop_assert_eq!(r.reported as u128, r.true_count % (1u128 << 32));
            prop_assert_eq!(r.overflowed(), r.true_count > u32::MAX as u128);
        }
    }
}
