//! End-to-end energy-predictive-model studies.
//!
//! Two studies from the paper:
//!
//! * **GPU (§IV, §V-C)** — build a linear dynamic-energy model over CUPTI
//!   event counts, selecting variables by the additivity property and
//!   correlation with dynamic energy. The paper found CUPTI unusable at
//!   scale because "many key events and metrics overflow for large matrix
//!   sizes (N > 2048) and reported inaccurate counts"; passing
//!   `use_reported_counts = true` trains on the wrapped 32-bit values and
//!   reproduces that failure.
//!
//! * **CPU (§V-C)** — Khokhriakov et al.'s qualitative model: dynamic
//!   power regressed on average utilization and dTLB page-walk intensity.
//!   The dTLB term is what "demonstrates that the energy
//!   nonproportionality is due to the disproportionately energy-expensive
//!   dTLB activity": removing it collapses the fit.

use crate::cpu_dgemm::CpuDgemmApp;
use enprop_cpusim::BlasFlavor;
use enprop_ep::additivity::{EnergyModel, EnergyModelBuilder};
use enprop_ep::additivity_error;
use enprop_gpusim::cupti::{CuptiCounter, CuptiReport};
use enprop_gpusim::{GpuArch, TiledDgemm, TiledDgemmConfig};
use enprop_stats::regress::MultiLinearFit;

/// Result of the GPU model study.
#[derive(Debug, Clone)]
pub struct GpuEnergyModelStudy {
    /// Per-counter additivity error measured on a compound (G = 2) run.
    pub additivity_errors: Vec<(String, f64)>,
    /// The fitted model, if any variable survived selection.
    pub model: Option<EnergyModel>,
    /// Whether any training counter overflowed its 32-bit register.
    pub any_overflow: bool,
}

/// Trains a linear dynamic-energy model for the tiled DGEMM on one GPU at
/// size `n`, over the BS sweep (G = 1, R = 1).
///
/// With `use_reported_counts = false` the true (unbounded) counts are
/// used; with `true`, the wrapped `u32` values the hardware would report.
pub fn gpu_energy_model(
    arch: GpuArch,
    n: usize,
    use_reported_counts: bool,
) -> GpuEnergyModelStudy {
    let model = TiledDgemm::new(arch);
    let configs: Vec<TiledDgemmConfig> = (8..=32)
        .map(|bs| TiledDgemmConfig { n, bs, g: 1, r: 1 })
        .filter(|c| c.is_valid(model.arch()))
        .collect();

    // Observations: per configuration, each counter's count and the
    // modeled dynamic energy.
    let mut energies = Vec::with_capacity(configs.len());
    let mut counts: Vec<Vec<f64>> = vec![Vec::new(); CuptiCounter::ALL.len()];
    let mut any_overflow = false;
    for cfg in &configs {
        energies.push(model.estimate(cfg).dynamic_energy().value());
        let report = CuptiReport::of(cfg);
        any_overflow |= report.any_overflow();
        for (k, counter) in CuptiCounter::ALL.iter().enumerate() {
            let r = report.get(*counter);
            counts[k].push(if use_reported_counts {
                r.reported as f64
            } else {
                r.true_count as f64
            });
        }
    }

    // Additivity: compare a compound (G = 2) run against two base (G = 1)
    // runs, per counter, at a probe size where everything is valid.
    let probe = TiledDgemmConfig { n, bs: 16, g: 1, r: 1 };
    let compound = TiledDgemmConfig { g: 2, ..probe };
    let base_rep = CuptiReport::of(&probe);
    let comp_rep = CuptiReport::of(&compound);
    let pick = |rep: &CuptiReport, c: CuptiCounter| {
        let r = rep.get(c);
        if use_reported_counts {
            r.reported as f64
        } else {
            r.true_count as f64
        }
    };
    let additivity_errors: Vec<(String, f64)> = CuptiCounter::ALL
        .iter()
        .map(|&c| {
            let base = pick(&base_rep, c);
            let err = if base > 0.0 {
                additivity_error(&[base, base], pick(&comp_rep, c))
            } else {
                f64::INFINITY
            };
            (c.name().to_string(), err)
        })
        .collect();

    let candidates: Vec<(String, Vec<f64>, f64)> = CuptiCounter::ALL
        .iter()
        .enumerate()
        .map(|(k, c)| {
            (c.name().to_string(), counts[k].clone(), additivity_errors[k].1)
        })
        .collect();
    let fitted = EnergyModelBuilder::default().build(&candidates, &energies);

    GpuEnergyModelStudy { additivity_errors, model: fitted, any_overflow }
}

/// Result of the CPU qualitative-model study.
#[derive(Debug, Clone)]
pub struct CpuEnergyModelStudy {
    /// R² of the full model (utilization + dTLB walk intensity).
    pub full_r2: f64,
    /// R² of the utilization-only model.
    pub utilization_only_r2: f64,
    /// The fitted full model's coefficients (intercept, util, dTLB).
    pub beta: Vec<f64>,
}

/// Fits the Khokhriakov-style qualitative dynamic-power model on the
/// Haswell sweep at size `n`: power ~ average utilization + dTLB walk
/// intensity. Returns the fits of the full and the ablated model.
pub fn cpu_qualitative_model(n: usize) -> CpuEnergyModelStudy {
    let app = CpuDgemmApp::haswell();
    let sweep = app.sweep_exact(n, BlasFlavor::IntelMkl);
    let mut rows_full = Vec::with_capacity(sweep.len());
    let mut rows_util = Vec::with_capacity(sweep.len());
    let mut powers = Vec::with_capacity(sweep.len());
    for p in &sweep {
        let util = p.avg_utilization.fraction();
        // Walk intensity is recoverable from the run's dTLB power share.
        let run = app.run(&p.point.config, n);
        let walk = run.dtlb_power.value() / app.simulator().topology().power.dtlb_w;
        rows_full.push(vec![util, walk]);
        rows_util.push(vec![util]);
        powers.push(p.point.dynamic_power().value());
    }
    let full = MultiLinearFit::fit(&rows_full, &powers).expect("full model fit");
    let util_only = MultiLinearFit::fit(&rows_util, &powers).expect("ablated model fit");
    CpuEnergyModelStudy {
        full_r2: full.r_squared,
        utilization_only_r2: util_only.r_squared,
        beta: full.beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_model_trains_on_true_counts() {
        let study = gpu_energy_model(GpuArch::p100_pcie(), 1024, false);
        let model = study.model.expect("a model should fit on true counts");
        // Memory-traffic counters carry the energy signal for the
        // memory-bound kernel; the fit should be strong.
        assert!(model.r_squared() > 0.7, "R² {}", model.r_squared());
        assert!(!model.variables.is_empty());
        // flop_count_dp is constant across BS at fixed N → uncorrelated →
        // excluded.
        assert!(!model.variables.iter().any(|v| v == "flop_count_dp"));
    }

    #[test]
    fn additivity_errors_zero_on_true_counts() {
        let study = gpu_energy_model(GpuArch::k40c(), 512, false);
        for (name, err) in &study.additivity_errors {
            if name == "barrier_sync" {
                continue; // inter-group barriers are super-additive
            }
            assert!(*err < 1e-12, "{name}: {err}");
        }
    }

    #[test]
    fn overflowed_counts_ruin_the_methodology() {
        // The paper's complaint, reproduced: at N > 2048 the 32-bit
        // counters wrap and the reported counts stop being additive, so
        // variable selection collapses.
        let clean = gpu_energy_model(GpuArch::p100_pcie(), 4096, false);
        assert!(clean.any_overflow, "N=4096 must overflow 32-bit counters");
        assert!(clean.model.is_some());

        let corrupted = gpu_energy_model(GpuArch::p100_pcie(), 4096, true);
        let clean_vars = clean.model.as_ref().unwrap().variables.len();
        let corrupted_vars = corrupted.model.as_ref().map(|m| m.variables.len()).unwrap_or(0);
        assert!(
            corrupted_vars < clean_vars,
            "wrapped counts kept {corrupted_vars} of {clean_vars} variables"
        );
    }

    #[test]
    fn cpu_dtlb_term_is_load_bearing() {
        let study = cpu_qualitative_model(8192);
        assert!(study.full_r2 > 0.8, "full R² {}", study.full_r2);
        assert!(
            study.full_r2 > study.utilization_only_r2 + 0.01,
            "dTLB term adds nothing: {} vs {}",
            study.full_r2,
            study.utilization_only_r2
        );
        // The dTLB coefficient is positive (walks cost energy).
        assert!(study.beta[2] > 0.0, "beta {:?}", study.beta);
    }
}
