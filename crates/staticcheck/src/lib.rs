//! Static launch-space verifier for the barrier-phase block kernels.
//!
//! `enprop-staticcheck` proves race / out-of-bounds / barrier safety —
//! and closed-form event counts — for entire sweep lattices without
//! executing the swept configs. The pipeline:
//!
//! 1. **Probe** ([`probe`]): a recording [`probe::ProbeSink`] on the
//!    emulator's `AccessSink` seam captures every access of a tiny
//!    structured set of launches.
//! 2. **Fit + verify** ([`affine`], [`solve`]): per-thread access
//!    streams are split into families and fitted as affine forms
//!    `addr = c0 + dk·k + c1·tx + c2·ty + c3·bx + c4·by + e1·τ + e2·m`;
//!    every recorded access must satisfy its form exactly. Anything
//!    non-affine becomes a typed [`report::Fallback`] (the caller keeps
//!    using the dynamic sanitizer there) — never a silent pass.
//! 3. **Check** ([`checks`]): pure arithmetic over the verified forms —
//!    interval maximization for OOB, exact small-domain enumeration for
//!    shared/intra-block hazards, bounded linear-Diophantine solving for
//!    inter-block write-sharing.
//! 4. **Generalize** ([`dgemm`]): for the shipped DGEMM family, probe
//!    configs' coefficients are refitted as integer polynomials in
//!    `(BS, N)` (and event counts in `(T, BS, G, R)`), so any fig7/fig8
//!    lattice config — far too large to execute — is verified and
//!    counted analytically in microseconds.
//!
//! [`analyze_launch`] is the concrete entry point (used for the seeded
//! buggy fixtures); [`dgemm::DgemmStaticModel`] is the parametric one.

#![warn(missing_docs)]

pub mod affine;
pub mod checks;
pub mod dgemm;
pub mod fixtures;
pub mod probe;
pub mod report;
pub mod solve;

pub use dgemm::{verify_fig_lattices, DgemmStaticModel};
pub use report::{Fallback, FallbackKind, StaticFinding, StaticReport};

use checks::{run_checks, CheckFamily, CheckGroup, CheckSpace};
use enprop_gpusim::emulator::{BlockExit, BlockKernel, BufId, Dim2};
use enprop_sanitize::report::Checker;

/// Statically analyzes one concrete launch: probes it instrumented,
/// fits and verifies affine summaries, and runs every analytic check
/// with one singleton group per phase.
///
/// `buffers` names the kernel's global allocations (`(id, name, len)`),
/// exactly like the dynamic sanitizer's buffer table.
pub fn analyze_launch<K: BlockKernel>(
    label: &str,
    grid: Dim2,
    kernel: &K,
    buffers: &[(BufId, &'static str, usize)],
) -> StaticReport {
    let mut report = StaticReport::new(label.to_string());
    let (blocks, _events) = probe::probe_grid(grid, kernel);
    for b in &blocks {
        if let BlockExit::Diverged { phase, synced, returned } = &b.exit {
            let first_early = returned.first().copied().unwrap_or((0, 0));
            report.findings.push(StaticFinding {
                checker: Checker::Synccheck,
                phase: Some(*phase),
                space: None,
                buffer: None,
                message: format!(
                    "static synccheck: barrier divergence proven in phase {phase} of block \
                     ({}, {}): {} thread(s) synced while {} returned (first early thread \
                     ({}, {}))",
                    b.bx,
                    b.by,
                    synced.len(),
                    returned.len(),
                    first_early.0,
                    first_early.1,
                ),
            });
        }
    }
    let registry: Vec<(BufId, String, usize)> =
        buffers.iter().map(|&(id, name, len)| (id, name.to_string(), len)).collect();
    let block = kernel.block();
    match affine::summarize_launch(&blocks, (block.x, block.y), (grid.x, grid.y), &registry) {
        Err(fb) => report.fallbacks.push(fb),
        Ok(shape) => {
            let groups = shape
                .phases
                .iter()
                .enumerate()
                .map(|(pi, ph)| CheckGroup {
                    phase: pi,
                    label: format!("phase {pi}"),
                    tau: 1,
                    prod: 1,
                    families: ph
                        .families
                        .iter()
                        .map(|f| CheckFamily {
                            space: f.space,
                            buffer: f.buf.map(|bi| registry[bi].1.clone()),
                            len: match f.buf {
                                Some(bi) => registry[bi].2,
                                None => kernel.shared_len(),
                            },
                            kind: f.kind,
                            k: f.k,
                            co: f.co,
                        })
                        .collect(),
                })
                .collect();
            let cs = CheckSpace {
                groups,
                block: (block.x, block.y),
                grid: (grid.x, grid.y),
                shared_len: kernel.shared_len(),
            };
            let (findings, fallbacks) = run_checks(&cs);
            report.findings.extend(findings);
            report.fallbacks.extend(fallbacks);
        }
    }
    report
}
