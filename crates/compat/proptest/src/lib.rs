//! Offline stand-in for the `proptest` crate.
//!
//! Reproduces the surface this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), range / tuple /
//! `prop::collection::vec` / `prop::bool::ANY` strategies, `prop_map`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case panics
//! with the case number and the failed condition. Sampling is
//! deterministic per test (the RNG is seeded from the test's name), so
//! failures reproduce exactly across runs.

use std::ops::Range;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stub trims this so the heavier
        // simulation-backed properties keep the suite fast.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test-case body stopped early.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic per-test generator (SplitMix64 over an FNV-seeded state).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test's name, so each test draws a fixed,
    /// reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in [0, bound).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `vec(element, 1..40)` — a vector of 1..40 sampled elements.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.len.sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy yielding both booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests. Supported grammar (the subset the workspace
/// uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]  // optional
///     /// docs / attrs
///     #[test]
///     fn name(x in 0.0f64..1.0, v in prop::collection::vec(0usize..4, 1..8)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("property failed at case #{}: {}", __case, __msg);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                __l, __r
            )));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..9.5, n in 3usize..7) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u64..100, prop::bool::ANY), 1..10)
                .prop_map(|pairs| pairs.into_iter().map(|(n, _)| n).collect::<Vec<_>>())
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&n| n < 100));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (s1, s2): (Vec<u64>, Vec<u64>) =
            ((0..8).map(|_| a.next_u64()).collect(), (0..8).map(|_| b.next_u64()).collect());
        assert_eq!(s1, s2);
        assert_ne!(s1, (0..8).map(|_| c.next_u64()).collect::<Vec<u64>>());
    }
}
