//! The parallel sweep engine.
//!
//! Every figure in the paper is produced by sweeping a configuration space
//! (all `(BS, G, R)` kernels, all DGEMM thread groups, all FFT sizes) and
//! measuring each configuration through the simulated meter. The sweeps are
//! embarrassingly parallel — *except* that the measurement pipeline is
//! stochastic, and a naive fan-out would make the noise a configuration
//! sees depend on which worker measured it and what that worker measured
//! before. Results would then change with thread count, which is poison for
//! a reproduction harness.
//!
//! [`SweepExecutor`] solves this with **deterministic seed-splitting**: a
//! sweep owns one `sweep_seed`, and configuration `i` is always measured
//! under [`split_seed`]`(sweep_seed, i)` — a SplitMix64-style finalizer over
//! the pair — regardless of the worker that picks it up. Worker-local
//! [`MeasurementRunner`]s are reseeded with that per-configuration seed
//! before each measurement, so the noise stream a configuration sees is a
//! pure function of `(sweep_seed, index)`. Results come back in enumeration
//! order. The upshot, verified by the determinism suite: a sweep run with
//! 1, 2, or 8 threads produces bitwise-identical output.
//!
//! The executor is generic over worker state, so model-only sweeps (no
//! measurement pipeline) reuse the same fan-out via [`SweepExecutor::map`].

use crate::runner::MeasurementRunner;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Write-once result slots shared by the sweep workers, one per item.
///
/// The scheduler guarantees each index is claimed by exactly one worker
/// (a `fetch_add` cursor hands out disjoint chunks), so each slot is
/// written exactly once, with no concurrent access — which makes a plain
/// `UnsafeCell<MaybeUninit<T>>` sound and replaces the previous
/// `Vec<Mutex<Option<T>>>` (a lock round-trip per result). The scope join
/// between the writes and [`into_vec`](ResultSlots::into_vec) provides the
/// happens-before edge that publishes the values. If a worker panics the
/// whole sweep panics at the scope join and the slots are leaked, never
/// read: no use of uninitialized memory.
struct ResultSlots<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: disjoint write-once access per the scheduler contract above.
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(len: usize) -> Self {
        Self { slots: (0..len).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect() }
    }

    /// Writes the result for `i`.
    ///
    /// # Safety
    /// `i` must be claimed by exactly one worker, and written exactly once.
    #[inline]
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { (*self.slots[i].get()).write(value) };
    }

    /// Consumes the slots in index order.
    ///
    /// # Safety
    /// Every slot must have been written (all indices claimed and their
    /// workers joined).
    unsafe fn into_vec(self) -> Vec<T> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|slot| unsafe { slot.into_inner().assume_init() })
            .collect()
    }
}

/// Derives the seed for configuration `index` of a sweep seeded with
/// `sweep_seed`.
///
/// This is the SplitMix64 output function applied to
/// `sweep_seed + (index + 1) · φ64` (the golden-gamma increment). It is a
/// pure function of the pair — independent of evaluation order and thread
/// placement — and injective in `index` for a fixed seed, so distinct
/// configurations never share a noise stream. `index + 1` keeps
/// configuration 0 from degenerating to the raw sweep seed.
pub fn split_seed(sweep_seed: u64, index: usize) -> u64 {
    let gamma = 0x9E37_79B9_7F4A_7C15u64;
    let mut z = sweep_seed.wrapping_add(gamma.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic parallel sweep executor.
///
/// Holds the sweep seed and the worker count; fans work items out to
/// scoped worker threads, hands each item its [`split_seed`], and returns
/// results in enumeration order.
///
/// # Example
/// ```
/// use enprop_apps::parallel::SweepExecutor;
///
/// let exec = SweepExecutor::new(42).with_threads(4);
/// let squares = exec.map(&[1usize, 2, 3, 4], |x, _seed| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
#[derive(Debug, Clone)]
pub struct SweepExecutor {
    seed: u64,
    threads: usize,
}

impl SweepExecutor {
    /// An executor over all available cores, measuring under `seed`.
    pub fn new(seed: u64) -> Self {
        let threads =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { seed, threads }
    }

    /// A single-threaded executor — the reference ordering every parallel
    /// run must reproduce bitwise.
    pub fn serial(seed: u64) -> Self {
        Self { seed, threads: 1 }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The sweep seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The seed configuration `index` is measured under.
    pub fn config_seed(&self, index: usize) -> u64 {
        split_seed(self.seed, index)
    }

    /// Fans `items` out to workers that each own a state built by
    /// `make_state`, calling `f(state, item, config_seed)` per item.
    /// Results are returned in the order of `items`.
    ///
    /// Work distribution is a shared atomic cursor claimed in *chunks*
    /// (dynamic scheduling with amortized cursor traffic): each worker
    /// claims a run of consecutive indices per `fetch_add`, so cursor
    /// contention and per-item scheduling overhead shrink by the chunk
    /// length, while load imbalance between configurations still cannot
    /// idle workers for long. Each worker constructs its state once, before
    /// entering the steal loop. Results land in lock-free write-once slots
    /// ([`ResultSlots`]); because `f`'s output depends only on
    /// `(item, config_seed)`, the schedule cannot leak into the results.
    pub fn map_with<S, C, T>(
        &self,
        items: &[C],
        make_state: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, &C, u64) -> T + Sync,
    ) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut state = make_state();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, item, self.config_seed(i)))
                .collect();
        }

        // Chunk length: ~4 claims per worker over the sweep balances cursor
        // amortization against tail imbalance; capped so enormous sweeps
        // still rebalance.
        let chunk = items.len().div_ceil(workers * 4).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let slots = ResultSlots::new(items.len());
        let run_worker = || {
            // Worker state is built once per worker, outside the steal loop.
            let mut state = make_state();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= items.len() {
                    break;
                }
                let end = (start + chunk).min(items.len());
                for i in start..end {
                    let out = f(&mut state, &items[i], self.config_seed(i));
                    // SAFETY: the cursor hands out each index exactly once.
                    unsafe { slots.write(i, out) };
                }
            }
        };
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| run_worker());
            }
        })
        .expect("sweep worker panicked");

        // SAFETY: the scope joined every worker and all indices up to
        // `items.len()` were claimed, so every slot is initialized.
        unsafe { slots.into_vec() }
    }

    /// Stateless variant of [`map_with`](SweepExecutor::map_with) for
    /// model-only (noise-free) sweeps.
    pub fn map<C, T>(&self, items: &[C], f: impl Fn(&C, u64) -> T + Sync) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        self.map_with(items, || (), |_, item, seed| f(item, seed))
    }

    /// Measurement fan-out: each worker owns a [`MeasurementRunner`] built
    /// by `make_runner`, and the runner is [reseeded](MeasurementRunner::reseed)
    /// with the item's [`config_seed`](SweepExecutor::config_seed) before
    /// `f` measures it — the contract that makes sweep output a pure
    /// function of `(sweep_seed, items)`.
    pub fn run_measured<C, T>(
        &self,
        items: &[C],
        make_runner: impl Fn() -> MeasurementRunner + Sync,
        f: impl Fn(&mut MeasurementRunner, &C) -> T + Sync,
    ) -> Vec<T>
    where
        C: Sync,
        T: Send,
    {
        self.map_with(items, make_runner, |runner, item, seed| {
            runner.reseed(seed);
            f(runner, item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enprop_units::{Seconds, Watts};

    #[test]
    fn map_preserves_enumeration_order() {
        let items: Vec<usize> = (0..100).collect();
        let exec = SweepExecutor::new(1).with_threads(8);
        let out = exec.map(&items, |x, _| x * 3);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_with_thread_local_state_counts_all_items() {
        // Worker-local counters must jointly cover every item exactly once.
        let items: Vec<usize> = (0..57).collect();
        let exec = SweepExecutor::new(9).with_threads(4);
        let out = exec.map_with(
            &items,
            || 0usize,
            |count, item, _| {
                *count += 1;
                *item
            },
        );
        assert_eq!(out, items);
    }

    #[test]
    fn config_seeds_are_distinct_and_order_independent() {
        let exec = SweepExecutor::new(1234);
        let forward: Vec<u64> = (0..64).map(|i| exec.config_seed(i)).collect();
        let backward: Vec<u64> = (0..64).rev().map(|i| exec.config_seed(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        let mut sorted = forward.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), forward.len(), "seed collision");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let exec = SweepExecutor::new(7).with_threads(8);
        let out: Vec<u64> = exec.map(&[] as &[u32], |_, s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn run_measured_is_thread_count_invariant() {
        // The tentpole contract at the executor level: identical measured
        // output for 1, 2, and 8 workers.
        let items: Vec<f64> = (1..=12).map(|i| 10.0 * i as f64).collect();
        let measure = |threads: usize| {
            SweepExecutor::new(77).with_threads(threads).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = measure(1);
        assert_eq!(serial, measure(2));
        assert_eq!(serial, measure(8));
    }

    #[test]
    fn chunked_claiming_covers_every_length() {
        // Exercise chunk-boundary arithmetic: lengths around multiples of
        // the chunk size, odd worker counts, workers > items.
        for len in [1usize, 2, 3, 7, 16, 63, 64, 65, 129] {
            for threads in [2usize, 3, 8, 200] {
                let items: Vec<usize> = (0..len).collect();
                let exec = SweepExecutor::new(5).with_threads(threads);
                let out = exec.map(&items, |x, _| x + 1);
                let expect: Vec<usize> = (1..=len).collect();
                assert_eq!(out, expect, "len {len} threads {threads}");
            }
        }
    }

    #[test]
    fn results_are_bitwise_identical_across_chunking_schedules() {
        // The determinism contract must be independent of the chunk size
        // implied by the worker count.
        let items: Vec<f64> = (1..=40).map(|i| 5.0 * i as f64).collect();
        let measure = |threads: usize| {
            SweepExecutor::new(4242).with_threads(threads).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        let serial = measure(1);
        for threads in [3usize, 5, 16] {
            assert_eq!(serial, measure(threads), "threads {threads}");
        }
    }

    #[test]
    fn sweep_seed_changes_results() {
        let items = [50.0f64, 80.0];
        let run = |seed: u64| {
            SweepExecutor::serial(seed).run_measured(
                &items,
                || MeasurementRunner::new(Watts(90.0), 0),
                |runner, &steady| {
                    runner.measure(Seconds(20.0), Watts(steady), Watts::ZERO, Seconds::ZERO)
                },
            )
        };
        assert_ne!(run(1), run(2));
    }
}
