//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a simple
//! wall-clock mean instead of criterion's full statistical machinery.
//! Results print one line per benchmark: name, mean time per iteration,
//! and throughput when configured.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the optimizer barrier used inside `Bencher::iter` loops.
pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Prints the closing summary (no-op in the stub).
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Declares how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_bench(&name, self.sample_size.unwrap_or(20), self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        D: ?Sized,
        F: FnMut(&mut Bencher, &D),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        let mut wrapper = |b: &mut Bencher| f(b, input);
        run_bench(&name, self.sample_size.unwrap_or(20), self.throughput, &mut wrapper);
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter`-style id.
    pub fn new(function: &str, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id from a bare parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording `sample_size` samples (after one warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 / mean.as_secs_f64()),
        Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 / mean.as_secs_f64()),
    });
    println!("bench {name}: {mean:?}/iter{}", rate.unwrap_or_default());
}

/// Bundles benchmark functions into one named group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
