//! Dense row-major `f64` matrices for the compute kernels.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a square zero matrix.
    pub fn square(n: usize) -> Self {
        Self::zeros(n, n)
    }

    /// Deterministically fills a matrix with values in roughly [−1, 1]
    /// derived from `seed` via SplitMix64 — reproducible without an RNG
    /// dependency.
    pub fn filled(rows: usize, cols: usize, seed: u64) -> Self {
        let mut m = Self::zeros(rows, cols);
        let mut state = seed;
        for v in &mut m.data {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            *v = (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// The backing row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The backing row-major slice, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A contiguous row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Splits the matrix into `parts` contiguous horizontal bands of rows,
    /// as mutable slices — the Fig. 3 decomposition of A and C. The first
    /// `rows % parts` bands get one extra row.
    pub fn row_bands_mut(&mut self, parts: usize) -> Vec<&mut [f64]> {
        assert!(parts >= 1 && parts <= self.rows, "invalid band count");
        let base = self.rows / parts;
        let extra = self.rows % parts;
        let cols = self.cols;
        let mut out = Vec::with_capacity(parts);
        let mut rest: &mut [f64] = &mut self.data;
        for k in 0..parts {
            let rows_here = base + usize::from(k < extra);
            let (band, tail) = rest.split_at_mut(rows_here * cols);
            out.push(band);
            rest = tail;
        }
        out
    }

    /// Largest absolute element-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_deterministic_and_bounded() {
        let a = Matrix::filled(8, 8, 3);
        let b = Matrix::filled(8, 8, 3);
        let c = Matrix::filled(8, 8, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::square(4);
        m.set(2, 3, 7.5);
        assert_eq!(m.get(2, 3), 7.5);
        assert_eq!(m.row(2)[3], 7.5);
    }

    #[test]
    fn row_bands_cover_matrix() {
        let mut m = Matrix::zeros(10, 4);
        let bands = m.row_bands_mut(3);
        // 10 rows over 3 bands → 4, 3, 3.
        assert_eq!(bands[0].len(), 4 * 4);
        assert_eq!(bands[1].len(), 3 * 4);
        assert_eq!(bands[2].len(), 3 * 4);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let a = Matrix::filled(5, 5, 1);
        assert_eq!(a.max_abs_diff(&a.clone()), 0.0);
        let mut b = a.clone();
        b.set(0, 0, a.get(0, 0) + 0.25);
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-15);
    }
}
