//! Fig. 4: dynamic power and performance vs. average CPU utilization for
//! the MKL and OpenBLAS threadgroup DGEMM at N = 17408.
//!
//! Reproduced claims: performance is linear in utilization up to a
//! ~700 Gflop/s plateau; dynamic power starts linear then becomes a
//! *non-functional* relation of average utilization (points at the same
//! utilization with different powers — A/B and the C/D lines); the linear
//! and concave-quadratic trend lines of the prior literature fit poorly.

use enprop_apps::sizes::FIG4_N;
use enprop_apps::CpuDgemmApp;
use enprop_cpusim::BlasFlavor;
use enprop_ep::{WeakEpReport, WeakEpTest};
use enprop_stats::trend::{FunctionalTest, Plateau, TrendLine};
use enprop_units::Joules;
use serde::{Deserialize, Serialize};

/// One configuration's Fig. 4 coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Configuration label (`MKL row p=4 t=6`).
    pub label: String,
    /// Average CPU utilization (fraction of 48 logical cores).
    pub avg_utilization: f64,
    /// Spread (σ) of per-core utilizations.
    pub utilization_spread: f64,
    /// Dynamic power, watts.
    pub dynamic_power: f64,
    /// Performance, Gflop/s.
    pub gflops: f64,
    /// Dynamic energy, joules.
    pub dynamic_energy: f64,
}

/// One BLAS flavor's panel pair of Fig. 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Flavor {
    /// Flavor name.
    pub flavor: String,
    /// Every configuration's coordinates.
    pub points: Vec<Fig4Point>,
    /// Linear R² of the power-vs-utilization trend (the green line).
    pub power_linear_r2: f64,
    /// Whether the quadratic trend (the blue line) is concave.
    pub power_quadratic_concave: bool,
    /// Quadratic R² of the power-vs-utilization trend.
    pub power_quadratic_r2: f64,
    /// The detected performance plateau (Gflop/s level, onset utilization).
    pub plateau: Option<(f64, f64)>,
    /// The non-functionality verdict for power vs. utilization.
    pub power_non_functional: bool,
    /// Largest within-utilization-cell relative power spread.
    pub max_within_spread: f64,
    /// Weak-EP verdict over the full-workload configurations.
    pub weak_ep: WeakEpReport,
}

/// Generates Fig. 4 for both BLAS flavors.
pub fn generate() -> Vec<Fig4Flavor> {
    let app = CpuDgemmApp::haswell();
    [BlasFlavor::IntelMkl, BlasFlavor::OpenBlas]
        .into_iter()
        .map(|flavor| {
            let sweep = app.sweep_exact(FIG4_N, flavor);
            let points: Vec<Fig4Point> = sweep
                .iter()
                .map(|p| Fig4Point {
                    label: p.point.config.label(),
                    avg_utilization: p.avg_utilization.fraction(),
                    utilization_spread: p.utilization_spread,
                    dynamic_power: p.point.dynamic_power().value(),
                    gflops: p.gflops,
                    dynamic_energy: p.point.dynamic_energy.value(),
                })
                .collect();

            let us: Vec<f64> = points.iter().map(|p| p.avg_utilization).collect();
            let ps: Vec<f64> = points.iter().map(|p| p.dynamic_power).collect();
            let gs: Vec<f64> = points.iter().map(|p| p.gflops).collect();

            let trend = TrendLine::fit(&us, &ps);
            let plateau = Plateau::detect(&us, &gs, 0.08).map(|pl| (pl.level, pl.onset_x));
            let functional = FunctionalTest::run(&us, &ps, 20, 0.15);

            // Weak EP over the configurations that use every core (equal
            // utilization precondition): 48-thread configurations.
            let full: Vec<Joules> = sweep
                .iter()
                .filter(|p| p.point.config.total_threads() == 48)
                .map(|p| p.point.dynamic_energy)
                .collect();
            let weak_ep = WeakEpTest::default().run(&full);

            Fig4Flavor {
                flavor: flavor.name().to_string(),
                power_linear_r2: trend.linear.r_squared,
                power_quadratic_concave: trend
                    .quadratic
                    .as_ref()
                    .map(|q| q.is_concave_quadratic())
                    .unwrap_or(false),
                power_quadratic_r2: trend.quadratic.as_ref().map(|q| q.r_squared).unwrap_or(0.0),
                plateau,
                power_non_functional: functional.is_non_functional(),
                max_within_spread: functional.max_within_spread,
                weak_ep,
                points,
            }
        })
        .collect()
}

/// Renders the figure's headline rows.
pub fn render() -> String {
    let mut out = String::new();
    for f in generate() {
        out.push_str(&format!(
            "--- {} DGEMM, N = {FIG4_N} ({} configurations) ---\n",
            f.flavor,
            f.points.len()
        ));
        if let Some((level, onset)) = f.plateau {
            out.push_str(&format!(
                "performance plateau: {level:.0} Gflop/s from {:.0}% utilization\n",
                onset * 100.0
            ));
        }
        out.push_str(&format!(
            "power vs utilization: linear R² = {:.3}, quadratic (concave: {}) R² = {:.3}\n",
            f.power_linear_r2, f.power_quadratic_concave, f.power_quadratic_r2
        ));
        out.push_str(&format!(
            "non-functional relationship: {} (same-utilization power spread up to {})\n",
            f.power_non_functional,
            crate::render::pct(f.max_within_spread)
        ));
        out.push_str(&format!(
            "weak EP over 48-thread configurations: {} (spread {})\n",
            if f.weak_ep.holds { "HOLDS" } else { "VIOLATED" },
            crate::render::pct(f.weak_ep.rel_spread)
        ));
        // The two panels: dynamic power and performance vs utilization.
        let power_pts: Vec<(f64, f64)> =
            f.points.iter().map(|p| (p.avg_utilization * 100.0, p.dynamic_power)).collect();
        let perf_pts: Vec<(f64, f64)> =
            f.points.iter().map(|p| (p.avg_utilization * 100.0, p.gflops)).collect();
        out.push_str(&crate::scatter::scatter(
            "dynamic power vs average CPU utilization",
            "utilization [%]",
            "dynamic power [W]",
            &[crate::scatter::Series { glyph: '.', points: power_pts }],
            64,
            12,
        ));
        out.push_str(&crate::scatter::scatter(
            "performance vs average CPU utilization",
            "utilization [%]",
            "performance [Gflop/s]",
            &[crate::scatter::Series { glyph: '.', points: perf_pts }],
            64,
            12,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_flavors_show_non_functional_power() {
        for f in generate() {
            assert!(f.power_non_functional, "{}", f.flavor);
            assert!(f.max_within_spread > 0.15, "{}: {}", f.flavor, f.max_within_spread);
        }
    }

    #[test]
    fn performance_plateaus_near_700() {
        for f in generate() {
            let (level, onset) = f.plateau.unwrap_or_else(|| panic!("{}: no plateau", f.flavor));
            assert!((550.0..780.0).contains(&level), "{}: {level}", f.flavor);
            assert!(onset < 0.95, "{}: onset {onset}", f.flavor);
        }
    }

    #[test]
    fn weak_ep_violated_on_equal_utilization_configs() {
        for f in generate() {
            assert!(!f.weak_ep.holds, "{}", f.flavor);
        }
    }

    #[test]
    fn trend_lines_fit_poorly() {
        // Neither the linear nor the concave-quadratic literature trend
        // captures the scatter.
        for f in generate() {
            assert!(f.power_linear_r2 < 0.98, "{}: {}", f.flavor, f.power_linear_r2);
            assert!(f.power_quadratic_r2 < 0.98, "{}", f.flavor);
        }
    }
}
