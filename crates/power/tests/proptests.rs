//! Property-based tests of the power-measurement substrate.

use enprop_power::{
    CompositeLoad, ConstantLoad, EnergySession, MeterSpec, PiecewiseLoad, PowerSource,
    SimulatedWattsUp,
};
use enprop_units::{Seconds, Watts};
use proptest::prelude::*;

fn quiet_spec() -> MeterSpec {
    MeterSpec { noise_sd_w: 0.0, resolution_w: 0.0, ..MeterSpec::default() }
}

proptest! {
    /// A noiseless meter integrates a constant load exactly (trapezoids on
    /// a constant are exact), for any duration and level.
    #[test]
    fn noiseless_constant_energy_exact(power in 0.0f64..500.0, secs in 1.0f64..300.0) {
        let mut meter = SimulatedWattsUp::new(quiet_spec(), Watts(0.0), 1);
        let app = ConstantLoad::new(Watts(power), Seconds(secs));
        let trace = meter.record(&app);
        let truth = power * secs;
        prop_assert!((trace.energy().value() - truth).abs() < 1e-6 * truth.max(1.0));
    }

    /// Session decomposition identity: total = static + dynamic, and the
    /// noiseless dynamic equals the app's analytic energy when segments
    /// align with the sampling grid.
    #[test]
    fn session_decomposition(
        idle in 10.0f64..200.0,
        power in 1.0f64..300.0,
        secs in 1u64..120,
    ) {
        let meter = SimulatedWattsUp::new(quiet_spec(), Watts(idle), 3);
        let mut session = EnergySession::with_baseline_window(meter, Seconds(30.0));
        let app = ConstantLoad::new(Watts(power), Seconds(secs as f64));
        let r = session.measure(&app);
        prop_assert!((r.total.value() - r.static_energy.value() - r.dynamic.value()).abs() < 1e-6);
        let truth = app.energy().value();
        prop_assert!((r.dynamic.value() - truth).abs() < 1e-6 * truth.max(1.0), "{r:?}");
    }

    /// Piecewise energy equals the sum of segment energies.
    #[test]
    fn piecewise_energy_additive(
        segs in prop::collection::vec((1.0f64..30.0, 0.0f64..300.0), 1..8)
    ) {
        let mut load = PiecewiseLoad::new();
        let mut truth = 0.0;
        for &(len, p) in &segs {
            load.push(Seconds(len), Watts(p));
            truth += len * p;
        }
        prop_assert!((load.energy().value() - truth).abs() < 1e-9 * truth.max(1.0));
        let total_len: f64 = segs.iter().map(|s| s.0).sum();
        prop_assert!((load.duration().value() - total_len).abs() < 1e-9);
    }

    /// Composite loads superpose: power and energy are sums.
    #[test]
    fn composite_superposition(
        p1 in 0.0f64..300.0,
        d1 in 1.0f64..60.0,
        p2 in 0.0f64..300.0,
        d2 in 1.0f64..60.0,
        t in 0.0f64..60.0,
    ) {
        let a = ConstantLoad::new(Watts(p1), Seconds(d1));
        let b = ConstantLoad::new(Watts(p2), Seconds(d2));
        let c = CompositeLoad::new(a, b);
        let expect = a.power_at(Seconds(t)) + b.power_at(Seconds(t));
        prop_assert_eq!(c.power_at(Seconds(t)), expect);
        prop_assert!((c.energy().value() - (p1 * d1 + p2 * d2)).abs() < 1e-9);
        prop_assert_eq!(c.duration(), Seconds(d1.max(d2)));
    }

    /// Noisy measurements of long runs converge to the truth within a few
    /// noise standard errors.
    #[test]
    fn noisy_long_run_unbiased(seed in 0u64..50) {
        let spec = MeterSpec::default(); // 0.5 W noise, 0.1 W steps
        let mut meter = SimulatedWattsUp::new(spec, Watts(90.0), seed);
        let app = ConstantLoad::new(Watts(120.0), Seconds(600.0));
        let mean = meter.record(&app).mean_power().expect("long trace").value();
        prop_assert!((mean - 210.0).abs() < 0.5, "mean {mean}");
    }

    /// Quantization keeps readings on the resolution grid.
    #[test]
    fn quantization_grid(power in 0.0f64..400.0, res_steps in 1u32..20) {
        let res = res_steps as f64 * 0.1;
        let spec = MeterSpec { noise_sd_w: 0.0, resolution_w: res, ..MeterSpec::default() };
        let mut meter = SimulatedWattsUp::new(spec, Watts(0.0), 7);
        let trace = meter.record(&ConstantLoad::new(Watts(power), Seconds(3.0)));
        for s in trace.samples() {
            let steps = s.power.value() / res;
            prop_assert!((steps - steps.round()).abs() < 1e-6, "{:?}", s);
        }
    }
}
