//! Blocked serial DGEMM: `C ← α·A·B + β·C`.
//!
//! The cache-blocked kernel mirrors the structure of the GPU application of
//! the paper's Fig. 5: the computation proceeds tile by tile, accumulating
//! sub-products of `bs × bs` blocks. On a CPU the "shared memory" role is
//! played by the L1/L2-resident tiles.

use crate::matrix::Matrix;

/// Naive triple loop, used as the correctness reference.
pub fn dgemm_naive(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix) {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(b.rows(), k, "inner dimension mismatch");
    assert_eq!((c.rows(), c.cols()), (m, n), "output shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(i, l) * b.get(l, j);
            }
            c.set(i, j, alpha * acc + beta * c.get(i, j));
        }
    }
}

/// Cache-blocked DGEMM with a square tile of dimension `bs`.
///
/// Operates on raw row-major slices so the threadgroup harness can hand each
/// thread a disjoint band of A and C while sharing B.
///
/// * `a`: `m × k` band of A (row-major, leading dimension `k`)
/// * `b`: `k × n` shared B
/// * `c`: `m × n` band of C
#[allow(clippy::too_many_arguments)] // deliberately BLAS-shaped signature
pub fn dgemm_blocked(
    alpha: f64,
    a: &[f64],
    b: &[f64],
    beta: f64,
    c: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    bs: usize,
) {
    assert!(bs > 0, "block size must be positive");
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    assert_eq!(c.len(), m * n, "C size mismatch");

    // Scale C by beta once up front.
    if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }

    for i0 in (0..m).step_by(bs) {
        let i1 = (i0 + bs).min(m);
        for l0 in (0..k).step_by(bs) {
            let l1 = (l0 + bs).min(k);
            for j0 in (0..n).step_by(bs) {
                let j1 = (j0 + bs).min(n);
                // Micro-kernel on the (i0..i1) × (j0..j1) tile.
                for i in i0..i1 {
                    let arow = &a[i * k..(i + 1) * k];
                    let crow = &mut c[i * n..(i + 1) * n];
                    for l in l0..l1 {
                        let aval = alpha * arow[l];
                        let brow = &b[l * n..(l + 1) * n];
                        for j in j0..j1 {
                            crow[j] += aval * brow[j];
                        }
                    }
                }
            }
        }
    }
}

/// Flop count of one `m × k × n` GEMM (one multiply + one add per inner
/// iteration); `2 N³` for square matrices, the paper's work measure.
pub fn dgemm_flops(m: usize, k: usize, n: usize) -> f64 {
    2.0 * m as f64 * k as f64 * n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked_on_matrices(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &mut Matrix, bs: usize) {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        dgemm_blocked(alpha, a.as_slice(), b.as_slice(), beta, c.as_mut_slice(), m, k, n, bs);
    }

    #[test]
    fn blocked_matches_naive_square() {
        for &n in &[1usize, 2, 7, 16, 33] {
            let a = Matrix::filled(n, n, 1);
            let b = Matrix::filled(n, n, 2);
            let mut c1 = Matrix::filled(n, n, 3);
            let mut c2 = c1.clone();
            dgemm_naive(1.5, &a, &b, 0.5, &mut c1);
            blocked_on_matrices(1.5, &a, &b, 0.5, &mut c2, 8);
            assert!(c1.max_abs_diff(&c2) < 1e-10, "n = {n}");
        }
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let (m, k, n) = (9, 14, 5);
        let a = Matrix::filled(m, k, 10);
        let b = Matrix::filled(k, n, 20);
        let mut c1 = Matrix::filled(m, n, 30);
        let mut c2 = c1.clone();
        dgemm_naive(1.0, &a, &b, 1.0, &mut c1);
        blocked_on_matrices(1.0, &a, &b, 1.0, &mut c2, 4);
        assert!(c1.max_abs_diff(&c2) < 1e-10);
    }

    #[test]
    fn block_size_does_not_change_result() {
        let n = 24;
        let a = Matrix::filled(n, n, 5);
        let b = Matrix::filled(n, n, 6);
        let mut reference = Matrix::square(n);
        blocked_on_matrices(1.0, &a, &b, 0.0, &mut reference, 1);
        for &bs in &[2usize, 3, 8, 24, 100] {
            let mut c = Matrix::square(n);
            blocked_on_matrices(1.0, &a, &b, 0.0, &mut c, bs);
            assert!(reference.max_abs_diff(&c) < 1e-10, "bs = {bs}");
        }
    }

    #[test]
    fn beta_zero_ignores_initial_c() {
        let n = 8;
        let a = Matrix::filled(n, n, 1);
        let b = Matrix::filled(n, n, 2);
        let mut c1 = Matrix::filled(n, n, 99);
        let mut c2 = Matrix::square(n);
        blocked_on_matrices(1.0, &a, &b, 0.0, &mut c1, 4);
        blocked_on_matrices(1.0, &a, &b, 0.0, &mut c2, 4);
        assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    #[test]
    fn flop_count() {
        assert_eq!(dgemm_flops(2, 3, 4), 48.0);
        assert_eq!(dgemm_flops(10, 10, 10), 2000.0);
    }
}
