//! Serial vs. parallel measured-sweep throughput.
//!
//! Benchmarks the full noisy measurement sweep (simulated WattsUp +
//! Student-t protocol) of the K40c (BS, G, R) space at a small N, once on
//! a single worker and once over all available cores. Throughput is
//! reported in configurations/sec; both paths produce bitwise-identical
//! output (asserted here once before timing).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use enprop_apps::{GpuMatMulApp, SweepExecutor};
use enprop_gpusim::GpuArch;

const N: usize = 2048;

fn bench(c: &mut Criterion) {
    let app = GpuMatMulApp::new(GpuArch::k40c(), 8);
    let serial = SweepExecutor::serial(42);
    let parallel = SweepExecutor::new(42);
    let configs = app.sweep_measured(N, &serial).len() as u64;
    assert_eq!(
        app.sweep_measured(N, &serial),
        app.sweep_measured(N, &parallel),
        "parallel sweep must reproduce the serial output bitwise"
    );

    let mut g = c.benchmark_group("sweep_measured");
    g.sample_size(10);
    g.throughput(Throughput::Elements(configs));
    g.bench_function("serial", |b| b.iter(|| app.sweep_measured(N, &serial)));
    g.bench_function(format!("parallel/{}", parallel.threads()), |b| {
        b.iter(|| app.sweep_measured(N, &parallel))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
