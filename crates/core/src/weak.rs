//! Weak energy proportionality: dynamic energy is a constant across all
//! application configurations solving the same workload.
//!
//! The definition carries preconditions on the *application*: it must be
//! load-balanced, one thread per core, no inter-thread communication — so
//! that utilization differences are attributable to the hardware. The test
//! then asks whether per-configuration dynamic energies are constant up to
//! a tolerance, and quantifies the violation by the relative spread.

use enprop_stats::describe::Summary;
use enprop_units::Joules;
use serde::{Deserialize, Serialize};

/// Configuration of the weak-EP test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakEpTest {
    /// Maximum tolerated relative spread `(max − min)/min` of dynamic
    /// energies across configurations.
    ///
    /// The paper's measurement precision is 2.5% per point; a default
    /// tolerance of 10% comfortably absorbs measurement error while the
    /// observed violations reach tens of percent.
    pub tolerance: f64,
}

impl Default for WeakEpTest {
    fn default() -> Self {
        Self { tolerance: 0.10 }
    }
}

/// Outcome of the weak-EP test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakEpReport {
    /// Mean dynamic energy across configurations.
    pub mean: f64,
    /// Coefficient of variation of the energies.
    pub cv: f64,
    /// Relative spread `(max − min)/min`.
    pub rel_spread: f64,
    /// The tolerance the verdict used.
    pub tolerance: f64,
    /// `true` when dynamic energy is constant (weak EP holds).
    pub holds: bool,
}

impl WeakEpTest {
    /// Runs the test on the dynamic energies of configurations solving the
    /// same workload. Panics with fewer than two configurations.
    pub fn run(&self, energies: &[Joules]) -> WeakEpReport {
        assert!(energies.len() >= 2, "weak-EP test needs at least 2 configurations");
        let vals: Vec<f64> = energies.iter().map(|e| e.value()).collect();
        assert!(vals.iter().all(|v| *v > 0.0), "dynamic energies must be positive");
        let s = Summary::of(&vals);
        let rel_spread = s.rel_range();
        WeakEpReport {
            mean: s.mean,
            cv: s.cv(),
            rel_spread,
            tolerance: self.tolerance,
            holds: rel_spread <= self.tolerance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn joules(v: &[f64]) -> Vec<Joules> {
        v.iter().map(|&x| Joules(x)).collect()
    }

    #[test]
    fn constant_energy_holds() {
        let r = WeakEpTest::default().run(&joules(&[100.0, 101.0, 99.5, 100.2]));
        assert!(r.holds);
        assert!(r.rel_spread < 0.02);
        assert!(r.cv < 0.01);
    }

    #[test]
    fn spread_beyond_tolerance_fails() {
        // The P100 cloud: the hungriest configuration nearly doubles the
        // frugal one.
        let r = WeakEpTest::default().run(&joules(&[204.0, 117.0, 120.0, 124.0]));
        assert!(!r.holds);
        assert!(r.rel_spread > 0.5);
    }

    #[test]
    fn tolerance_boundary() {
        let e = joules(&[100.0, 109.0]); // 9% spread
        assert!(WeakEpTest { tolerance: 0.10 }.run(&e).holds);
        assert!(!WeakEpTest { tolerance: 0.05 }.run(&e).holds);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_configuration_rejected() {
        WeakEpTest::default().run(&joules(&[100.0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_energy_rejected() {
        WeakEpTest::default().run(&joules(&[100.0, 0.0]));
    }
}
