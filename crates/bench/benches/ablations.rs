//! Bench + regeneration of the mechanism ablations (DESIGN.md's
//! attribution of each published artifact to one modeled mechanism).

use criterion::{criterion_group, criterion_main, Criterion};
use enprop_bench::figures::ablations;

fn bench(c: &mut Criterion) {
    println!("{}", ablations::render());
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("generate", |b| b.iter(ablations::generate));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
