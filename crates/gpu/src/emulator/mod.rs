//! A functional CUDA-style execution emulator.
//!
//! The emulator runs kernels the way the paper's GPUs do, structurally: a
//! grid of thread blocks, each block a 2-D array of threads that share a
//! per-block scratch memory and synchronize with barrier semantics
//! (`__syncthreads`). Kernels are expressed as barrier-phase state
//! machines ([`exec::BlockKernel`]) and interpreted cooperatively: one
//! host thread runs all threads of a block in lockstep phase order, blocks
//! execute in parallel waves sized by [`exec::WavePlan`] (host
//! parallelism, optionally capped by the modeled device's occupancy).
//! Memories are plain `f64` buffers ([`mem`]); event counts accumulate in
//! per-block plain counters flushed once per block. The original
//! OS-thread-per-CUDA-thread engine survives in [`legacy`] purely as the
//! equivalence oracle.
//!
//! Its purpose is *semantic ground truth* at small N:
//!
//! * the tiled DGEMM of the paper's Fig. 5 ([`tiled_dgemm`]) is executed
//!   for every `(BS, G, R)` and validated against a reference matmul;
//! * every memory access, flop and barrier is counted ([`mem::EventCounters`]),
//!   and the counts cross-validate the analytic CUPTI model
//!   ([`crate::cupti::CuptiReport`]) exactly.

pub mod exec;
pub mod fft_kernel;
pub mod legacy;
pub mod mem;
pub mod simd;
pub mod tiled_dgemm;

pub use exec::{
    run_grid, run_grid_monitored, run_grid_monitored_sampled, run_grid_unbatched, AccessPoint,
    AccessSink, BatchAccess, BatchCtx, BlockExit, BlockKernel, Dim2, ForceScalar, GlobalBatch,
    GlobalRun, NoSink, PhaseCtx, PhaseOutcome, PhaseTrace, ScalarProbe, SharedBatch, WavePlan,
};
pub use fft_kernel::EmuRowFft;
pub use simd::SimdPath;
pub use mem::{BlockCounters, BufId, EmuEvents, EventCounters, GlobalMem, SharedMem};
pub use tiled_dgemm::EmuDgemm;
