//! A small dense linear-algebra kernel: row-major matrices and LU
//! factorization with partial pivoting, sized for normal-equation systems of
//! regression problems (tens of unknowns, not thousands).

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from a row-major slice. Panics on a size mismatch.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data: data.to_vec() }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        let mut y = vec![0.0; self.rows];
        for (i, out) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Matrix product `A B`.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in mul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Solves `A x = b` for square `A` via LU with partial pivoting.
    /// Returns `None` when `A` is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length mismatch");
        let n = self.rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = lu[col * n + col].abs();
            for row in (col + 1)..n {
                let v = lu[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    lu.swap(col * n + j, pivot_row * n + j);
                }
                perm.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = lu[col * n + col];
            for row in (col + 1)..n {
                let factor = lu[row * n + col] / pivot;
                lu[row * n + col] = factor;
                for j in (col + 1)..n {
                    lu[row * n + j] -= factor * lu[col * n + j];
                }
            }
        }

        // Forward substitution with permuted rhs (L has unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[perm[i]];
            for j in 0..i {
                acc -= lu[i * n + j] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= lu[i * n + j] * x[j];
            }
            x[i] = acc / lu[i * n + i];
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the least-squares problem `min ‖X β − y‖₂` via the normal
/// equations `XᵀX β = Xᵀy`. Returns `None` when `XᵀX` is singular
/// (collinear regressors).
pub fn least_squares(x: &Matrix, y: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(x.rows(), y.len(), "row count of X must match y length");
    let xt = x.transpose();
    let xtx = xt.mul(x);
    let xty = xt.mul_vec(y);
    xtx.solve(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn solve_small_system() {
        // 2x + y = 5; x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(2, 2, &[2.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        vec_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        vec_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn identity_solves_to_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.5, 0.0];
        vec_close(&a.solve(&b).unwrap(), &b, 1e-15);
    }

    #[test]
    fn mul_and_transpose() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at[(0, 1)], 4.0);
        let ata = at.mul(&a);
        assert_eq!(ata.rows(), 3);
        assert_eq!(ata[(0, 0)], 17.0); // 1² + 4².
        vec_close(&a.mul_vec(&[1.0, 1.0, 1.0]), &[6.0, 15.0], 1e-12);
    }

    #[test]
    fn least_squares_recovers_exact_solution() {
        // y = 2 + 3x sampled exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let mut design = Matrix::zeros(4, 2);
        let mut y = vec![0.0; 4];
        for (i, &x) in xs.iter().enumerate() {
            design[(i, 0)] = 1.0;
            design[(i, 1)] = x;
            y[i] = 2.0 + 3.0 * x;
        }
        let beta = least_squares(&design, &y).unwrap();
        vec_close(&beta, &[2.0, 3.0], 1e-10);
    }

    #[test]
    fn larger_random_like_system_roundtrips() {
        // Build a well-conditioned 6×6 system and verify A·solve(A,b) = b.
        let n = 6;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 7 + j * 3 + 1) % 11) as f64 + if i == j { 15.0 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        let x = a.solve(&b).unwrap();
        vec_close(&a.mul_vec(&x), &b, 1e-9);
    }
}
