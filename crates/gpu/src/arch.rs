//! GPU architecture descriptions (the paper's Table I) and per-architecture
//! power-model constants.

use enprop_units::{BytesPerSecond, Hertz, MemBytes, Watts};
use serde::{Deserialize, Serialize};

/// Static description of a GPU architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuArch {
    /// Marketing name, e.g. "NVIDIA K40c".
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// CUDA (single-precision) cores per SM.
    pub cores_per_sm: usize,
    /// Double-precision units per SM (the paper's kernels are FP64).
    pub dp_units_per_sm: usize,
    /// Base core clock.
    pub clock: Hertz,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Shared memory available per SM.
    pub shared_mem_per_sm: MemBytes,
    /// Shared memory available to one block.
    pub shared_mem_per_block: MemBytes,
    /// L2 cache size.
    pub l2_cache: MemBytes,
    /// Board memory size.
    pub board_memory: MemBytes,
    /// Peak DRAM bandwidth.
    pub dram_bandwidth: BytesPerSecond,
    /// Thermal design power.
    pub tdp: Watts,
    /// CUDA / nvcc versions, for the Table I rendering.
    pub toolkit: String,
    /// Calibrated dynamic-power model.
    pub power: PowerModel,
}

/// Calibrated constants of the steady-state dynamic-power model
///
/// ```text
/// P = active_base
///   + compute_w · occ^occ_exponent · (gating·s_comp + (1 − gating))
///   + memory_w · s_mem
/// ```
///
/// where `occ` is achieved occupancy and `s_comp`/`s_mem` are the compute
/// and memory utilization shares of the kernel's bottleneck time.
///
/// `gating_effectiveness` models how well the architecture clock-gates
/// stalled pipelines: at 1.0 (Pascal) resident-but-stalled warps draw no
/// compute power (power follows the *utilization* `s_comp`); at 0.0
/// (Kepler) resident warps burn scheduler/register power whether or not
/// they issue, so power follows *occupancy* alone. The Kepler behaviour is
/// what makes dynamic energy `∝ occ(BS) × t(BS)` — jagged occupancy over
/// smooth time — producing the paper's non-monotone energy clouds while
/// `BS = 32` keeps the global time/energy optimum.
///
/// Architectures with auto-boost (P100) additionally multiply clock by
/// `boost_speedup` and power by `boost_power_mult` when occupancy reaches
/// `boost_occupancy` — the f·V² cube-law cost of the boosted state.
///
/// The warm-up component (`warmup_power_w` for at most `warmup_duration_s`
/// per kernel launch) is the paper's Fig. 6 "energy-expensive component
/// consuming constant dynamic power consumption of 58 W".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Dynamic floor while any kernel is resident (clock ungating, fetch).
    pub active_base_w: f64,
    /// Power of the compute pipeline at full occupancy and saturation.
    pub compute_w: f64,
    /// Exponent on occupancy in the compute term.
    pub occ_exponent: f64,
    /// Clock-gating effectiveness of stalled compute pipelines ∈ [0, 1].
    pub gating_effectiveness: f64,
    /// Power of the memory system at full bandwidth.
    pub memory_w: f64,
    /// Occupancy at which auto-boost engages (> 1 disables boost).
    pub boost_occupancy: f64,
    /// Clock multiplier in the boosted state.
    pub boost_speedup: f64,
    /// Power multiplier in the boosted state.
    pub boost_power_mult: f64,
    /// The Fig. 6 constant-power component, watts.
    pub warmup_power_w: f64,
    /// Maximum duration of the warm-up draw per kernel launch, seconds.
    pub warmup_duration_s: f64,
}

impl GpuArch {
    /// Peak double-precision throughput: `SMs × DP units × clock × 2` (FMA).
    pub fn peak_dp_flops(&self) -> f64 {
        self.num_sms as f64 * self.dp_units_per_sm as f64 * self.clock.value() * 2.0
    }

    /// The Nvidia K40c of Table I (Kepler GK110B).
    ///
    /// 2880 CUDA cores @ 745 MHz over 15 SMX units, 12 GB GDDR5,
    /// 1536 KB L2, 235 W TDP, 288 GB/s.
    pub fn k40c() -> Self {
        Self {
            name: "NVIDIA K40c".into(),
            num_sms: 15,
            cores_per_sm: 192,
            dp_units_per_sm: 64,
            clock: Hertz::from_mhz(745.0),
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            shared_mem_per_sm: MemBytes::from_kib(48.0),
            shared_mem_per_block: MemBytes::from_kib(48.0),
            l2_cache: MemBytes::from_kib(1536.0),
            board_memory: MemBytes::from_gib(12.0),
            dram_bandwidth: BytesPerSecond(288.0e9),
            tdp: Watts(235.0),
            toolkit: "(CUDA, nvcc) = (7.5, 7.5.17)".into(),
            power: PowerModel {
                // Kepler: no auto-boost; a heavy active floor plus a strong
                // occupancy-sensitive term. Calibrated so the BS=32
                // configuration wins both objectives (singleton global
                // front) while the BS ≤ 30 region shows an 10–20% energy
                // spread over a 5–10% time spread (Fig. 7).
                active_base_w: 25.0,
                compute_w: 150.0,
                occ_exponent: 2.0,
                gating_effectiveness: 0.0,
                memory_w: 20.0,
                boost_occupancy: 2.0, // disabled
                boost_speedup: 1.0,
                boost_power_mult: 1.0,
                warmup_power_w: 58.0,
                warmup_duration_s: 0.5,
            },
        }
    }

    /// The Nvidia P100 PCIe of Table I (Pascal GP100).
    ///
    /// 3584 CUDA cores @ 1328 MHz over 56 SMs, 12 GB (this SKU) CoWoS HBM2,
    /// 4096 KB L2, 250 W TDP, 732 GB/s.
    pub fn p100_pcie() -> Self {
        Self {
            name: "NVIDIA P100 PCIe".into(),
            num_sms: 56,
            cores_per_sm: 64,
            dp_units_per_sm: 32,
            clock: Hertz::from_mhz(1328.0),
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 32,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            shared_mem_per_sm: MemBytes::from_kib(64.0),
            shared_mem_per_block: MemBytes::from_kib(48.0),
            l2_cache: MemBytes::from_kib(4096.0),
            board_memory: MemBytes::from_gib(12.0),
            dram_bandwidth: BytesPerSecond(732.0e9),
            tdp: Watts(250.0),
            toolkit: "(CUDA, nvcc) = (10.1, 10.1.243)".into(),
            power: PowerModel {
                // Pascal: aggressive auto-boost at full occupancy. The
                // boosted state trades a small speedup for a large power
                // multiplier (f·V² cube law plus power-cap inefficiency),
                // which is what produces the paper's multi-point global
                // Pareto fronts (Fig. 8: ~50% energy for ~11% time).
                active_base_w: 15.0,
                compute_w: 80.0,
                occ_exponent: 1.3,
                gating_effectiveness: 1.0,
                memory_w: 39.0,
                boost_occupancy: 0.97,
                boost_speedup: 1.12,
                boost_power_mult: 2.6,
                warmup_power_w: 58.0,
                warmup_duration_s: 0.3,
            },
        }
    }

    /// All architectures the paper evaluates, in Table I order.
    pub fn catalog() -> Vec<GpuArch> {
        vec![Self::k40c(), Self::p100_pcie()]
    }

    /// Renders this architecture's rows of Table I.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        vec![
            (
                "No. of CUDA cores (Base clock)".into(),
                format!("{} ({:.0} MHz)", self.num_sms * self.cores_per_sm, self.clock.mhz()),
            ),
            (
                "Total board memory".into(),
                format!("{:.0} GB", self.board_memory.value() / (1 << 30) as f64),
            ),
            ("L2 cache size".into(), format!("{:.0} KB", self.l2_cache.value() / 1024.0)),
            ("Thermal design power (TDP)".into(), format!("{:.0} W", self.tdp.value())),
            ("(CUDA, nvcc) versions".into(), self.toolkit.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_core_counts() {
        let k40 = GpuArch::k40c();
        assert_eq!(k40.num_sms * k40.cores_per_sm, 2880);
        let p100 = GpuArch::p100_pcie();
        assert_eq!(p100.num_sms * p100.cores_per_sm, 3584);
    }

    #[test]
    fn peak_dp_matches_datasheets() {
        // K40c: ~1.43 Tflop/s FP64.
        let k40 = GpuArch::k40c().peak_dp_flops();
        assert!((k40 - 1.43e12).abs() / 1.43e12 < 0.01, "{k40:e}");
        // P100 PCIe at base clock: ~4.76 Tflop/s FP64.
        let p100 = GpuArch::p100_pcie().peak_dp_flops();
        assert!((p100 - 4.76e12).abs() / 4.76e12 < 0.01, "{p100:e}");
    }

    #[test]
    fn table_rows_render() {
        let rows = GpuArch::k40c().table_rows();
        assert_eq!(rows[0].1, "2880 (745 MHz)");
        assert_eq!(rows[1].1, "12 GB");
        assert_eq!(rows[2].1, "1536 KB");
        assert_eq!(rows[3].1, "235 W");
    }

    #[test]
    fn catalog_has_both_gpus() {
        let names: Vec<String> = GpuArch::catalog().into_iter().map(|g| g.name).collect();
        assert_eq!(names, vec!["NVIDIA K40c".to_string(), "NVIDIA P100 PCIe".to_string()]);
    }

    #[test]
    fn k40c_has_no_boost_p100_does() {
        assert!(GpuArch::k40c().power.boost_occupancy > 1.0);
        assert!(GpuArch::p100_pcie().power.boost_occupancy <= 1.0);
        // Both model the 58 W warm-up component.
        assert_eq!(GpuArch::k40c().power.warmup_power_w, 58.0);
        assert_eq!(GpuArch::p100_pcie().power.warmup_power_w, 58.0);
    }
}
