//! ASCII scatter plots, so `repro` can *draw* the paper's figures in a
//! terminal, not just tabulate them.

/// One labeled point series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Glyph used for this series' points.
    pub glyph: char,
    /// The (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// Renders one or more series into a `width × height` character canvas
/// with axis annotations. Later series overwrite earlier ones where they
/// collide (draw fronts after clouds).
pub fn scatter(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 6, "canvas too small");
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    assert!(!all.is_empty(), "nothing to plot");

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Degenerate ranges get a ±5% pad.
    if (x_max - x_min).abs() < f64::EPSILON {
        x_min -= 0.05 * x_min.abs().max(1.0);
        x_max += 0.05 * x_max.abs().max(1.0);
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_min -= 0.05 * y_min.abs().max(1.0);
        y_max += 0.05 * y_max.abs().max(1.0);
    }

    let mut canvas = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = s.glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    for (row_idx, row) in canvas.iter().enumerate() {
        let y_here = y_max - (y_max - y_min) * row_idx as f64 / (height - 1) as f64;
        let label = if row_idx == 0 || row_idx == height - 1 || row_idx == height / 2 {
            format!("{y_here:>10.1}")
        } else {
            " ".repeat(10)
        };
        out.push_str(&format!("{label} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{} +{}+\n", " ".repeat(10), "-".repeat(width)));
    out.push_str(&format!(
        "{} {:<w$.3}{:>w2$.3}   x: {x_label}, y: {y_label}\n",
        " ".repeat(10),
        x_min,
        x_max,
        w = width / 2,
        w2 = width - width / 2,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series { glyph: '.', points: vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)] },
            Series { glyph: '#', points: vec![(0.0, 0.0), (2.0, 4.0)] },
        ]
    }

    #[test]
    fn plot_contains_glyphs_and_labels() {
        let p = scatter("demo", "time", "energy", &demo_series(), 40, 10);
        assert!(p.contains('#'));
        assert!(p.contains("demo"));
        assert!(p.contains("x: time, y: energy"));
        // 1 title + 10 canvas rows + axis + labels.
        assert_eq!(p.lines().count(), 13);
    }

    #[test]
    fn later_series_overwrites() {
        // The '#' front is drawn on top of the '.' cloud at shared points.
        let p = scatter("demo", "x", "y", &demo_series(), 40, 10);
        // Corner points are '#', the middle point stays '.'.
        assert!(p.matches('#').count() >= 2);
        assert!(p.contains('.'));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = vec![Series { glyph: 'o', points: vec![(1.0, 5.0), (1.0, 5.0)] }];
        let p = scatter("flat", "x", "y", &s, 20, 6);
        assert!(p.contains('o'));
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_series_rejected() {
        scatter("empty", "x", "y", &[], 20, 6);
    }
}
