//! End-to-end determinism and robustness suite for the sweep daemon.
//!
//! The serving-correctness contract under test: the NDJSON body of a
//! `POST /sweep` response is a pure function of the request — cold
//! compute, warm cache hit, a bypassed (`no_cache`) recomputation, eight
//! concurrent clients, and a daemon restarted over a torn persistent
//! store must all produce bitwise-identical bytes.

use enprop_serve::http::{http_request, read_response};
use enprop_serve::{run_load, LoadOptions, ServeConfig, Server, SweepRequest};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

fn temp_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "enprop-serve-it-{}-{label}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_config() -> ServeConfig {
    ServeConfig { threads: 2, read_timeout: Duration::from_millis(500), cache_dir: None }
}

/// A small but real sweep: k40c N=256, 2 products.
fn request_body(seed: u64, no_cache: bool) -> String {
    SweepRequest {
        arch: "k40c".to_string(),
        n: 256,
        products: 2,
        seed,
        chunk: 8,
        no_cache,
    }
    .to_json()
}

fn post_sweep(server: &Server, body: &str) -> (u16, Option<String>, Vec<u8>) {
    let response = http_request(server.addr(), "POST", "/sweep", body.as_bytes())
        .expect("sweep request should complete");
    let cache = response.header("X-Cache").map(str::to_string);
    (response.status, cache, response.body)
}

#[test]
fn cold_warm_and_bypassed_responses_are_bitwise_identical() {
    let server = match Server::start(quick_config(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };

    let (status, cache, cold) = post_sweep(&server, &request_body(7, false));
    assert_eq!(status, 200);
    assert_eq!(cache.as_deref(), Some("miss"));
    assert!(!cold.is_empty());
    let last_line = cold.split(|&b| b == b'\n').rfind(|l| !l.is_empty()).unwrap();
    assert!(last_line.starts_with(b"{\"done\":true"));

    let (status, cache, warm) = post_sweep(&server, &request_body(7, false));
    assert_eq!(status, 200);
    assert_eq!(cache.as_deref(), Some("hit"));
    assert_eq!(cold, warm, "cache hit must replay the exact bytes");

    // `no_cache` bypasses the cache read *and* write: the daemon recomputes
    // from scratch and must still produce the same bytes.
    let (status, cache, fresh) = post_sweep(&server, &request_body(7, true));
    assert_eq!(status, 200);
    assert_eq!(cache.as_deref(), Some("bypass"));
    assert_eq!(cold, fresh, "recomputation must equal the cached body bitwise");

    // A different seed is a different key and different bytes.
    let (_, cache, other) = post_sweep(&server, &request_body(8, false));
    assert_eq!(cache.as_deref(), Some("miss"));
    assert_ne!(cold, other);

    let stats = server.stats();
    assert_eq!(stats.cache_misses, 2, "seed 7 and seed 8 each computed once");
    assert!(stats.cache_hits >= 1);
    server.shutdown();
}

#[test]
fn eight_concurrent_clients_get_identical_bodies() {
    let server = match Server::start(quick_config(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };
    let addr = server.addr();
    let body = request_body(21, false);
    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let body = body.clone();
                scope.spawn(move || {
                    let response = http_request(addr, "POST", "/sweep", body.as_bytes())
                        .expect("concurrent sweep should complete");
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for pair in bodies.windows(2) {
        assert_eq!(pair[0], pair[1], "all concurrent clients must see the same bytes");
    }
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 1, "identical requests must coalesce onto one computation");
    assert_eq!(stats.sweeps, 8);
    server.shutdown();
}

#[test]
fn load_generator_reports_hits_and_identical_hot_bodies() {
    let server = match Server::start(quick_config(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };
    let options = LoadOptions {
        clients: 4,
        requests_per_client: 4,
        hot_keys: 2,
        seed_base: 42,
        arch: "k40c".to_string(),
        n: 256,
        products: 2,
        chunk: 8,
    };
    let report = run_load(server.addr(), &options);
    assert_eq!(report.requests, 16);
    assert_eq!(report.ok, 16, "errors: {:?}", report.errors);
    assert!(report.hot_identical);
    assert!(report.hits > 0, "hot keys must produce cache hits");
    assert!(report.misses >= 2, "cold keys must miss");
    assert!(report.cache_hit_rate > 0.0);
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_typed_400s_and_the_daemon_survives() {
    let server = match Server::start(quick_config(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };

    // Bad JSON body.
    let r = http_request(server.addr(), "POST", "/sweep", b"this is not json").unwrap();
    assert_eq!(r.status, 400);
    let text = String::from_utf8_lossy(&r.body).to_string();
    assert!(text.contains("\"error\":\"bad-request\""), "{text}");

    // Valid JSON, invalid field values.
    for body in [
        &br#"{"arch":"h100","n":256,"products":2}"#[..],
        &br#"{"arch":"k40c","n":0,"products":2}"#[..],
        &br#"{"arch":"k40c","n":256,"products":999}"#[..],
        &br#"{"arch":"k40c","n":256}"#[..],
    ] {
        let r = http_request(server.addr(), "POST", "/sweep", body).unwrap();
        assert_eq!(r.status, 400, "{}", String::from_utf8_lossy(body));
    }

    // Unknown route and wrong method.
    let r = http_request(server.addr(), "GET", "/nope", b"").unwrap();
    assert_eq!(r.status, 404);
    let r = http_request(server.addr(), "GET", "/sweep", b"").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("Allow"), Some("POST"));

    // After all that abuse, the daemon still serves a real sweep.
    let (status, _, body) = post_sweep(&server, &request_body(3, false));
    assert_eq!(status, 200);
    assert!(!body.is_empty());

    let stats = server.stats();
    assert!(stats.bad_requests >= 7);
    assert_eq!(stats.panics, 0);
    server.shutdown();
}

/// A torn request — the client dies mid-head or mid-body — must get a
/// clean typed 400, never hang a handler or kill the daemon.
#[test]
fn torn_requests_get_a_typed_400_without_wedging_the_daemon() {
    let server = match Server::start(quick_config(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };

    // Torn head: the request line stops mid-token and the client half-closes.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"POST /swe").unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let response = read_response(&mut stream).expect("daemon should answer the torn head");
        assert_eq!(response.status, 400);
        let text = String::from_utf8_lossy(&response.body).to_string();
        assert!(text.contains("\"error\":\"truncated\""), "{text}");
    }

    // Torn body: headers promise 100 bytes, the client sends 10 and dies.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(b"POST /sweep HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"arch\":\"k")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let response = read_response(&mut stream).expect("daemon should answer the torn body");
        assert_eq!(response.status, 400);
        let text = String::from_utf8_lossy(&response.body).to_string();
        assert!(text.contains("\"error\":\"truncated\""), "{text}");
    }

    // A stalled client (connects, sends nothing, keeps the socket open) is
    // bounded by the read timeout and answered 408.
    {
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.write_all(b"POST /sweep HTTP/1.1\r\n").unwrap();
        // Don't shutdown: just stop sending.
        let response = read_response(&mut stream).expect("daemon should time the stall out");
        assert_eq!(response.status, 408);
    }

    // The daemon survived all three and still serves.
    let (status, _, _) = post_sweep(&server, &request_body(5, false));
    assert_eq!(status, 200);
    server.shutdown();
}

/// The persistent store round-trips across a daemon restart, and a torn
/// tail appended by a "crash" is discarded without losing the clean prefix
/// — the replayed entry serves bitwise-identically as a hit.
#[test]
fn persistent_cache_survives_restart_and_torn_tail() {
    let dir = temp_dir("restart");
    let config = ServeConfig { cache_dir: Some(dir.clone()), ..quick_config() };

    let server_a = match Server::start(config.clone(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };
    let (status, cache, original) = post_sweep(&server_a, &request_body(11, false));
    assert_eq!(status, 200);
    assert_eq!(cache.as_deref(), Some("miss"));
    server_a.shutdown();

    // Crash mid-append: garbage and a half-written frame land after the
    // durable entry.
    let log = dir.join("cache.log");
    let clean_len = std::fs::metadata(&log).unwrap().len();
    {
        let mut file = std::fs::OpenOptions::new().append(true).open(&log).unwrap();
        file.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
    }

    let server_b = Server::start(config, "127.0.0.1:0").expect("restart should bind");
    let report = server_b.cache_load_report();
    assert_eq!(report.replayed, 1, "the durable entry must replay");
    assert!(report.torn_tail_bytes > 0, "the torn tail must be noticed");
    assert_eq!(
        std::fs::metadata(&log).unwrap().len(),
        clean_len,
        "the torn tail must be truncated away on open"
    );

    let (status, cache, replayed) = post_sweep(&server_b, &request_body(11, false));
    assert_eq!(status, 200);
    assert_eq!(cache.as_deref(), Some("hit"), "the replayed entry must serve as a hit");
    assert_eq!(original, replayed, "replayed bytes must be bitwise-identical");

    // The replay health is operator-visible through `GET /stats`.
    let stats = server_b.stats();
    assert_eq!(stats.cache_replayed, 1);
    assert_eq!(stats.cache_torn_tail_bytes, report.torn_tail_bytes);
    let r = http_request(server_b.addr(), "GET", "/stats", b"").unwrap();
    assert_eq!(r.status, 200);
    let text = String::from_utf8_lossy(&r.body).to_string();
    assert!(text.contains("\"cache_replayed\": 1"), "{text}");
    assert!(text.contains("\"cache_torn_tail_bytes\": 5"), "{text}");
    server_b.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn healthz_and_stats_answer() {
    let server = match Server::start(quick_config(), "127.0.0.1:0") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("SKIP: cannot bind a loopback socket here: {e}");
            return;
        }
    };
    let r = http_request(server.addr(), "GET", "/healthz", b"").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.body, b"ok\n");

    let (status, _, _) = post_sweep(&server, &request_body(2, false));
    assert_eq!(status, 200);

    let r = http_request(server.addr(), "GET", "/stats", b"").unwrap();
    assert_eq!(r.status, 200);
    let text = String::from_utf8_lossy(&r.body).to_string();
    assert!(text.contains("\"sweeps\": 1"), "{text}");
    assert!(text.contains("\"cache_misses\": 1"), "{text}");
    server.shutdown();
}
