//! Timestamped power traces and energy integration.

use enprop_units::{Joules, Seconds, Watts};

/// One meter reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Sample timestamp (relative to the trace start).
    pub at: Seconds,
    /// Measured power.
    pub power: Watts,
}

/// A time-ordered sequence of power samples, as produced by a meter
/// polled at a fixed rate.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    samples: Vec<PowerSample>,
}

impl PowerTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample; panics if timestamps go backwards.
    pub fn push(&mut self, at: Seconds, power: Watts) {
        if let Some(last) = self.samples.last() {
            assert!(at >= last.at, "samples must be time-ordered");
        }
        self.samples.push(PowerSample { at, power });
    }

    /// The samples in time order.
    pub fn samples(&self) -> &[PowerSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time span covered by the trace (0 for < 2 samples).
    pub fn duration(&self) -> Seconds {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.at - a.at,
            _ => Seconds::ZERO,
        }
    }

    /// Energy by trapezoidal integration over the whole trace.
    pub fn energy(&self) -> Joules {
        let mut acc = 0.0;
        for w in self.samples.windows(2) {
            let dt = (w[1].at - w[0].at).value();
            acc += 0.5 * (w[0].power.value() + w[1].power.value()) * dt;
        }
        Joules(acc)
    }

    /// Mean power: energy divided by duration; `None` for traces shorter
    /// than two samples.
    pub fn mean_power(&self) -> Option<Watts> {
        let d = self.duration();
        if d.value() <= 0.0 {
            return None;
        }
        Some(self.energy() / d)
    }

    /// Peak sampled power; `None` for an empty trace.
    pub fn peak_power(&self) -> Option<Watts> {
        self.samples
            .iter()
            .map(|s| s.power)
            .fold(None, |acc: Option<Watts>, p| Some(acc.map_or(p, |m| m.max(p))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(points: &[(f64, f64)]) -> PowerTrace {
        let mut t = PowerTrace::new();
        for &(at, p) in points {
            t.push(Seconds(at), Watts(p));
        }
        t
    }

    #[test]
    fn empty_trace() {
        let t = PowerTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.energy(), Joules::ZERO);
        assert_eq!(t.duration(), Seconds::ZERO);
        assert!(t.mean_power().is_none());
        assert!(t.peak_power().is_none());
    }

    #[test]
    fn constant_power_integration() {
        let t = trace(&[(0.0, 100.0), (1.0, 100.0), (2.0, 100.0)]);
        assert_eq!(t.energy(), Joules(200.0));
        assert_eq!(t.mean_power().unwrap(), Watts(100.0));
        assert_eq!(t.peak_power().unwrap(), Watts(100.0));
        assert_eq!(t.duration(), Seconds(2.0));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn trapezoid_on_ramp() {
        // Power ramps 0→100 over 2 s: energy = 100 J.
        let t = trace(&[(0.0, 0.0), (2.0, 100.0)]);
        assert_eq!(t.energy(), Joules(100.0));
        assert_eq!(t.mean_power().unwrap(), Watts(50.0));
        assert_eq!(t.peak_power().unwrap(), Watts(100.0));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unordered_samples() {
        let mut t = PowerTrace::new();
        t.push(Seconds(1.0), Watts(10.0));
        t.push(Seconds(0.5), Watts(10.0));
    }

    #[test]
    fn uneven_sampling_intervals() {
        let t = trace(&[(0.0, 10.0), (0.5, 10.0), (2.0, 10.0)]);
        assert!((t.energy().value() - 20.0).abs() < 1e-12);
    }
}
