//! Pareto-front computation (all objectives minimized).

use serde::{Deserialize, Serialize};

/// A bi-objective point: execution time and dynamic energy, both minimized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiPoint {
    /// Execution time (seconds, or any monotone performance cost).
    pub time: f64,
    /// Dynamic energy (joules).
    pub energy: f64,
}

impl BiPoint {
    /// Creates a point. Panics on non-finite coordinates — a NaN or
    /// infinite objective is always an upstream measurement bug, and
    /// letting it into a front silently corrupts every dominance
    /// comparison downstream. Use [`try_new`](Self::try_new) when the
    /// coordinates come from an untrusted pipeline.
    pub fn new(time: f64, energy: f64) -> Self {
        Self::try_new(time, energy)
            .unwrap_or_else(|| panic!("non-finite BiPoint coordinates ({time}, {energy})"))
    }

    /// Creates a point, returning `None` when either coordinate is NaN or
    /// infinite.
    pub fn try_new(time: f64, energy: f64) -> Option<Self> {
        if time.is_finite() && energy.is_finite() {
            Some(Self { time, energy })
        } else {
            None
        }
    }

    /// True when `self` dominates `other`: no worse in both objectives and
    /// strictly better in at least one.
    pub fn dominates(&self, other: &BiPoint) -> bool {
        self.time <= other.time
            && self.energy <= other.energy
            && (self.time < other.time || self.energy < other.energy)
    }
}

/// Computes the (minimizing) Pareto front of a 2-D point cloud.
///
/// Returns the indices of the non-dominated points sorted by increasing
/// time. Duplicate points are kept once (the first occurrence wins).
/// `O(n log n)`.
///
/// # Example
/// ```
/// use enprop_pareto::{pareto_front, BiPoint};
/// let pts = [
///     BiPoint::new(1.0, 9.0), // fast, hungry  -> on front
///     BiPoint::new(2.0, 4.0), // tradeoff      -> on front
///     BiPoint::new(2.5, 6.0), // dominated by (2.0, 4.0)
///     BiPoint::new(4.0, 1.0), // slow, frugal  -> on front
/// ];
/// assert_eq!(pareto_front(&pts), vec![0, 1, 3]);
/// ```
pub fn pareto_front(points: &[BiPoint]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    // Sort by time asc, then energy asc so the scan keeps the cheapest among
    // time ties, then drop exact duplicates of kept points. `total_cmp`
    // keeps the sort a total order even for NaN coordinates smuggled in via
    // deserialization or raw struct literals (the constructors reject them).
    idx.sort_by(|&a, &b| {
        points[a]
            .time
            .total_cmp(&points[b].time)
            .then(points[a].energy.total_cmp(&points[b].energy))
    });
    let mut front = Vec::new();
    let mut best_energy = f64::INFINITY;
    let mut last_kept: Option<BiPoint> = None;
    for &i in &idx {
        let p = points[i];
        // A smuggled NaN coordinate can never sit on a minimizing front.
        if p.time.is_nan() || p.energy.is_nan() {
            continue;
        }
        if let Some(k) = last_kept {
            if p == k {
                continue; // exact duplicate of a front point
            }
        }
        if p.energy < best_energy {
            // A time-tied point with equal energy would be a duplicate
            // (handled above); with higher energy it is dominated.
            front.push(i);
            best_energy = p.energy;
            last_kept = Some(p);
        }
    }
    front
}

/// True when `points[i]` is not dominated by any other point.
pub fn is_non_dominated(points: &[BiPoint], i: usize) -> bool {
    points
        .iter()
        .enumerate()
        .all(|(j, p)| j == i || !p.dominates(&points[i]))
}

/// Successive non-dominated layers ("non-dominated sorting").
///
/// Layer 0 is the global Pareto front; layer 1 is the front of the remaining
/// points, and so on. The paper's *local* Pareto fronts — "solutions that
/// are less optimal than the solutions in the global Pareto front" — are
/// exactly the deeper layers (or fronts of configuration sub-regions, which
/// callers obtain by slicing the input).
pub fn front_layers(points: &[BiPoint]) -> Vec<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..points.len()).collect();
    let mut layers = Vec::new();
    while !remaining.is_empty() {
        let sub: Vec<BiPoint> = remaining.iter().map(|&i| points[i]).collect();
        let local = pareto_front(&sub);
        let layer: Vec<usize> = local.iter().map(|&k| remaining[k]).collect();
        let keep: std::collections::HashSet<usize> = layer.iter().copied().collect();
        remaining.retain(|i| !keep.contains(i));
        // Exact duplicates of layer points never enter any layer via
        // `pareto_front`; sweep them into the same layer so the peeling
        // terminates.
        remaining.retain(|&i| {
            let dup = layer.iter().any(|&l| points[l] == points[i]);
            !dup
        });
        layers.push(layer);
    }
    layers
}

/// General k-objective Pareto front (all objectives minimized), `O(n²k)`.
///
/// Each row of `points` is one solution's objective vector; rows must share
/// a length. Returns indices of non-dominated rows in input order.
pub fn pareto_front_kd(points: &[Vec<f64>]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let k = points[0].len();
    assert!(points.iter().all(|p| p.len() == k), "ragged objective vectors");
    let dominates = |a: &[f64], b: &[f64]| {
        a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
    };
    let mut out = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if j != i && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<BiPoint> {
        v.iter().map(|&(t, e)| BiPoint::new(t, e)).collect()
    }

    #[test]
    fn single_point_is_front() {
        assert_eq!(pareto_front(&pts(&[(1.0, 1.0)])), vec![0]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
        assert!(front_layers(&[]).is_empty());
    }

    #[test]
    fn dominated_points_excluded() {
        let p = pts(&[(1.0, 5.0), (2.0, 6.0), (3.0, 4.0), (0.5, 10.0)]);
        let f = pareto_front(&p);
        assert_eq!(f, vec![3, 0, 2]);
    }

    #[test]
    fn all_on_front_when_strictly_tradeoff() {
        let p = pts(&[(1.0, 4.0), (2.0, 3.0), (3.0, 2.0), (4.0, 1.0)]);
        assert_eq!(pareto_front(&p).len(), 4);
    }

    #[test]
    fn duplicates_kept_once() {
        let p = pts(&[(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)]);
        assert_eq!(pareto_front(&p).len(), 1);
    }

    #[test]
    fn time_tie_keeps_lower_energy() {
        let p = pts(&[(1.0, 5.0), (1.0, 3.0)]);
        assert_eq!(pareto_front(&p), vec![1]);
    }

    #[test]
    fn front_members_are_non_dominated() {
        let p = pts(&[(3.0, 3.0), (1.0, 5.0), (5.0, 1.0), (2.0, 4.0), (4.0, 4.0)]);
        let f = pareto_front(&p);
        for &i in &f {
            assert!(is_non_dominated(&p, i));
        }
        // And non-members are dominated (no duplicates here).
        for i in 0..p.len() {
            if !f.contains(&i) {
                assert!(!is_non_dominated(&p, i), "point {i} should be dominated");
            }
        }
    }

    #[test]
    fn layers_partition_the_cloud() {
        let p = pts(&[(1.0, 4.0), (2.0, 3.0), (2.0, 5.0), (3.0, 4.0), (4.0, 6.0)]);
        let layers = front_layers(&p);
        let total: usize = layers.iter().map(|l| l.len()).sum();
        assert_eq!(total, p.len());
        // Layer 0 is the global front.
        assert_eq!(layers[0], pareto_front(&p));
        // Layers get "worse": every point in layer k+1 is dominated by some
        // point in layer <= k.
        for w in 1..layers.len() {
            for &i in &layers[w] {
                let dominated = layers[..w]
                    .iter()
                    .flatten()
                    .any(|&j| p[j].dominates(&p[i]) || p[j] == p[i]);
                assert!(dominated, "layer {w} point {i} not dominated by earlier layers");
            }
        }
    }

    #[test]
    fn constructor_rejects_non_finite_coordinates() {
        assert!(BiPoint::try_new(f64::NAN, 1.0).is_none());
        assert!(BiPoint::try_new(1.0, f64::NAN).is_none());
        assert!(BiPoint::try_new(f64::INFINITY, 1.0).is_none());
        assert!(BiPoint::try_new(1.0, f64::NEG_INFINITY).is_none());
        assert!(BiPoint::try_new(1.0, 2.0).is_some());
    }

    #[test]
    #[should_panic(expected = "non-finite BiPoint")]
    fn infallible_constructor_panics_on_nan() {
        BiPoint::new(f64::NAN, 1.0);
    }

    #[test]
    fn smuggled_nan_points_never_reach_the_front() {
        // Struct literals bypass the constructors (as deserialization can).
        let p = vec![
            BiPoint { time: f64::NAN, energy: 0.0 },
            BiPoint::new(1.0, 5.0),
            BiPoint { time: 2.0, energy: f64::NAN },
            BiPoint::new(3.0, 2.0),
        ];
        // Pre-fix this panicked on `partial_cmp(..).expect("NaN time")`.
        assert_eq!(pareto_front(&p), vec![1, 3]);
    }

    #[test]
    fn kd_front_matches_2d_on_two_objectives() {
        let p2 = pts(&[(3.0, 3.0), (1.0, 5.0), (5.0, 1.0), (2.0, 4.0), (4.0, 4.0)]);
        let pk: Vec<Vec<f64>> = p2.iter().map(|p| vec![p.time, p.energy]).collect();
        let mut a = pareto_front(&p2);
        let mut b = pareto_front_kd(&pk);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn kd_front_three_objectives() {
        let pts = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 1.0, 3.0],
            vec![2.0, 2.0, 4.0], // dominated by the first two? strictly: [1,2,3] <= [2,2,4] and < → dominated.
            vec![3.0, 3.0, 1.0],
        ];
        let f = pareto_front_kd(&pts);
        assert_eq!(f, vec![0, 1, 3]);
    }
}
