//! Emulated device memories and event counters.
//!
//! Both global and shared memory store `f64` values as bit patterns inside
//! `AtomicU64` cells with relaxed ordering. Kernels written for the
//! emulator only exchange data across barrier-separated phases (as the
//! CUDA programming model requires), so relaxed per-cell atomicity plus the
//! barrier's synchronization is sufficient for well-defined results while
//! keeping the emulator safe Rust.

use std::sync::atomic::{AtomicU64, Ordering};

/// Device global memory: a flat array of `f64` cells shared by all blocks.
#[derive(Debug)]
pub struct GlobalMem {
    cells: Vec<AtomicU64>,
}

impl GlobalMem {
    /// Allocates zeroed global memory of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        Self { cells: (0..len).map(|_| AtomicU64::new(0f64.to_bits())).collect() }
    }

    /// Uploads host data.
    pub fn from_slice(data: &[f64]) -> Self {
        Self { cells: data.iter().map(|v| AtomicU64::new(v.to_bits())).collect() }
    }

    /// Number of doubles.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Raw load without event accounting (host-side access).
    #[inline]
    pub fn load(&self, idx: usize) -> f64 {
        f64::from_bits(self.cells[idx].load(Ordering::Relaxed))
    }

    /// Raw store without event accounting (host-side access).
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        self.cells[idx].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Downloads device data back to the host.
    pub fn to_vec(&self) -> Vec<f64> {
        self.cells.iter().map(|c| f64::from_bits(c.load(Ordering::Relaxed))).collect()
    }
}

/// Per-block shared memory (the `__shared__` arrays of Fig. 5).
#[derive(Debug)]
pub struct SharedMem {
    cells: Vec<AtomicU64>,
}

impl SharedMem {
    /// Allocates zeroed shared memory of `len` doubles.
    pub fn zeroed(len: usize) -> Self {
        Self { cells: (0..len).map(|_| AtomicU64::new(0f64.to_bits())).collect() }
    }

    /// Number of doubles.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no shared memory was requested.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Raw load (event accounting happens in `ThreadCtx`).
    #[inline]
    pub fn load(&self, idx: usize) -> f64 {
        f64::from_bits(self.cells[idx].load(Ordering::Relaxed))
    }

    /// Raw store (event accounting happens in `ThreadCtx`).
    #[inline]
    pub fn store(&self, idx: usize, v: f64) {
        self.cells[idx].store(v.to_bits(), Ordering::Relaxed);
    }
}

/// Atomic event counters incremented by kernel threads, mirroring the
/// CUPTI counters of [`crate::cupti::CuptiCounter`].
#[derive(Debug, Default)]
pub struct EventCounters {
    /// Double-precision flops.
    pub flops: AtomicU64,
    /// Shared-memory loads.
    pub shared_loads: AtomicU64,
    /// Shared-memory stores.
    pub shared_stores: AtomicU64,
    /// Global-memory loads.
    pub global_loads: AtomicU64,
    /// Global-memory stores.
    pub global_stores: AtomicU64,
    /// Barriers executed (counted once per block).
    pub barriers: AtomicU64,
}

/// A plain snapshot of [`EventCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmuEvents {
    /// Double-precision flops.
    pub flops: u64,
    /// Shared-memory loads.
    pub shared_loads: u64,
    /// Shared-memory stores.
    pub shared_stores: u64,
    /// Global-memory loads.
    pub global_loads: u64,
    /// Global-memory stores.
    pub global_stores: u64,
    /// Barriers executed (per block).
    pub barriers: u64,
}

impl EventCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the current counts.
    pub fn snapshot(&self) -> EmuEvents {
        EmuEvents {
            flops: self.flops.load(Ordering::Relaxed),
            shared_loads: self.shared_loads.load(Ordering::Relaxed),
            shared_stores: self.shared_stores.load(Ordering::Relaxed),
            global_loads: self.global_loads.load(Ordering::Relaxed),
            global_stores: self.global_stores.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }
}

impl EmuEvents {
    /// Element-wise sum — the compound-application count of the additivity
    /// theory.
    pub fn plus(self, o: EmuEvents) -> EmuEvents {
        EmuEvents {
            flops: self.flops + o.flops,
            shared_loads: self.shared_loads + o.shared_loads,
            shared_stores: self.shared_stores + o.shared_stores,
            global_loads: self.global_loads + o.global_loads,
            global_stores: self.global_stores + o.global_stores,
            barriers: self.barriers + o.barriers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_roundtrip() {
        let g = GlobalMem::from_slice(&[1.0, -2.5, 3.25]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.load(1), -2.5);
        g.store(1, 7.0);
        assert_eq!(g.to_vec(), vec![1.0, 7.0, 3.25]);
    }

    #[test]
    fn zeroed_memories() {
        let g = GlobalMem::zeroed(4);
        assert_eq!(g.to_vec(), vec![0.0; 4]);
        let s = SharedMem::zeroed(2);
        assert_eq!(s.load(0), 0.0);
        s.store(0, 1.5);
        assert_eq!(s.load(0), 1.5);
    }

    #[test]
    fn counters_snapshot_and_sum() {
        let c = EventCounters::new();
        c.flops.fetch_add(10, Ordering::Relaxed);
        c.barriers.fetch_add(2, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.flops, 10);
        assert_eq!(s.barriers, 2);
        let sum = s.plus(s);
        assert_eq!(sum.flops, 20);
        assert_eq!(sum.global_loads, 0);
    }

    #[test]
    fn nan_and_negative_bits_survive() {
        let g = GlobalMem::zeroed(1);
        g.store(0, -0.0);
        assert_eq!(g.load(0).to_bits(), (-0.0f64).to_bits());
        g.store(0, f64::NAN);
        assert!(g.load(0).is_nan());
    }
}
