#![warn(missing_docs)]

//! # enprop-sanitize — a compute-sanitizer for the GPU emulator
//!
//! A deterministic analysis layer over the emulator's barrier-phase
//! interpreter, modeled on NVIDIA's `compute-sanitizer`. Where the real
//! tool binary-patches loads and stores on hardware, this crate attaches
//! to the [`AccessSink`] seam of `enprop-gpusim`: every emulated shared-
//! and global-memory access flows through a [`MonitorSink`] with full
//! block/thread/phase attribution, at zero cost to the uninstrumented
//! hot path (the default `NoSink` monomorphizes away).
//!
//! Three dynamic checkers plus a static one:
//!
//! * **racecheck** ([`monitor`]) — the barrier-phase structure *is* the
//!   happens-before relation: two same-phase accesses to one cell by
//!   different threads with at least one write are unordered, hence a
//!   hazard. Across blocks nothing synchronizes, so any write-sharing of
//!   a global cell between blocks is a hazard.
//! * **memcheck** ([`monitor`]) — out-of-bounds accesses (vetoed, so the
//!   run survives to report them) and reads of shared cells no thread of
//!   the block ever writes.
//! * **synccheck** ([`monitor`]) — barrier divergence, generalizing the
//!   plain interpreter's panic into a structured [`Finding`] naming the
//!   phase and the early-retired threads.
//! * **prelaunch** ([`prelaunch`]) — launch-geometry validation (tile
//!   divisibility, shared-memory footprint, thread budget, occupancy)
//!   before any thread runs.
//!
//! [`driver`] sweeps every shipped kernel configuration into a
//! machine-readable [`SanitizeReport`] (the `repro sanitize` subcommand);
//! [`fixtures`] holds seeded buggy kernels, each caught by exactly one
//! checker, snapshot-tested and re-verified by `repro sanitize
//! --self-test`.
//!
//! [`AccessSink`]: enprop_gpusim::emulator::AccessSink

pub mod driver;
pub mod fixtures;
pub mod monitor;
pub mod prelaunch;
pub mod report;

pub use driver::{
    dgemm_grid, fft_grid, sanitize_all, sanitize_all_sampled, sanitize_dgemm,
    sanitize_dgemm_sampled, sanitize_fft, sanitize_fft_sampled, sanitize_kernel,
    sanitize_kernel_sampled, KernelReport, SampleSpec, SanitizeReport,
};
pub use monitor::{BufferTable, LaunchMonitor, MonitorOutcome, MonitorSink, DEFAULT_FINDING_CAP};
pub use report::{AccessKind, Checker, Finding, FindingKind, MemSpace};
