#![warn(missing_docs)]

//! # enprop — energy (non)proportionality analysis toolkit
//!
//! Meta-crate re-exporting the `enprop` workspace. See the individual crates
//! for details; `README.md` for a tour.
pub use enprop_apps as apps;
pub use enprop_cpusim as cpusim;
pub use enprop_ep as ep;
pub use enprop_gpusim as gpusim;
pub use enprop_kernels as kernels;
pub use enprop_pareto as pareto;
pub use enprop_power as power;
pub use enprop_sanitize as sanitize;
pub use enprop_stats as stats;
pub use enprop_units as units;
