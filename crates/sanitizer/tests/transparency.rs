//! Observational-transparency properties: a monitored run that produces
//! zero findings is bitwise-identical to the uninstrumented run — same
//! memory contents, same event counts. The sanitizer never perturbs a
//! clean kernel.

use enprop_gpusim::emulator::{EmuDgemm, EmuRowFft, GlobalMem};
use enprop_gpusim::TiledDgemmConfig;
use enprop_sanitize::{BufferTable, LaunchMonitor};
use proptest::prelude::*;

/// Deterministic fill for test matrices.
fn filled(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        })
        .collect()
}

fn bits(m: &GlobalMem) -> Vec<u64> {
    m.to_vec().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sanitized_dgemm_is_bitwise_transparent(
        tiles in 1usize..4,
        bs in 1usize..6,
        g in 1usize..3,
        r in 1usize..3,
        seed in 0u64..1000,
    ) {
        let n = tiles * bs;
        let host_a = filled(n * n, seed);
        let host_b = filled(n * n, seed + 1);
        let host_c = filled(n * n, seed + 2);
        let cfg = TiledDgemmConfig { n, bs, g, r };
        let emu = EmuDgemm::new(cfg);

        let (a1, b1, c1) = (
            GlobalMem::from_slice(&host_a),
            GlobalMem::from_slice(&host_b),
            GlobalMem::from_slice(&host_c),
        );
        let plain_ev = emu.run(&a1, &b1, &c1);

        let (a2, b2, c2) = (
            GlobalMem::from_slice(&host_a),
            GlobalMem::from_slice(&host_b),
            GlobalMem::from_slice(&host_c),
        );
        let mut table = BufferTable::new();
        table.register(a2.id(), "A", n * n);
        table.register(b2.id(), "B", n * n);
        table.register(c2.id(), "C", n * n);
        let monitor = LaunchMonitor::new(table, 2 * bs * bs);
        let monitored_ev = emu.run_monitored(
            &a2, &b2, &c2,
            |_, _| { monitor.begin_block(); monitor.sink() },
            |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
        );
        let out = monitor.finish();

        // The shipped kernel is hazard-free...
        prop_assert!(out.findings.is_empty(), "spurious finding: {:?}", out.findings.first());
        prop_assert_eq!(out.suppressed, 0);
        // ...and monitoring it changed nothing observable.
        prop_assert_eq!(bits(&c1), bits(&c2));
        prop_assert_eq!(plain_ev, monitored_ev);
    }

    #[test]
    fn sanitized_fft_is_bitwise_transparent(
        log_n in 1usize..7,
        rows in 1usize..4,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let host = filled(2 * rows * n, seed);
        let emu = EmuRowFft::new(n, rows);

        let d1 = GlobalMem::from_slice(&host);
        let plain_ev = emu.run(&d1);

        let d2 = GlobalMem::from_slice(&host);
        let mut table = BufferTable::new();
        table.register(d2.id(), "signal", 2 * rows * n);
        let monitor = LaunchMonitor::new(table, 2 * n);
        let monitored_ev = emu.run_monitored(
            &d2,
            |_, _| { monitor.begin_block(); monitor.sink() },
            |bx, by, _sink, exit| monitor.end_block(bx, by, &exit),
        );
        let out = monitor.finish();

        prop_assert!(out.findings.is_empty(), "spurious finding: {:?}", out.findings.first());
        prop_assert_eq!(out.suppressed, 0);
        prop_assert_eq!(bits(&d1), bits(&d2));
        prop_assert_eq!(plain_ev, monitored_ev);
    }
}
