//! Fig. 7: K40c energy nonproportionality and *local* Pareto fronts at
//! N = 8704 and N = 10240.
//!
//! Reproduced claims: the global Pareto front is a single point (BS = 32
//! is optimal for both objectives); the BS ≤ 30 nonproportionality region
//! yields local fronts of ~4–5 points with real energy/performance
//! trade-offs.

use super::{front_of, gpu_cloud, CheckpointSummary, GPU_TOTAL_PRODUCTS};
use enprop_apps::checkpoint::{CheckpointError, SweepCheckpoint};
use enprop_apps::point::DataPoint;
use enprop_apps::{sizes, GpuMatMulApp, RetryPolicy, SweepExecutor, SweepFailure};
use enprop_ep::{WeakEpReport, WeakEpTest};
use enprop_gpusim::{GpuArch, TiledDgemmConfig};
use enprop_pareto::TradeoffAnalysis;
use enprop_power::FaultPlan;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One matrix size's panel column.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Panel {
    /// Matrix size.
    pub n: usize,
    /// The full configuration cloud (successfully measured points only).
    pub cloud: Vec<DataPoint<TiledDgemmConfig>>,
    /// Configurations that could not be measured (exhausted their
    /// retries) and are therefore absent from `cloud` and every front.
    /// Always 0 on the noise-free and fault-free paths.
    pub failed_configs: usize,
    /// The full failure records behind `failed_configs`: configuration,
    /// attempts spent, and the final [`MeasureError`](enprop_power::MeasureError)
    /// — so `--json` consumers can rerun or report exactly what was lost.
    pub failures: Vec<SweepFailure<TiledDgemmConfig>>,
    /// Weak-EP verdict.
    pub weak_ep: WeakEpReport,
    /// Global front (expected singleton).
    pub global: TradeoffAnalysis,
    /// BS of the globally optimal configuration.
    pub global_optimum_bs: usize,
    /// Local front of the BS ≤ 30 nonproportionality region.
    pub local: TradeoffAnalysis,
}

/// Generates both Fig. 7 panels from the noise-free analytic model.
pub fn generate() -> Vec<Fig7Panel> {
    generate_from(|n| (gpu_cloud(GpuArch::k40c(), n), Vec::new()))
}

/// Generates both panels through the full measurement methodology:
/// simulated WattsUp meter, HCLWATTSUP decomposition, and the Student-t
/// repeat-until-confidence protocol — deterministic under `seed`, fanned
/// out over all available cores.
pub fn generate_measured(seed: u64) -> Vec<Fig7Panel> {
    generate_measured_with(&SweepExecutor::new(seed))
}

/// [`generate_measured`] with an explicit executor (seed + thread count).
/// Output is bitwise-identical for any thread count.
pub fn generate_measured_with(exec: &SweepExecutor) -> Vec<Fig7Panel> {
    let app = GpuMatMulApp::new(GpuArch::k40c(), GPU_TOTAL_PRODUCTS);
    generate_from(move |n| (app.sweep_measured(n, exec), Vec::new()))
}

/// [`generate_measured`] through a misbehaving meter: faults per `plan`,
/// retries per `policy`. Configurations that exhaust their retries are
/// *skipped* — each panel's fronts are computed over the surviving cloud,
/// with the casualties recorded in [`Fig7Panel::failures`]. Still
/// bitwise-identical at any thread count. Panics only if *every*
/// configuration of a size fails (no cloud to analyse).
pub fn generate_measured_robust_with(
    exec: &SweepExecutor,
    policy: RetryPolicy,
    plan: FaultPlan,
) -> Vec<Fig7Panel> {
    let app = GpuMatMulApp::new(GpuArch::k40c(), GPU_TOTAL_PRODUCTS);
    generate_from(move |n| {
        let sweep = app.sweep_measured_robust(n, exec, policy, plan);
        (sweep.points, sweep.failures)
    })
}

/// [`generate_measured_robust_with`] behind a durable checkpoint journal:
/// each size's sweep is journaled under `dir/fig7-n{N}`, and with `resume`
/// set, a journal left by an interrupted run is replayed instead of
/// re-measured. Resumed panels are bitwise-identical to uninterrupted
/// ones. Returns the panels plus per-size resume accounting.
pub fn generate_measured_robust_checkpointed(
    exec: &SweepExecutor,
    policy: RetryPolicy,
    plan: FaultPlan,
    dir: &Path,
    resume: bool,
) -> Result<(Vec<Fig7Panel>, Vec<CheckpointSummary>), CheckpointError> {
    let app = GpuMatMulApp::new(GpuArch::k40c(), GPU_TOTAL_PRODUCTS);
    let mut summaries = Vec::new();
    let mut clouds = Vec::new();
    for n in sizes::fig7_sizes() {
        let subdir = dir.join(format!("fig7-n{n}"));
        let manifest = app.checkpoint_manifest(n, exec, &policy, &plan);
        let checkpoint = if resume {
            SweepCheckpoint::resume_or_fresh(&subdir, manifest)?
        } else {
            SweepCheckpoint::fresh(&subdir, manifest)?
        };
        let run = app.sweep_measured_robust_resumable(n, exec, policy, plan, checkpoint)?;
        summaries.push(CheckpointSummary {
            n,
            replayed: run.replayed,
            executed: run.executed,
            torn_tail_bytes: run.torn_tail_bytes,
        });
        clouds.push((run.sweep.points, run.sweep.failures));
    }
    let mut clouds = clouds.into_iter();
    let panels = generate_from(move |_| clouds.next().expect("one cloud per size"));
    Ok((panels, summaries))
}

fn generate_from(
    mut sweep: impl FnMut(
        usize,
    )
        -> (Vec<DataPoint<TiledDgemmConfig>>, Vec<SweepFailure<TiledDgemmConfig>>),
) -> Vec<Fig7Panel> {
    sizes::fig7_sizes()
        .into_iter()
        .map(|n| {
            let (cloud, failures) = sweep(n);
            let energies: Vec<_> = cloud.iter().map(|p| p.dynamic_energy).collect();
            let global = front_of(&cloud, |_| true);
            let global_optimum_bs = cloud[global.performance_optimal().index].config.bs;
            Fig7Panel {
                n,
                failed_configs: failures.len(),
                failures,
                weak_ep: WeakEpTest::default().run(&energies),
                local: front_of(&cloud, |c| c.bs <= 30),
                global,
                global_optimum_bs,
                cloud,
            }
        })
        .collect()
}

/// Renders the figure's headline rows.
pub fn render() -> String {
    let mut out = String::new();
    for p in generate() {
        out.push_str(&format!(
            "--- K40c, N = {} ({} configurations) --- weak EP {} (spread {})\n",
            p.n,
            p.cloud.len(),
            if p.weak_ep.holds { "HOLDS" } else { "VIOLATED" },
            crate::render::pct(p.weak_ep.rel_spread)
        ));
        out.push_str(&format!(
            "global front: {} point(s), optimum at BS = {}\n",
            p.global.len(),
            p.global_optimum_bs
        ));
        let rows: Vec<Vec<String>> = p
            .local
            .front
            .iter()
            .map(|t| {
                vec![
                    format!("BS={} G={}", p.cloud[t.index].config.bs, p.cloud[t.index].config.g),
                    format!("{:.4}", t.point.time),
                    format!("{:.1}", t.point.energy),
                    crate::render::pct(t.degradation),
                    crate::render::pct(t.savings),
                ]
            })
            .collect();
        out.push_str(&format!("local front, BS<=30 region ({} points):\n", p.local.len()));
        out.push_str(&crate::render::table(
            &["config", "time[s]", "E_d[J]", "degradation", "savings"],
            &rows,
        ));
        // The middle panel: the BS 21..=30 nonproportionality region with
        // its local front on top.
        let cloud_pts: Vec<(f64, f64)> = p
            .cloud
            .iter()
            .filter(|d| (21..=30).contains(&d.config.bs))
            .map(|d| (d.time.value(), d.dynamic_energy.value()))
            .collect();
        let front_pts: Vec<(f64, f64)> =
            p.local.front.iter().map(|t| (t.point.time, t.point.energy)).collect();
        out.push_str(&crate::scatter::scatter(
            &format!("E_d vs time, BS 21..=30 region (N = {})", p.n),
            "time [s]",
            "dynamic energy [J]",
            &[
                crate::scatter::Series { glyph: '.', points: cloud_pts },
                crate::scatter::Series { glyph: '#', points: front_pts },
            ],
            64,
            14,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_front_is_singleton_at_bs32() {
        for p in generate() {
            assert!(p.global.is_singleton(), "N={}: {} points", p.n, p.global.len());
            assert_eq!(p.global_optimum_bs, 32, "N={}", p.n);
        }
    }

    #[test]
    fn local_fronts_have_multiple_points() {
        // The paper observes an average of 4 and a maximum of 5 points.
        for p in generate() {
            assert!(
                (2..=8).contains(&p.local.len()),
                "N={}: local front has {} points",
                p.n,
                p.local.len()
            );
        }
        let max = generate().iter().map(|p| p.local.len()).max().unwrap();
        assert!(max >= 3, "max local front size {max}");
    }

    #[test]
    fn local_front_offers_real_savings() {
        for p in generate() {
            let (savings, degradation) = p
                .local
                .best_pair()
                .unwrap_or_else(|| panic!("N={}: singleton local front", p.n));
            assert!(savings > 0.03, "N={}: savings {savings}", p.n);
            assert!(degradation < 0.40, "N={}: degradation {degradation}", p.n);
        }
    }

    #[test]
    fn weak_ep_violated() {
        for p in generate() {
            assert!(!p.weak_ep.holds, "N={}", p.n);
        }
    }
}
