//! Analytic safety checks over affine access summaries.
//!
//! Every check here is pure arithmetic over the fitted families — no
//! kernel code runs. The engine consumes a [`CheckSpace`]: phase groups
//! in first-occurrence order, each holding verified families plus the
//! occurrence domains (`τ` tile-steps × `m` products) the group stands
//! for. Concrete launches use one singleton group per phase; the
//! parametric DGEMM analyzer compresses thousands of phases into four
//! role groups.
//!
//! Checks (mirroring the dynamic sanitizer's checkers):
//!
//! * **memcheck / OOB** — interval maximization of each affine form over
//!   its full index domain against the allocation extent.
//! * **memcheck / uninit** — shared-memory coverage: every read cell
//!   must be covered by an earlier (or same-phase) write, tracking the
//!   same deferred-uninit semantics the dynamic monitor uses.
//! * **racecheck (intra-block)** — same-phase conflicting accesses by
//!   distinct threads, by exact enumeration of the (small) thread box.
//! * **racecheck (inter-block)** — global write-sharing across blocks,
//!   decided by bounded linear-Diophantine solving (extended GCD +
//!   interval intersection) on coefficient deltas.
//!
//! Anything outside the decidable fragment becomes a typed
//! [`Fallback`], never a silent pass.

use crate::affine::Coeffs;
use crate::report::{hazard_label, Fallback, FallbackKind, StaticFinding};
use crate::solve::{div_ceil, div_floor, ext_gcd};
use enprop_sanitize::report::{AccessKind, Checker, MemSpace};
use std::collections::HashMap;

/// Findings reported per (group, check) before the engine moves on — a
/// proof needs one witness, not a flood.
const FINDING_CAP: usize = 2;

/// One family inside a check group, with its buffer resolved to a name
/// and extent.
#[derive(Debug, Clone)]
pub struct CheckFamily {
    /// Memory space.
    pub space: MemSpace,
    /// Buffer name (global memory only).
    pub buffer: Option<String>,
    /// Allocation extent the accesses must stay inside.
    pub len: usize,
    /// Load or store.
    pub kind: AccessKind,
    /// Inner repeat count (`k` ∈ [0, K)).
    pub k: usize,
    /// The verified coefficients.
    pub co: Coeffs,
}

/// A group of identically-shaped phases (one phase for concrete
/// launches; a whole role for parametric ones).
#[derive(Debug, Clone)]
pub struct CheckGroup {
    /// Representative phase for diagnostics (first occurrence).
    pub phase: usize,
    /// Display label (`"phase 3"`, `"stage"`, …).
    pub label: String,
    /// Occurrence domain sizes: τ ∈ [0, tau), m ∈ [0, prod).
    pub tau: usize,
    /// See `tau`.
    pub prod: usize,
    /// The group's verified families.
    pub families: Vec<CheckFamily>,
}

/// Everything the checks need about one launch.
#[derive(Debug, Clone)]
pub struct CheckSpace {
    /// Groups in first-occurrence order (drives shared-memory coverage).
    pub groups: Vec<CheckGroup>,
    /// Block dimensions `(width, height)`.
    pub block: (usize, usize),
    /// Grid dimensions `(width, height)`.
    pub grid: (usize, usize),
    /// Shared allocation length per block.
    pub shared_len: usize,
}

/// Interval of an affine form over its box domain, together with the
/// coordinates attaining the maximum (for witness messages).
struct Extremes {
    lo: i128,
    hi: i128,
    hi_thread: (usize, usize),
}

fn term(coef: i128, size: usize) -> (i128, i128) {
    let top = coef * (size.max(1) as i128 - 1);
    if coef >= 0 {
        (0, top)
    } else {
        (top, 0)
    }
}

fn extremes(f: &CheckFamily, g: &CheckGroup, cs: &CheckSpace) -> Extremes {
    let dims = [
        (f.co.dk, f.k),
        (f.co.c1, cs.block.0),
        (f.co.c2, cs.block.1),
        (f.co.c3, cs.grid.0),
        (f.co.c4, cs.grid.1),
        (f.co.e1, g.tau),
        (f.co.e2, g.prod),
    ];
    let mut lo = f.co.c0;
    let mut hi = f.co.c0;
    for (c, s) in dims {
        let (l, h) = term(c, s);
        lo += l;
        hi += h;
    }
    let argmax = |c: i128, s: usize| if c >= 0 { s.max(1) - 1 } else { 0 };
    Extremes {
        lo,
        hi,
        hi_thread: (argmax(f.co.c1, cs.block.0), argmax(f.co.c2, cs.block.1)),
    }
}

/// Checks every family of every group against its allocation extent.
fn check_oob(cs: &CheckSpace, out: &mut Vec<StaticFinding>) {
    for g in &cs.groups {
        let mut reported = 0usize;
        for f in &g.families {
            if reported >= FINDING_CAP {
                break;
            }
            let e = extremes(f, g, cs);
            if e.hi >= f.len as i128 || e.lo < 0 {
                let (index, side) =
                    if e.hi >= f.len as i128 { (e.hi, "past the end of") } else { (e.lo, "before") };
                let target = match (&f.buffer, f.space) {
                    (Some(name), _) => name.clone(),
                    (None, MemSpace::Shared) => "shared memory".to_string(),
                    (None, MemSpace::Global) => "an unregistered buffer".to_string(),
                };
                out.push(StaticFinding {
                    checker: Checker::Memcheck,
                    phase: Some(g.phase),
                    space: Some(f.space),
                    buffer: f.buffer.clone(),
                    message: format!(
                        "static memcheck: {} {} of {target} proven out of bounds in {}: \
                         index {index} {side} len {} (witness thread ({}, {}))",
                        f.space.as_str(),
                        f.kind.as_str(),
                        g.label,
                        f.len,
                        e.hi_thread.0,
                        e.hi_thread.1,
                    ),
                });
                reported += 1;
            }
        }
    }
}

/// Whether the group's shared families can be compared at a single
/// occurrence (their per-occurrence drifts are uniform, so address
/// *differences* are occurrence-invariant).
fn shared_drift_uniform(g: &CheckGroup) -> bool {
    let mut drift = None;
    for f in g.families.iter().filter(|f| f.space == MemSpace::Shared) {
        match drift {
            None => drift = Some((f.co.e1, f.co.e2)),
            Some(d) if d == (f.co.e1, f.co.e2) => {}
            Some(_) => return false,
        }
    }
    true
}

/// Enumerates one family's in-range cells at occurrence (τ=0, m=0) of
/// block (0, 0): `(cell, thread)` pairs.
fn enumerate_shared(f: &CheckFamily, cs: &CheckSpace, mut visit: impl FnMut(usize, (usize, usize))) {
    let (bw, bh) = cs.block;
    for ty in 0..bh {
        for tx in 0..bw {
            for k in 0..f.k {
                let a = f.co.c0 + f.co.dk * k as i128 + f.co.c1 * tx as i128 + f.co.c2 * ty as i128;
                if a >= 0 && (a as usize) < cs.shared_len {
                    visit(a as usize, (tx, ty));
                }
            }
        }
    }
}

/// Same-phase shared-memory races plus read-before-write coverage.
///
/// Coverage mirrors the dynamic monitor's deferred-uninit semantics: a
/// cell written by *any* thread in the same phase group (or any earlier
/// group) counts as initialized — a missing barrier is therefore a race,
/// not an uninit read, exactly as the dynamic sanitizer reports it.
fn check_shared(cs: &CheckSpace, out: &mut Vec<StaticFinding>, fallbacks: &mut Vec<Fallback>) {
    if cs.shared_len == 0 {
        return;
    }
    let mut covered = vec![false; cs.shared_len];
    for g in &cs.groups {
        let has_shared = g.families.iter().any(|f| f.space == MemSpace::Shared);
        if !has_shared {
            continue;
        }
        if !shared_drift_uniform(g) {
            fallbacks.push(Fallback::new(
                FallbackKind::Unsupported,
                Some(g.phase),
                Some(MemSpace::Shared),
                None,
                format!(
                    "{}: shared families drift differently per occurrence; same-phase \
                     overlap is occurrence-dependent",
                    g.label
                ),
            ));
            continue;
        }
        // Pass 1: writers.
        let mut writer: Vec<Option<(usize, usize)>> = vec![None; cs.shared_len];
        let mut races = 0usize;
        for f in g.families.iter().filter(|f| f.space == MemSpace::Shared) {
            if f.kind != AccessKind::Write {
                continue;
            }
            enumerate_shared(f, cs, |cell, t| match writer[cell] {
                None => writer[cell] = Some(t),
                Some(w) if w == t => {}
                Some(w) => {
                    if races < FINDING_CAP {
                        out.push(shared_race(g, cell, t, AccessKind::Write, w));
                        races += 1;
                    }
                }
            });
        }
        // Pass 2: readers vs same-phase writers; coverage check.
        let mut uninit = 0usize;
        for f in g.families.iter().filter(|f| f.space == MemSpace::Shared) {
            if f.kind != AccessKind::Read {
                continue;
            }
            enumerate_shared(f, cs, |cell, t| {
                match writer[cell] {
                    Some(w) if w != t && races < FINDING_CAP => {
                        out.push(shared_race(g, cell, t, AccessKind::Read, w));
                        races += 1;
                    }
                    _ => {}
                }
                if !covered[cell] && writer[cell].is_none() && uninit < FINDING_CAP {
                    out.push(StaticFinding {
                        checker: Checker::Memcheck,
                        phase: Some(g.phase),
                        space: Some(MemSpace::Shared),
                        buffer: None,
                        message: format!(
                            "static memcheck: uninitialized shared read proven in {}: \
                             cell {cell} read by thread ({}, {}) is never written by any \
                             earlier or same-phase store",
                            g.label, t.0, t.1,
                        ),
                    });
                    uninit += 1;
                }
            });
        }
        // Fold this group's writes into coverage.
        for (cell, w) in writer.iter().enumerate() {
            if w.is_some() {
                covered[cell] = true;
            }
        }
    }
}

fn shared_race(
    g: &CheckGroup,
    cell: usize,
    second: (usize, usize),
    second_kind: AccessKind,
    first: (usize, usize),
) -> StaticFinding {
    StaticFinding {
        checker: Checker::Racecheck,
        phase: Some(g.phase),
        space: Some(MemSpace::Shared),
        buffer: None,
        message: format!(
            "static racecheck: shared {} hazard proven in {}: cell {cell} {} by thread \
             ({}, {}) conflicts with write by thread ({}, {}) with no __syncthreads \
             between them",
            hazard_label(AccessKind::Write, second_kind),
            g.label,
            second_kind.as_str(),
            second.0,
            second.1,
            first.0,
            first.1,
        ),
    }
}

/// Same-phase global races inside one block, by exact enumeration. The
/// families must agree on block strides and occurrence drifts (so the
/// overlap question is block/occurrence-invariant); otherwise each block
/// is enumerated when the grid is small, else the group falls back.
fn check_global_intra(cs: &CheckSpace, out: &mut Vec<StaticFinding>, fallbacks: &mut Vec<Fallback>) {
    for g in &cs.groups {
        let bufs: Vec<&String> = {
            let mut v: Vec<&String> =
                g.families.iter().filter_map(|f| f.buffer.as_ref()).collect();
            v.dedup();
            v
        };
        for buf in bufs {
            let fams: Vec<&CheckFamily> =
                g.families.iter().filter(|f| f.buffer.as_ref() == Some(buf)).collect();
            if !fams.iter().any(|f| f.kind == AccessKind::Write) {
                continue;
            }
            let uniform = fams
                .windows(2)
                .all(|w| (w[0].co.c3, w[0].co.c4, w[0].co.e1, w[0].co.e2)
                    == (w[1].co.c3, w[1].co.c4, w[1].co.e1, w[1].co.e2));
            if !uniform && cs.grid.0 * cs.grid.1 > 64 {
                fallbacks.push(Fallback::new(
                    FallbackKind::Unsupported,
                    Some(g.phase),
                    Some(MemSpace::Global),
                    Some(buf),
                    format!(
                        "{}: {} families differ in block strides over a large grid",
                        g.label, buf
                    ),
                ));
                continue;
            }
            // With uniform block strides one representative block
            // decides all of them; otherwise enumerate each block.
            let blocks: Vec<(usize, usize)> = if uniform {
                vec![(0, 0)]
            } else {
                (0..cs.grid.1).flat_map(|by| (0..cs.grid.0).map(move |bx| (bx, by))).collect()
            };
            let mut reported = 0usize;
            for (bx, by) in blocks {
                if reported >= FINDING_CAP {
                    break;
                }
                let mut owner: HashMap<i128, ((usize, usize), AccessKind)> = HashMap::new();
                for f in &fams {
                    let (bw, bh) = cs.block;
                    for ty in 0..bh {
                        for tx in 0..bw {
                            for k in 0..f.k {
                                let a = f.co.at(
                                    k as i128, tx as i128, ty as i128, bx as i128, by as i128, 0, 0,
                                );
                                match owner.get(&a) {
                                    None => {
                                        owner.insert(a, ((tx, ty), f.kind));
                                    }
                                    Some(&(t, k0)) if t == (tx, ty) => {
                                        // Same thread may both read and
                                        // write its cell (RMW): keep the
                                        // stronger kind.
                                        if k0 == AccessKind::Read && f.kind == AccessKind::Write {
                                            owner.insert(a, (t, f.kind));
                                        }
                                    }
                                    Some(&(t, k0)) => {
                                        if (k0 == AccessKind::Write
                                            || f.kind == AccessKind::Write)
                                            && reported < FINDING_CAP
                                        {
                                            out.push(StaticFinding {
                                                checker: Checker::Racecheck,
                                                phase: Some(g.phase),
                                                space: Some(MemSpace::Global),
                                                buffer: Some(buf.clone()),
                                                message: format!(
                                                    "static racecheck: global {} hazard \
                                                     proven in {}: {}[{a}] {} by thread \
                                                     ({tx}, {ty}) conflicts with {} by \
                                                     thread ({}, {}) in the same phase",
                                                    hazard_label(k0, f.kind),
                                                    g.label,
                                                    buf,
                                                    f.kind.as_str(),
                                                    k0.as_str(),
                                                    t.0,
                                                    t.1,
                                                ),
                                            });
                                            reported += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Is there an integer point of `a·x + b·y = c` inside
/// `[xr.0, xr.1] × [yr.0, yr.1]`, other than `exclude`?
fn solve_2var(
    a: i128,
    b: i128,
    c: i128,
    xr: (i128, i128),
    yr: (i128, i128),
    exclude: Option<(i128, i128)>,
) -> Option<(i128, i128)> {
    let in_x = |x: i128| x >= xr.0 && x <= xr.1;
    let in_y = |y: i128| y >= yr.0 && y <= yr.1;
    let ok = |p: (i128, i128)| exclude != Some(p);
    if a == 0 && b == 0 {
        if c != 0 {
            return None;
        }
        for x in [xr.0, xr.1] {
            for y in [yr.0, yr.1] {
                if ok((x, y)) {
                    return Some((x, y));
                }
            }
        }
        // Box degenerate to the excluded point.
        return None;
    }
    if a == 0 {
        if c % b != 0 {
            return None;
        }
        let y = c / b;
        if !in_y(y) {
            return None;
        }
        for x in [xr.0, xr.1, 0] {
            if in_x(x) && ok((x, y)) {
                return Some((x, y));
            }
        }
        return None;
    }
    if b == 0 {
        if c % a != 0 {
            return None;
        }
        let x = c / a;
        if !in_x(x) {
            return None;
        }
        for y in [yr.0, yr.1, 0] {
            if in_y(y) && ok((x, y)) {
                return Some((x, y));
            }
        }
        return None;
    }
    let (g, x0, y0) = ext_gcd(a, b);
    if c % g != 0 {
        return None;
    }
    let (x0, y0) = (x0 * (c / g), y0 * (c / g));
    let (sx, sy) = (b / g, -a / g); // x = x0 + sx·t, y = y0 + sy·t
    let t_range = |p0: i128, s: i128, lo: i128, hi: i128| -> Option<(i128, i128)> {
        // lo ≤ p0 + s·t ≤ hi
        if s > 0 {
            Some((div_ceil(lo - p0, s), div_floor(hi - p0, s)))
        } else {
            Some((div_ceil(hi - p0, s), div_floor(lo - p0, s)))
        }
    };
    let (tx0, tx1) = t_range(x0, sx, xr.0, xr.1)?;
    let (ty0, ty1) = t_range(y0, sy, yr.0, yr.1)?;
    let (t0, t1) = (tx0.max(ty0), tx1.min(ty1));
    if t0 > t1 {
        return None;
    }
    for t in [t0, t1, t0 + 1] {
        if t >= t0 && t <= t1 {
            let p = (x0 + sx * t, y0 + sy * t);
            if ok(p) {
                return Some(p);
            }
        }
    }
    None
}

/// Inter-block global write-sharing: can a store of one family and any
/// access of another land on the same cell from *different* blocks?
///
/// Both families must be occurrence-stationary (or single-occurrence);
/// with equal linear parts the question reduces to a 2-variable linear
/// Diophantine problem on block deltas per enumerated thread delta.
fn check_global_inter(cs: &CheckSpace, out: &mut Vec<StaticFinding>, fallbacks: &mut Vec<Fallback>) {
    if cs.grid.0 * cs.grid.1 <= 1 {
        return; // a single block cannot inter-block race
    }
    // Collect (group index, family) pairs for global families.
    let all: Vec<(usize, &CheckGroup, &CheckFamily)> = cs
        .groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| {
            g.families
                .iter()
                .filter(|f| f.space == MemSpace::Global)
                .map(move |f| (gi, g, f))
        })
        .collect();
    let mut reported = 0usize;
    for (_, ga, fa) in all.iter() {
        if fa.kind != AccessKind::Write {
            continue;
        }
        for (_, gb, fb) in all.iter() {
            if fb.buffer != fa.buffer || reported >= FINDING_CAP {
                continue;
            }
            let stationary = |g: &CheckGroup, f: &CheckFamily| {
                (f.co.e1 == 0 || g.tau <= 1) && (f.co.e2 == 0 || g.prod <= 1)
            };
            if !stationary(ga, fa) || !stationary(gb, fb) {
                fallbacks.push(Fallback::new(
                    FallbackKind::Unsupported,
                    Some(ga.phase),
                    Some(MemSpace::Global),
                    fa.buffer.as_deref(),
                    format!(
                        "{}: occurrence-drifting global write cannot be compared across \
                         blocks analytically",
                        ga.label
                    ),
                ));
                continue;
            }
            let (bw, bh) = (cs.block.0 as i128, cs.block.1 as i128);
            let (gx, gy) = (cs.grid.0 as i128, cs.grid.1 as i128);
            if (fa.co.c1, fa.co.c2, fa.co.dk, fa.co.c3, fa.co.c4)
                == (fb.co.c1, fb.co.c2, fb.co.dk, fb.co.c3, fb.co.c4)
            {
                // Equal linear parts: solve on deltas. addrA == addrB ⇔
                // c1·Δtx + c2·Δty + dk·Δk + c3·Δbx + c4·Δby = c0B − c0A
                // with (Δbx, Δby) ≠ (0, 0).
                let kk = fa.k.max(fb.k) as i128;
                'delta: for dk_ in 1 - kk..kk {
                    for dtx in 1 - bw..bw {
                        for dty in 1 - bh..bh {
                            let rhs = (fb.co.c0 - fa.co.c0)
                                - fa.co.c1 * dtx
                                - fa.co.c2 * dty
                                - fa.co.dk * dk_;
                            if let Some((dbx, dby)) = solve_2var(
                                fa.co.c3,
                                fa.co.c4,
                                rhs,
                                (1 - gx, gx - 1),
                                (1 - gy, gy - 1),
                                Some((0, 0)),
                            ) {
                                out.push(inter_block_finding(
                                    ga, fa, fb, (dbx, dby), reported,
                                ));
                                reported += 1;
                                break 'delta;
                            }
                        }
                    }
                }
            } else if (bw * bh * fa.k as i128) * (bw * bh * fb.k as i128) <= 200_000
                && gx * gy <= 256
            {
                // Unequal linear parts: small enough to enumerate side A
                // fully (threads × k × blocks), then 2-var solve side B's
                // block for each of side B's thread points.
                'full: for tya in 0..bh {
                    for txa in 0..bw {
                        for ka in 0..fa.k as i128 {
                            for bya in 0..gy {
                                for bxa in 0..gx {
                                    let aa = fa.co.at(ka, txa, tya, bxa, bya, 0, 0);
                                    for tyb in 0..bh {
                                        for txb in 0..bw {
                                            for kb in 0..fb.k as i128 {
                                                let base =
                                                    fb.co.at(kb, txb, tyb, 0, 0, 0, 0);
                                                if let Some(p) = solve_2var(
                                                    fb.co.c3,
                                                    fb.co.c4,
                                                    aa - base,
                                                    (0, gx - 1),
                                                    (0, gy - 1),
                                                    Some((bxa, bya)),
                                                ) {
                                                    out.push(inter_block_finding(
                                                        ga,
                                                        fa,
                                                        fb,
                                                        (p.0 - bxa, p.1 - bya),
                                                        reported,
                                                    ));
                                                    reported += 1;
                                                    break 'full;
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            } else {
                fallbacks.push(Fallback::new(
                    FallbackKind::Unsupported,
                    Some(ga.phase),
                    Some(MemSpace::Global),
                    fa.buffer.as_deref(),
                    format!(
                        "{}: global families with unequal linear parts over a large \
                         launch cannot be enumerated",
                        ga.label
                    ),
                ));
            }
        }
    }
}

fn inter_block_finding(
    ga: &CheckGroup,
    fa: &CheckFamily,
    fb: &CheckFamily,
    delta: (i128, i128),
    _reported: usize,
) -> StaticFinding {
    StaticFinding {
        checker: Checker::Racecheck,
        phase: None,
        space: Some(MemSpace::Global),
        buffer: fa.buffer.clone(),
        message: format!(
            "static racecheck: inter-block {} hazard proven on {}: blocks separated by \
             (Δbx, Δby) = ({}, {}) share a cell ({} vs {}) — thread blocks cannot \
             synchronize within a launch",
            hazard_label(fa.kind, fb.kind),
            fa.buffer.as_deref().unwrap_or("unregistered buffer"),
            delta.0,
            delta.1,
            ga.label,
            fb.kind.as_str(),
        ),
    }
}

/// Runs every analytic check over the space.
pub fn run_checks(cs: &CheckSpace) -> (Vec<StaticFinding>, Vec<Fallback>) {
    let mut findings = Vec::new();
    let mut fallbacks = Vec::new();
    check_oob(cs, &mut findings);
    check_shared(cs, &mut findings, &mut fallbacks);
    check_global_intra(cs, &mut findings, &mut fallbacks);
    check_global_inter(cs, &mut findings, &mut fallbacks);
    (findings, fallbacks)
}
