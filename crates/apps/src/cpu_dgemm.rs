//! The CPU threadgroup DGEMM application of §III, as a sweep driver.

use crate::parallel::{RetryPolicy, RobustSweep, SweepExecutor};
use crate::point::DataPoint;
use crate::runner::MeasurementRunner;
use enprop_cpusim::{BlasFlavor, CpuDgemmConfig, CpuRunEstimate, CpuSimulator};
use enprop_power::{FaultInjectingMeter, FaultPlan, SimulatedWattsUp};
use enprop_units::{Utilization, Watts};

/// One configuration's full Fig. 4 record: the measured point plus the
/// utilization and performance coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuPoint {
    /// The measured (time, energy) point.
    pub point: DataPoint<CpuDgemmConfig>,
    /// Average CPU utilization over the 48 logical cores.
    pub avg_utilization: Utilization,
    /// Spread (population σ) of per-core utilizations — the paper's
    /// explanatory variable.
    pub utilization_spread: f64,
    /// Achieved performance, Gflop/s.
    pub gflops: f64,
}

/// The application bound to one simulated node.
#[derive(Debug, Clone)]
pub struct CpuDgemmApp {
    sim: CpuSimulator,
}

impl CpuDgemmApp {
    /// Binds the application to a node simulator.
    pub fn new(sim: CpuSimulator) -> Self {
        Self { sim }
    }

    /// The paper's Haswell node.
    pub fn haswell() -> Self {
        Self::new(CpuSimulator::haswell())
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &CpuSimulator {
        &self.sim
    }

    /// All configurations of one BLAS flavor on this node.
    pub fn configs(&self, flavor: BlasFlavor) -> Vec<CpuDgemmConfig> {
        CpuDgemmConfig::enumerate(self.sim.topology().logical_cores(), flavor)
    }

    /// One configuration's simulated run.
    pub fn run(&self, cfg: &CpuDgemmConfig, n: usize) -> CpuRunEstimate {
        self.sim.run_dgemm(cfg, n)
    }

    /// Noise-free sweep of every configuration of `flavor` at size `n`.
    pub fn sweep_exact(&self, n: usize, flavor: BlasFlavor) -> Vec<CpuPoint> {
        self.configs(flavor)
            .into_iter()
            .map(|cfg| {
                let r = self.sim.run_dgemm(&cfg, n);
                CpuPoint {
                    avg_utilization: r.average_utilization(),
                    utilization_spread: Utilization::std_dev(&r.per_core_util),
                    gflops: r.gflops,
                    point: DataPoint {
                        config: cfg,
                        time: r.time,
                        dynamic_energy: r.dynamic_energy(),
                        reps: 1,
                        converged: true,
                    },
                }
            })
            .collect()
    }

    /// Full-methodology sweep through the simulated meter and protocol,
    /// fanned out over `exec`'s workers (output bitwise-identical at any
    /// thread count). `stride` subsamples the (large) configuration space.
    pub fn sweep_measured(
        &self,
        n: usize,
        flavor: BlasFlavor,
        exec: &SweepExecutor,
        stride: usize,
    ) -> Vec<CpuPoint> {
        assert!(stride >= 1, "stride must be positive");
        let configs: Vec<CpuDgemmConfig> =
            self.configs(flavor).into_iter().step_by(stride).collect();
        exec.run_measured(
            &configs,
            || Self::default_runner(0),
            |runner, cfg| {
                let r = self.sim.run_dgemm(cfg, n);
                let m = runner.measure(
                    r.time,
                    r.dynamic_power,
                    Watts::ZERO,
                    enprop_units::Seconds::ZERO,
                );
                CpuPoint {
                    avg_utilization: r.average_utilization(),
                    utilization_spread: Utilization::std_dev(&r.per_core_util),
                    gflops: r.gflops,
                    point: DataPoint {
                        config: *cfg,
                        time: m.time,
                        dynamic_energy: m.dynamic_energy,
                        reps: m.reps,
                        converged: m.converged,
                    },
                }
            },
        )
    }

    /// Fault-tolerant [`sweep_measured`](Self::sweep_measured): failed
    /// measurements retry per `policy`, exhausted configurations are
    /// recorded in [`RobustSweep::failures`], and output stays
    /// bitwise-identical at any thread count.
    pub fn sweep_measured_robust(
        &self,
        n: usize,
        flavor: BlasFlavor,
        exec: &SweepExecutor,
        stride: usize,
        policy: RetryPolicy,
        plan: FaultPlan,
    ) -> RobustSweep<CpuDgemmConfig, CpuPoint> {
        assert!(stride >= 1, "stride must be positive");
        let configs: Vec<CpuDgemmConfig> =
            self.configs(flavor).into_iter().step_by(stride).collect();
        exec.run_measured_with_retry(
            &configs,
            policy,
            || Self::faulty_runner(plan, 0),
            |runner, cfg| {
                let r = self.sim.run_dgemm(cfg, n);
                let m = runner.try_measure(
                    r.time,
                    r.dynamic_power,
                    Watts::ZERO,
                    enprop_units::Seconds::ZERO,
                )?;
                Ok(CpuPoint {
                    avg_utilization: r.average_utilization(),
                    utilization_spread: Utilization::std_dev(&r.per_core_util),
                    gflops: r.gflops,
                    point: DataPoint {
                        config: *cfg,
                        time: m.time,
                        dynamic_energy: m.dynamic_energy,
                        reps: m.reps,
                        converged: m.converged,
                    },
                })
            },
        )
    }

    /// A measurement rig matching the paper's CPU node idle draw.
    pub fn default_runner(seed: u64) -> MeasurementRunner {
        MeasurementRunner::new(Watts(90.0), seed)
    }

    /// A [`default_runner`](Self::default_runner)-shaped rig whose meter
    /// misbehaves per `plan`.
    pub fn faulty_runner(
        plan: FaultPlan,
        seed: u64,
    ) -> MeasurementRunner<FaultInjectingMeter<SimulatedWattsUp>> {
        MeasurementRunner::faulty(Watts(90.0), plan, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_configuration_space() {
        let app = CpuDgemmApp::haswell();
        let pts = app.sweep_exact(8192, BlasFlavor::IntelMkl);
        assert!(pts.len() > 200, "{}", pts.len());
        // Utilizations span from near-idle to near-full.
        let min = pts.iter().map(|p| p.avg_utilization.fraction()).fold(1.0, f64::min);
        let max = pts.iter().map(|p| p.avg_utilization.fraction()).fold(0.0, f64::max);
        assert!(min < 0.1 && max > 0.85, "span [{min}, {max}]");
    }

    #[test]
    fn power_is_non_functional_in_utilization() {
        // The Fig. 4 signature: configurations within a narrow utilization
        // band draw meaningfully different dynamic power.
        let app = CpuDgemmApp::haswell();
        let pts = app.sweep_exact(17408, BlasFlavor::IntelMkl);
        let band: Vec<&CpuPoint> = pts
            .iter()
            .filter(|p| (p.avg_utilization.fraction() - 0.5).abs() < 0.03)
            .collect();
        assert!(band.len() >= 3, "band too small: {}", band.len());
        let powers: Vec<f64> = band.iter().map(|p| p.point.dynamic_power().value()).collect();
        let max = powers.iter().cloned().fold(f64::MIN, f64::max);
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        assert!((max - min) / max > 0.10, "power spread only {}", (max - min) / max);
    }

    #[test]
    fn measured_sweep_is_subsampled_and_close() {
        let app = CpuDgemmApp::haswell();
        let exec = SweepExecutor::serial(3);
        let measured = app.sweep_measured(8192, BlasFlavor::OpenBlas, &exec, 37);
        assert!(!measured.is_empty());
        for p in &measured {
            let exact = app.run(&p.point.config, 8192);
            let rel = (p.point.dynamic_energy.value() - exact.dynamic_energy().value()).abs()
                / exact.dynamic_energy().value();
            assert!(rel < 0.3, "config {:?}: rel {rel}", p.point.config);
        }
    }

    #[test]
    fn faultless_robust_sweep_matches_plain_sweep() {
        let app = CpuDgemmApp::haswell();
        let exec = SweepExecutor::serial(8);
        let plain = app.sweep_measured(4096, BlasFlavor::OpenBlas, &exec, 61);
        let robust = app.sweep_measured_robust(
            4096,
            BlasFlavor::OpenBlas,
            &exec,
            61,
            RetryPolicy::default(),
            FaultPlan::none(),
        );
        assert!(robust.is_complete());
        assert_eq!(robust.points, plain);
    }

    #[test]
    fn measured_sweep_is_thread_count_invariant() {
        let app = CpuDgemmApp::haswell();
        let serial =
            app.sweep_measured(4096, BlasFlavor::OpenBlas, &SweepExecutor::serial(8), 61);
        let threaded = app.sweep_measured(
            4096,
            BlasFlavor::OpenBlas,
            &SweepExecutor::new(8).with_threads(3),
            61,
        );
        assert_eq!(serial, threaded);
    }
}
