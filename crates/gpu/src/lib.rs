#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! GPU simulator: the substitute for the paper's Nvidia K40c and P100 PCIe.
//!
//! The physical GPUs are unavailable, so this crate provides two
//! complementary stand-ins (see `DESIGN.md` §2 for the substitution
//! rationale):
//!
//! 1. A **functional emulator** ([`emulator`]) that executes CUDA-style
//!    kernels — grids of blocks of threads with per-block shared memory and
//!    `__syncthreads` barriers — on OS threads, with full event counting.
//!    The paper's tiled matrix-multiplication kernel (Fig. 5) is
//!    implemented on it and validated against a reference matmul. This is
//!    the ground truth for kernel *semantics* and *event counts*.
//!
//! 2. An **analytic performance/power model** ([`model`]) that predicts
//!    kernel time and steady-state dynamic power at the paper's full
//!    problem sizes (N up to 18432) from first-order architectural
//!    mechanisms: occupancy ([`occupancy`]), memory coalescing/alignment,
//!    padded-tile waste, latency hiding, auto-boost clocking and the 58 W
//!    warm-up component of Fig. 6. Architecture descriptions live in
//!    [`arch`]; per-architecture power constants are *calibrated* to the
//!    published Pareto geometry.
//!
//! CUPTI-style performance-event readings, including the u32 overflow the
//! paper reports for N > 2048, are modeled in [`cupti`]; an analytic 2-D
//! FFT model for the strong-EP study (Fig. 1) is in [`fft_model`].

pub mod arch;
pub mod cupti;
pub mod emulator;
pub mod fft_model;
pub mod model;
pub mod occupancy;

pub use arch::{GpuArch, PowerModel};
pub use cupti::{CuptiCounter, CuptiReading, CuptiReport};
pub use model::{KernelEstimate, ProductProfile, TiledDgemm, TiledDgemmConfig};
pub use occupancy::Occupancy;
