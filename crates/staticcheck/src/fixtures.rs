//! Static analysis of the dynamic sanitizer's seeded buggy fixtures.
//!
//! The four fixtures are the sanitizer's regression corpus: each one is
//! a deliberately broken kernel caught by exactly one dynamic checker.
//! This module drives the *static* analyzer over the same kernels (via
//! the sanitizer's [`FixtureVisitor`] seam, so the fixture types stay
//! private) and compares verdicts: every fixture must be flagged
//! statically, by the same checker, with diagnostics naming the same
//! phase and buffer as the dynamic findings.

use crate::analyze_launch;
use crate::report::{StaticFinding, StaticReport};
use enprop_gpusim::emulator::{BlockKernel, BufId, Dim2};
use enprop_sanitize::fixtures::{self_test, visit_fixtures, FixtureVisitor};
use enprop_sanitize::report::{Checker, Finding, FindingKind, MemSpace};

/// Static verdict on one fixture, compared against the dynamic run.
#[derive(Debug)]
pub struct FixtureOutcome {
    /// The fixture's label (same as the dynamic report's `kernel`).
    pub label: String,
    /// The checker expected to catch the seeded bug.
    pub expected: Checker,
    /// The static report.
    pub report: StaticReport,
    /// Flagged statically, exclusively by the expected checker.
    pub caught: bool,
    /// Some static finding names the same (checker, phase, space,
    /// buffer) as a dynamic finding.
    pub parity: bool,
}

struct Analyzer {
    outcomes: Vec<(String, Checker, StaticReport)>,
}

impl FixtureVisitor for Analyzer {
    fn visit<K: BlockKernel>(
        &mut self,
        label: &str,
        expected: Checker,
        grid: Dim2,
        kernel: &K,
        buffers: &[(BufId, &'static str, usize)],
    ) {
        let report = analyze_launch(label, grid, kernel, buffers);
        self.outcomes.push((label.to_string(), expected, report));
    }
}

/// Dynamic finding's (space, buffer) attribution, from its payload.
fn dyn_space_buffer(kind: &FindingKind) -> (Option<MemSpace>, Option<String>) {
    match kind {
        FindingKind::Race { space, buffer, .. } => (Some(*space), buffer.clone()),
        FindingKind::InterBlockRace { buffer, .. } => (Some(MemSpace::Global), buffer.clone()),
        FindingKind::OutOfBounds { space, buffer, .. } => (Some(*space), buffer.clone()),
        FindingKind::UninitRead { .. } => (Some(MemSpace::Shared), None),
        FindingKind::BarrierDivergence { .. } | FindingKind::Launch { .. } => (None, None),
    }
}

/// Whether a static finding names the same checker, phase, space and
/// buffer as a dynamic one (attributes absent on either side do not
/// disagree).
fn finding_matches(sf: &StaticFinding, df: &Finding) -> bool {
    if sf.checker != df.checker {
        return false;
    }
    let (dspace, dbuf) = dyn_space_buffer(&df.kind);
    let agree_space = match (sf.space, dspace) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    };
    let agree_buf = match (&sf.buffer, &dbuf) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    };
    let agree_phase = match (sf.phase, df.phase) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    };
    agree_space && agree_buf && agree_phase
}

/// Statically analyzes every seeded fixture and compares against the
/// dynamic sanitizer's verdicts on the same kernels.
pub fn analyze_fixtures() -> Vec<FixtureOutcome> {
    let mut analyzer = Analyzer { outcomes: Vec::new() };
    visit_fixtures(&mut analyzer);
    let dynamic = self_test();
    analyzer
        .outcomes
        .into_iter()
        .map(|(label, expected, report)| {
            let caught = !report.findings.is_empty()
                && report.findings.iter().all(|f| f.checker == expected);
            let parity = dynamic
                .iter()
                .find(|(_, d)| d.kernel == label)
                .is_some_and(|(_, d)| {
                    report
                        .findings
                        .iter()
                        .any(|sf| d.findings.iter().any(|df| finding_matches(sf, df)))
                });
            FixtureOutcome { label, expected, report, caught, parity }
        })
        .collect()
}
