//! Seeded buggy kernels, each caught by exactly one checker.
//!
//! Every fixture is a deliberately broken variant of the shipped tiled
//! DGEMM. Each report function allocates deterministic inputs, runs the
//! fixture under a [`LaunchMonitor`](crate::monitor::LaunchMonitor) and
//! returns the [`KernelReport`] — the unit tests snapshot the resulting
//! diagnostics and `repro sanitize --self-test` asserts each fixture is
//! still caught by its intended checker.
//!
//! | fixture                     | bug                                    | caught by |
//! |-----------------------------|----------------------------------------|-----------|
//! | `missing_barrier_report`    | `__syncthreads` between stage and MAC removed | racecheck |
//! | `oob_tile_report`           | off-by-one column when staging `A`     | memcheck (OOB) |
//! | `uninit_accumulator_report` | accumulator seeded from unwritten shared cells | memcheck (uninit) |
//! | `divergence_report`         | only thread (0, 0) reaches the barrier | synccheck |

use crate::driver::{fill, sanitize_kernel, KernelReport};
use crate::monitor::BufferTable;
use crate::report::Checker;
use enprop_gpusim::emulator::{
    AccessSink, BlockKernel, BufId, Dim2, GlobalMem, PhaseCtx, PhaseOutcome,
};

/// Tiled DGEMM with the stage→MAC `__syncthreads` removed: each phase
/// stages a tile *and* immediately consumes it, so threads read shared
/// cells their neighbours write in the same phase.
struct MissingBarrierDgemm<'a> {
    n: usize,
    bs: usize,
    tiles: usize,
    a: &'a GlobalMem,
    b: &'a GlobalMem,
    c: &'a GlobalMem,
}

/// Per-thread state of the DGEMM fixtures: tile counter plus accumulator.
struct DgemmState {
    tile: usize,
    csub: f64,
}

impl BlockKernel for MissingBarrierDgemm<'_> {
    type State = DgemmState;

    fn block(&self) -> Dim2 {
        Dim2::new(self.bs, self.bs)
    }

    fn shared_len(&self) -> usize {
        2 * self.bs * self.bs
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) -> DgemmState {
        DgemmState { tile: 0, csub: 0.0 }
    }

    fn run_phase<S: AccessSink>(
        &self,
        _phase: usize,
        st: &mut DgemmState,
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        let (n, bs) = (self.n, self.bs);
        let row = ctx.by * bs + ctx.ty;
        let col = ctx.bx * bs + ctx.tx;
        if st.tile < self.tiles {
            let t = st.tile;
            let av = ctx.global_load(self.a, row * n + t * bs + ctx.tx);
            ctx.shared_store(ctx.ty * bs + ctx.tx, av);
            let bv = ctx.global_load(self.b, (t * bs + ctx.ty) * n + col);
            ctx.shared_store(bs * bs + ctx.ty * bs + ctx.tx, bv);
            // BUG: no __syncthreads before consuming the tile — the MAC
            // below races with the staging stores of the other threads.
            for k in 0..bs {
                st.csub +=
                    ctx.shared_load(ctx.ty * bs + k) * ctx.shared_load(bs * bs + k * bs + ctx.tx);
            }
            st.tile += 1;
            PhaseOutcome::Sync
        } else {
            let idx = row * n + col;
            let cur = ctx.global_load(self.c, idx);
            ctx.global_store(self.c, idx, cur + st.csub);
            PhaseOutcome::Done
        }
    }
}

/// Runs the missing-barrier fixture (N=8, BS=4, 2×2 grid). Expected:
/// racecheck findings only.
pub fn missing_barrier_report() -> KernelReport {
    let (n, bs) = (8usize, 4usize);
    let a = GlobalMem::from_slice(&fill(n * n, 11));
    let b = GlobalMem::from_slice(&fill(n * n, 12));
    let c = GlobalMem::from_slice(&fill(n * n, 13));
    let mut table = BufferTable::new();
    table.register(a.id(), "A", n * n);
    table.register(b.id(), "B", n * n);
    table.register(c.id(), "C", n * n);
    let kernel = MissingBarrierDgemm { n, bs, tiles: n / bs, a: &a, b: &b, c: &c };
    sanitize_kernel("fixture:missing-barrier-dgemm", Dim2::new(n / bs, n / bs), &kernel, table)
}

/// Single-tile DGEMM whose staging loads `A[ty·N + tx + 1]` — an
/// off-by-one column that walks one element past the end of `A` for the
/// last thread. Barriers are correct; shared traffic is clean.
struct OffByOneTileDgemm<'a> {
    n: usize,
    a: &'a GlobalMem,
    b: &'a GlobalMem,
    c: &'a GlobalMem,
}

impl BlockKernel for OffByOneTileDgemm<'_> {
    type State = DgemmState;

    fn block(&self) -> Dim2 {
        Dim2::new(self.n, self.n)
    }

    fn shared_len(&self) -> usize {
        2 * self.n * self.n
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) -> DgemmState {
        DgemmState { tile: 0, csub: 0.0 }
    }

    fn run_phase<S: AccessSink>(
        &self,
        phase: usize,
        st: &mut DgemmState,
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        let n = self.n;
        match phase {
            0 => {
                // BUG: the A column index is off by one; thread (N-1, N-1)
                // reads A[N²], one past the allocation.
                let av = ctx.global_load(self.a, ctx.ty * n + ctx.tx + 1);
                ctx.shared_store(ctx.ty * n + ctx.tx, av);
                let bv = ctx.global_load(self.b, ctx.ty * n + ctx.tx);
                ctx.shared_store(n * n + ctx.ty * n + ctx.tx, bv);
                PhaseOutcome::Sync
            }
            1 => {
                for k in 0..n {
                    st.csub +=
                        ctx.shared_load(ctx.ty * n + k) * ctx.shared_load(n * n + k * n + ctx.tx);
                }
                PhaseOutcome::Sync
            }
            _ => {
                let idx = ctx.ty * n + ctx.tx;
                let cur = ctx.global_load(self.c, idx);
                ctx.global_store(self.c, idx, cur + st.csub);
                PhaseOutcome::Done
            }
        }
    }
}

/// Runs the off-by-one fixture (N=8, one block). Expected: exactly one
/// memcheck out-of-bounds finding, attributed to thread (7, 7), phase 0.
pub fn oob_tile_report() -> KernelReport {
    let n = 8usize;
    let a = GlobalMem::from_slice(&fill(n * n, 21));
    let b = GlobalMem::from_slice(&fill(n * n, 22));
    let c = GlobalMem::from_slice(&fill(n * n, 23));
    let mut table = BufferTable::new();
    table.register(a.id(), "A", n * n);
    table.register(b.id(), "B", n * n);
    table.register(c.id(), "C", n * n);
    let kernel = OffByOneTileDgemm { n, a: &a, b: &b, c: &c };
    sanitize_kernel("fixture:off-by-one-tile-dgemm", Dim2::new(1, 1), &kernel, table)
}

/// Single-tile DGEMM that seeds each thread's accumulator from a shared
/// scratch region no thread ever writes. Barriers and bounds are correct.
struct UninitAccumulatorDgemm<'a> {
    n: usize,
    a: &'a GlobalMem,
    b: &'a GlobalMem,
    c: &'a GlobalMem,
}

impl BlockKernel for UninitAccumulatorDgemm<'_> {
    type State = DgemmState;

    fn block(&self) -> Dim2 {
        Dim2::new(self.n, self.n)
    }

    fn shared_len(&self) -> usize {
        // Tile pair plus the (never-written) accumulator scratch region.
        3 * self.n * self.n
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) -> DgemmState {
        DgemmState { tile: 0, csub: 0.0 }
    }

    fn run_phase<S: AccessSink>(
        &self,
        phase: usize,
        st: &mut DgemmState,
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        let n = self.n;
        match phase {
            0 => {
                // BUG: the accumulator scratch region is read before (and
                // in fact without ever) being initialized.
                st.csub = ctx.shared_load(2 * n * n + ctx.ty * n + ctx.tx);
                PhaseOutcome::Sync
            }
            1 => {
                let av = ctx.global_load(self.a, ctx.ty * n + ctx.tx);
                ctx.shared_store(ctx.ty * n + ctx.tx, av);
                let bv = ctx.global_load(self.b, ctx.ty * n + ctx.tx);
                ctx.shared_store(n * n + ctx.ty * n + ctx.tx, bv);
                PhaseOutcome::Sync
            }
            2 => {
                for k in 0..n {
                    st.csub +=
                        ctx.shared_load(ctx.ty * n + k) * ctx.shared_load(n * n + k * n + ctx.tx);
                }
                PhaseOutcome::Sync
            }
            _ => {
                let idx = ctx.ty * n + ctx.tx;
                let cur = ctx.global_load(self.c, idx);
                ctx.global_store(self.c, idx, cur + st.csub);
                PhaseOutcome::Done
            }
        }
    }
}

/// Runs the uninitialized-accumulator fixture (N=4, one block).
/// Expected: 16 memcheck uninitialized-read findings, one per thread.
pub fn uninit_accumulator_report() -> KernelReport {
    let n = 4usize;
    let a = GlobalMem::from_slice(&fill(n * n, 31));
    let b = GlobalMem::from_slice(&fill(n * n, 32));
    let c = GlobalMem::from_slice(&fill(n * n, 33));
    let mut table = BufferTable::new();
    table.register(a.id(), "A", n * n);
    table.register(b.id(), "B", n * n);
    table.register(c.id(), "C", n * n);
    let kernel = UninitAccumulatorDgemm { n, a: &a, b: &b, c: &c };
    sanitize_kernel("fixture:uninit-accumulator-dgemm", Dim2::new(1, 1), &kernel, table)
}

/// A kernel whose thread (0, 0) keeps syncing while the rest return after
/// phase 0 — `__syncthreads` not reached uniformly.
struct EarlyExit;

impl BlockKernel for EarlyExit {
    type State = ();

    fn block(&self) -> Dim2 {
        Dim2::new(4, 1)
    }

    fn shared_len(&self) -> usize {
        0
    }

    fn init(&self, _bx: usize, _by: usize, _tx: usize, _ty: usize) {}

    fn run_phase<S: AccessSink>(
        &self,
        phase: usize,
        _s: &mut (),
        ctx: &mut PhaseCtx<'_, S>,
    ) -> PhaseOutcome {
        // BUG: only thread (0, 0) reaches the barrier in phase 0.
        if ctx.tx == 0 && phase == 0 {
            PhaseOutcome::Sync
        } else {
            PhaseOutcome::Done
        }
    }
}

/// Runs the barrier-divergence fixture (one 4-thread block). Expected:
/// exactly one synccheck finding naming the early-retired threads.
pub fn divergence_report() -> KernelReport {
    sanitize_kernel("fixture:early-exit", Dim2::new(1, 1), &EarlyExit, BufferTable::new())
}

/// Every fixture paired with the checker expected to catch it — the
/// corpus `repro sanitize --self-test` verifies.
pub fn self_test() -> Vec<(Checker, KernelReport)> {
    vec![
        (Checker::Racecheck, missing_barrier_report()),
        (Checker::Memcheck, oob_tile_report()),
        (Checker::Memcheck, uninit_accumulator_report()),
        (Checker::Synccheck, divergence_report()),
    ]
}

/// Callback over the fixture corpus. The fixture kernel types stay
/// private; external analyzers (the static verifier) see each one only
/// through its [`BlockKernel`] impl, exactly like the monitor does.
pub trait FixtureVisitor {
    /// Called once per fixture with its launch geometry, kernel, the
    /// registered `(id, name, len)` buffers and the checker expected to
    /// catch the seeded bug.
    fn visit<K: BlockKernel>(
        &mut self,
        label: &str,
        expected: Checker,
        grid: Dim2,
        kernel: &K,
        buffers: &[(BufId, &'static str, usize)],
    );
}

/// Drives `v` over the same four seeded fixtures as [`self_test`], with
/// identical geometry, inputs and labels.
pub fn visit_fixtures<V: FixtureVisitor>(v: &mut V) {
    {
        let (n, bs) = (8usize, 4usize);
        let a = GlobalMem::from_slice(&fill(n * n, 11));
        let b = GlobalMem::from_slice(&fill(n * n, 12));
        let c = GlobalMem::from_slice(&fill(n * n, 13));
        let kernel = MissingBarrierDgemm { n, bs, tiles: n / bs, a: &a, b: &b, c: &c };
        let bufs = [(a.id(), "A", n * n), (b.id(), "B", n * n), (c.id(), "C", n * n)];
        v.visit(
            "fixture:missing-barrier-dgemm",
            Checker::Racecheck,
            Dim2::new(n / bs, n / bs),
            &kernel,
            &bufs,
        );
    }
    {
        let n = 8usize;
        let a = GlobalMem::from_slice(&fill(n * n, 21));
        let b = GlobalMem::from_slice(&fill(n * n, 22));
        let c = GlobalMem::from_slice(&fill(n * n, 23));
        let kernel = OffByOneTileDgemm { n, a: &a, b: &b, c: &c };
        let bufs = [(a.id(), "A", n * n), (b.id(), "B", n * n), (c.id(), "C", n * n)];
        v.visit("fixture:off-by-one-tile-dgemm", Checker::Memcheck, Dim2::new(1, 1), &kernel, &bufs);
    }
    {
        let n = 4usize;
        let a = GlobalMem::from_slice(&fill(n * n, 31));
        let b = GlobalMem::from_slice(&fill(n * n, 32));
        let c = GlobalMem::from_slice(&fill(n * n, 33));
        let kernel = UninitAccumulatorDgemm { n, a: &a, b: &b, c: &c };
        let bufs = [(a.id(), "A", n * n), (b.id(), "B", n * n), (c.id(), "C", n * n)];
        v.visit(
            "fixture:uninit-accumulator-dgemm",
            Checker::Memcheck,
            Dim2::new(1, 1),
            &kernel,
            &bufs,
        );
    }
    v.visit("fixture:early-exit", Checker::Synccheck, Dim2::new(1, 1), &EarlyExit, &[]);
}
