//! Engineering-prefix formatting shared by all quantity types.

/// Formats a scalar with an SI engineering prefix (…, m, none, k, M, G, T, P)
/// and a unit suffix, e.g. `1.500 kJ` or `250.000 mW`.
///
/// Values are scaled so the mantissa lies in `[1, 1000)` where possible;
/// zero, NaN and infinities are printed without a prefix.
#[derive(Debug, Clone, Copy)]
pub struct EngFormat {
    value: f64,
    unit: &'static str,
}

/// `(threshold, divisor, prefix)` triples from largest to smallest.
const PREFIXES: &[(f64, f64, &str)] = &[
    (1.0e15, 1.0e15, "P"),
    (1.0e12, 1.0e12, "T"),
    (1.0e9, 1.0e9, "G"),
    (1.0e6, 1.0e6, "M"),
    (1.0e3, 1.0e3, "k"),
    (1.0, 1.0, ""),
    (1.0e-3, 1.0e-3, "m"),
    (1.0e-6, 1.0e-6, "µ"),
    (1.0e-9, 1.0e-9, "n"),
];

impl EngFormat {
    /// Wraps `value` (in base units) tagged with `unit` for display.
    pub fn new(value: f64, unit: &'static str) -> Self {
        Self { value, unit }
    }

    /// Writes the formatted quantity into `f`.
    pub fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.value;
        if v == 0.0 || !v.is_finite() {
            return write!(f, "{:.3} {}", v, self.unit);
        }
        let mag = v.abs();
        for &(threshold, divisor, prefix) in PREFIXES {
            if mag >= threshold {
                return write!(f, "{:.3} {}{}", v / divisor, prefix, self.unit);
            }
        }
        write!(f, "{:.3e} {}", v, self.unit)
    }
}

impl std::fmt::Display for EngFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        EngFormat::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64, u: &'static str) -> String {
        EngFormat::new(v, u).to_string()
    }

    #[test]
    fn prefixes() {
        assert_eq!(s(1.0, "J"), "1.000 J");
        assert_eq!(s(999.0, "J"), "999.000 J");
        assert_eq!(s(1000.0, "J"), "1.000 kJ");
        assert_eq!(s(2.5e6, "W"), "2.500 MW");
        assert_eq!(s(7.0e11, "flop/s"), "700.000 Gflop/s");
        assert_eq!(s(1.0e-3, "s"), "1.000 ms");
        assert_eq!(s(2.0e-6, "s"), "2.000 µs");
        assert_eq!(s(3.0e-9, "s"), "3.000 ns");
    }

    #[test]
    fn zero_and_negative() {
        assert_eq!(s(0.0, "J"), "0.000 J");
        assert_eq!(s(-1500.0, "J"), "-1.500 kJ");
    }

    #[test]
    fn tiny_falls_back_to_scientific() {
        assert_eq!(s(5.0e-12, "s"), "5.000e-12 s");
    }
}
