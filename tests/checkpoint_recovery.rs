//! Crash-recovery acceptance suite for the checkpoint journal.
//!
//! The contract under test: a sweep killed at *any* point — between
//! records or mid-frame — resumes from its journal and returns output
//! bitwise-identical to an uninterrupted run, at any thread count; a
//! journal truncated at *any* byte offset either replays a clean set of
//! fully-valid records or reports a typed corruption error, never
//! panicking and never replaying a torn record; and a configuration that
//! overruns its watchdog deadline becomes a recorded failure without
//! stalling the rest of the sweep.

use enprop::apps::checkpoint::{
    replay, CheckpointError, CrashPlan, JournalRecord, SweepCheckpoint, SweepManifest,
};
use enprop::apps::{
    GpuMatMulApp, MeasurementRunner, RetryPolicy, RobustSweep, SweepExecutor, SweepOutcome,
};
use enprop::gpusim::GpuArch;
use enprop::power::{FaultPlan, MeasureError};
use enprop::units::Watts;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A unique scratch directory per call; pre-cleaned, caller removes it.
fn temp_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("enprop-ckpt-it-{}-{label}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Copies a flat journal directory so one crashed journal can seed
/// several independent resume attempts.
fn copy_journal(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create journal copy dir");
    for entry in std::fs::read_dir(src).expect("read journal dir") {
        let entry = entry.expect("journal dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy journal file");
    }
}

/// The segment files of a journal, sorted by name (manifest excluded).
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read journal dir")
        .map(|e| e.expect("journal dir entry").path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.starts_with("seg-"))
        })
        .collect();
    files.sort();
    files
}

fn truncate_file(path: &Path, len: u64) {
    let f = std::fs::OpenOptions::new().write(true).open(path).expect("open for truncate");
    f.set_len(len).expect("truncate");
}

// ---------------------------------------------------------------------
// Synthetic sweeps: a trivial measurement function makes the exhaustive
// kill-point grid affordable — the mechanics under test are entirely in
// the journal and the executor, not the measurement.
// ---------------------------------------------------------------------

const SYNTH_SEED: u64 = 9;
const SYNTH_TOTAL: usize = 24;

fn synth_items() -> Vec<f64> {
    (0..SYNTH_TOTAL).map(|i| i as f64).collect()
}

fn synth_manifest(policy: &RetryPolicy) -> SweepManifest {
    SweepManifest::new(SYNTH_SEED, SYNTH_TOTAL, policy.max_attempts, "synthetic-crash-grid")
}

fn synth_runner() -> MeasurementRunner {
    MeasurementRunner::new(Watts(5.0), 0)
}

fn synth_measure(
    _runner: &mut MeasurementRunner,
    item: &f64,
) -> Result<f64, MeasureError> {
    Ok(item * 3.0 + 1.0)
}

/// The uninterrupted reference sweep for the synthetic workload.
fn synth_clean(policy: RetryPolicy) -> RobustSweep<f64, f64> {
    let items = synth_items();
    SweepExecutor::new(SYNTH_SEED).with_threads(2).run_measured_with_retry(
        &items,
        policy,
        synth_runner,
        synth_measure,
    )
}

/// Every kill point of the synthetic sweep, with clean and torn final
/// frames, resumed at 1, 2, and 8 threads — each resume must reproduce
/// the uninterrupted sweep bitwise and account for every configuration
/// as either replayed or recomputed.
#[test]
fn every_kill_point_resumes_bitwise_identical_at_all_thread_counts() {
    let items = synth_items();
    let policy = RetryPolicy::no_retry();
    let manifest = synth_manifest(&policy);
    let clean = synth_clean(policy);

    for kill in 0..SYNTH_TOTAL {
        // Cycle the tear through a clean kill (0), a mid-header tear (5),
        // and a mid-body tear (9) instead of a full cross product.
        let torn = [0usize, 5, 9][kill % 3];
        let crash_dir = temp_dir("grid");
        let mut checkpoint =
            SweepCheckpoint::fresh(&crash_dir, manifest.clone()).expect("fresh journal");
        // Tiny segments so kills land before, at, and after seal points.
        checkpoint.set_segment_capacity(8);
        checkpoint.arm_crash(CrashPlan::kill_after(kill).with_torn_bytes(torn));

        let crashed = SweepExecutor::new(SYNTH_SEED)
            .with_threads(2)
            .run_measured_with_retry_resumable(
                &items,
                policy,
                checkpoint,
                synth_runner,
                synth_measure,
            )
            .expect("crash-armed sweep");
        assert!(crashed.crashed, "kill {kill}: the armed crash never fired");
        // The in-process results are unharmed — only durability is lost.
        assert!(crashed.sweep == clean, "kill {kill}: crashed run diverged");

        for threads in [1usize, 2, 8] {
            let resume_dir = temp_dir("grid-resume");
            copy_journal(&crash_dir, &resume_dir);
            let checkpoint =
                SweepCheckpoint::resume(&resume_dir, &manifest).expect("resume journal");
            assert_eq!(
                checkpoint.replayed().len(),
                kill,
                "kill {kill}: durable record count"
            );
            let resumed = SweepExecutor::new(SYNTH_SEED)
                .with_threads(threads)
                .run_measured_with_retry_resumable(
                    &items,
                    policy,
                    checkpoint,
                    synth_runner,
                    synth_measure,
                )
                .expect("resumed sweep");
            assert!(
                resumed.sweep == clean,
                "kill {kill} torn {torn} threads {threads}: resumed sweep diverged"
            );
            assert_eq!(resumed.replayed, kill);
            assert_eq!(resumed.executed, SYNTH_TOTAL - kill);
            assert_eq!(resumed.torn_tail_bytes, torn as u64, "kill {kill}");
            assert!(!resumed.crashed);
            let _ = std::fs::remove_dir_all(&resume_dir);
        }
        let _ = std::fs::remove_dir_all(&crash_dir);
    }
}

/// Resuming a journal that already covers the whole sweep replays
/// everything and measures nothing.
#[test]
fn completed_journal_resumes_with_zero_recomputation() {
    let items = synth_items();
    let policy = RetryPolicy::no_retry();
    let manifest = synth_manifest(&policy);
    let dir = temp_dir("complete");

    let checkpoint = SweepCheckpoint::fresh(&dir, manifest.clone()).expect("fresh journal");
    let exec = SweepExecutor::new(SYNTH_SEED).with_threads(2);
    let first = exec
        .run_measured_with_retry_resumable(&items, policy, checkpoint, synth_runner, synth_measure)
        .expect("journaled sweep");
    assert_eq!(first.executed, SYNTH_TOTAL);

    let checkpoint = SweepCheckpoint::resume(&dir, &manifest).expect("resume journal");
    let second = exec
        .run_measured_with_retry_resumable(&items, policy, checkpoint, synth_runner, synth_measure)
        .expect("re-resumed sweep");
    assert_eq!(second.replayed, SYNTH_TOTAL);
    assert_eq!(second.executed, 0);
    assert!(second.sweep == first.sweep);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal from a different sweep identity is refused with a typed
/// mismatch, field by field.
#[test]
fn resume_refuses_a_journal_from_a_different_sweep() {
    let items = synth_items();
    let policy = RetryPolicy::no_retry();
    let manifest = synth_manifest(&policy);
    let dir = temp_dir("mismatch");

    let checkpoint = SweepCheckpoint::fresh(&dir, manifest.clone()).expect("fresh journal");
    let journaled = SweepExecutor::new(SYNTH_SEED)
        .with_threads(1)
        .run_measured_with_retry_resumable(&items, policy, checkpoint, synth_runner, synth_measure)
        .expect("journaled sweep");
    assert_eq!(journaled.executed, SYNTH_TOTAL);

    let mut foreign = manifest.clone();
    foreign.sweep_seed = SYNTH_SEED + 1;
    match SweepCheckpoint::<f64>::resume(&dir, &foreign) {
        Err(CheckpointError::ManifestMismatch { field: "sweep_seed", .. }) => {}
        other => panic!("expected a sweep_seed mismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Truncation: the journal's torn-tail taxonomy, exhaustively.
// ---------------------------------------------------------------------

/// Authors a journal of `total` f64 records directly (no sweep), leaving
/// the tail `.open` as a crash would.
fn author_journal(dir: &Path, total: usize, capacity: usize) -> SweepManifest {
    let manifest = SweepManifest::new(3, total, 1, "truncation-harness");
    let mut checkpoint =
        SweepCheckpoint::<f64>::fresh(dir, manifest.clone()).expect("fresh journal");
    checkpoint.set_segment_capacity(capacity);
    let writer = checkpoint.writer_mut();
    for index in 0..total {
        let record = JournalRecord {
            index,
            outcome: SweepOutcome::Ok { point: index as f64 * 1.5 - 2.0, attempts: 1 },
        };
        assert!(writer.append(&record).expect("append"));
    }
    manifest
}

/// The truncation property shared by the exhaustive loop and the
/// proptest: replay of a truncated journal must not panic, must never
/// surface a record that isn't bitwise one of the originals, and — when
/// the cut hits the unsealed tail — must replay exactly the records
/// fully contained below the cut.
fn assert_truncation_is_safe(
    tdir: &Path,
    full: &[(usize, SweepOutcome<f64>)],
    cut_in_tail: Option<usize>,
) {
    match replay::<f64>(tdir) {
        Ok(r) => {
            for pair in &r.outcomes {
                assert!(
                    full.contains(pair),
                    "replayed a record that was never written: index {}",
                    pair.0
                );
            }
            assert!(r.outcomes.len() <= full.len());
            if let Some(expected) = cut_in_tail {
                assert_eq!(
                    r.outcomes.as_slice(),
                    &full[..expected],
                    "tail truncation must replay exactly the clean prefix"
                );
            }
        }
        // A cut inside a sealed segment is strict-scanned corruption;
        // what matters is that it is *typed*, not a panic, and that no
        // records were handed out.
        Err(CheckpointError::CorruptRecord { .. }) => {}
        Err(other) => panic!("unexpected replay error: {other}"),
    }
}

/// Counts the frames of `bytes` fully contained in the first `cut` bytes.
fn frames_below(bytes: &[u8], cut: usize) -> usize {
    let mut offset = 0usize;
    let mut frames = 0usize;
    while offset + 8 <= cut {
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if offset + 8 + len > cut {
            break;
        }
        offset += 8 + len;
        frames += 1;
    }
    frames
}

/// Truncate a three-segment journal (two sealed, one open tail) at every
/// byte offset of every segment file: no panic anywhere, torn records
/// never replayed, tail cuts replay exactly the clean prefix.
#[test]
fn truncation_at_every_byte_offset_is_safe() {
    let dir = temp_dir("trunc-exhaustive");
    author_journal(&dir, 16, 6); // seg0: 6, seg1: 6, tail: 4 records
    let full = replay::<f64>(&dir).expect("pristine replay").outcomes;
    assert_eq!(full.len(), 16);

    let files = segment_files(&dir);
    assert_eq!(files.len(), 3, "expected two sealed segments and one tail");
    let sealed_records = 12; // records in seg0 + seg1

    for file in &files {
        let bytes = std::fs::read(file).expect("read segment");
        let is_tail = file.extension().is_some_and(|e| e == "open");
        for cut in 0..bytes.len() {
            let tdir = temp_dir("trunc-cut");
            copy_journal(&dir, &tdir);
            truncate_file(&tdir.join(file.file_name().expect("file name")), cut as u64);
            let cut_in_tail =
                is_tail.then(|| sealed_records + frames_below(&bytes, cut));
            assert_truncation_is_safe(&tdir, &full, cut_in_tail);
            let _ = std::fs::remove_dir_all(&tdir);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same property over randomized journal shapes: record count,
    /// segment capacity, victim file, and cut offset all drawn freely.
    #[test]
    fn truncated_journals_never_panic_or_replay_torn_records(
        total in 1usize..28,
        capacity in 1usize..9,
        file_pick in 0usize..64,
        cut_pick in 0usize..8192,
    ) {
        let dir = temp_dir("trunc-prop");
        author_journal(&dir, total, capacity);
        let full = replay::<f64>(&dir).expect("pristine replay").outcomes;
        prop_assert_eq!(full.len(), total);

        let files = segment_files(&dir);
        let file = &files[file_pick % files.len()];
        let bytes = std::fs::read(file).expect("read segment");
        if !bytes.is_empty() {
            let cut = cut_pick % bytes.len();
            let is_tail = file.extension().is_some_and(|e| e == "open");
            let tdir = temp_dir("trunc-prop-cut");
            copy_journal(&dir, &tdir);
            truncate_file(&tdir.join(file.file_name().expect("file name")), cut as u64);
            let cut_in_tail = is_tail.then(|| {
                // Records in sealed segments, plus the tail frames that
                // survive the cut.
                let sealed = total - frames_below(&bytes, bytes.len());
                sealed + frames_below(&bytes, cut)
            });
            assert_truncation_is_safe(&tdir, &full, cut_in_tail);
            let _ = std::fs::remove_dir_all(&tdir);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A flipped byte inside a sealed segment is detected by the CRC and
/// reported as typed corruption, never replayed.
#[test]
fn bit_flip_in_a_sealed_segment_is_typed_corruption() {
    let dir = temp_dir("bitflip");
    author_journal(&dir, 12, 4);
    let files = segment_files(&dir);
    let victim = &files[0];
    let mut bytes = std::fs::read(victim).expect("read segment");
    // Flip a byte well inside the first record's JSON body.
    bytes[12] ^= 0x40;
    std::fs::write(victim, &bytes).expect("write corrupted segment");
    match replay::<f64>(&dir) {
        Err(CheckpointError::CorruptRecord { .. }) => {}
        other => panic!("expected CorruptRecord, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// The real workload: the measured GPU sweep with fault injection.
// ---------------------------------------------------------------------

/// A seeded crash in the real fault-injected measured sweep resumes
/// bitwise-identically at 1, 2, and 8 threads.
#[test]
fn fault_sweep_crash_resumes_identically_at_all_thread_counts() {
    let app = GpuMatMulApp::new(GpuArch::k40c(), 8);
    let n = 2048usize; // smaller panel than Fig. 7, same machinery
    let total = app.configs(n).len();
    assert!(total >= 40, "workload too small to be interesting");
    let policy = RetryPolicy::default();
    let plan = FaultPlan::transient(0.05);
    let exec2 = SweepExecutor::new(42).with_threads(2);

    let clean = app.sweep_measured_robust(n, &exec2, policy, plan);

    let crash_dir = temp_dir("gpu-crash");
    let manifest = app.checkpoint_manifest(n, &exec2, &policy, &plan);
    let mut checkpoint =
        SweepCheckpoint::fresh(&crash_dir, manifest.clone()).expect("fresh journal");
    checkpoint.arm_crash(CrashPlan::from_seed(1234, total));
    let crashed = app
        .sweep_measured_robust_resumable(n, &exec2, policy, plan, checkpoint)
        .expect("crash-armed sweep");
    assert!(crashed.crashed, "seeded crash plan never fired");

    for threads in [1usize, 2, 8] {
        let dir = temp_dir("gpu-resume");
        copy_journal(&crash_dir, &dir);
        let exec = SweepExecutor::new(42).with_threads(threads);
        let checkpoint = SweepCheckpoint::resume(&dir, &manifest).expect("resume journal");
        let resumed = app
            .sweep_measured_robust_resumable(n, &exec, policy, plan, checkpoint)
            .expect("resumed sweep");
        assert!(
            resumed.sweep == clean,
            "threads {threads}: resumed sweep diverged from uninterrupted run"
        );
        assert_eq!(resumed.replayed + resumed.executed, total);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&crash_dir);
}

// ---------------------------------------------------------------------
// Watchdog deadlines.
// ---------------------------------------------------------------------

/// Configurations that overrun the per-attempt deadline become recorded
/// `DeadlineExceeded` failures after exhausting their retries; every
/// other configuration completes untouched.
#[test]
fn deadline_exceeded_configs_fail_without_stalling_the_sweep() {
    // Items are sleep durations in milliseconds; two pathological ones.
    let items: Vec<u64> = vec![0, 0, 120, 0, 0, 120, 0, 0];
    let slow: Vec<usize> = vec![2, 5];
    let policy =
        RetryPolicy::attempts(2).with_attempt_deadline(Duration::from_millis(40));

    let sweep = SweepExecutor::new(7).with_threads(2).run_measured_with_retry(
        &items,
        policy,
        synth_runner,
        |_runner, &ms: &u64| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(ms as f64)
        },
    );

    assert_eq!(sweep.points.len(), items.len() - slow.len());
    assert_eq!(sweep.failures.len(), slow.len());
    for failure in &sweep.failures {
        assert!(slow.contains(&failure.index), "unexpected casualty #{}", failure.index);
        assert_eq!(failure.attempts, 2, "deadline failures are retried before recording");
        assert!(
            matches!(failure.error, MeasureError::DeadlineExceeded { .. }),
            "#{}: {}",
            failure.index,
            failure.error
        );
    }
    // The survivors are exactly the fast configurations, values intact.
    for point in &sweep.points {
        assert_eq!(*point, 0.0);
    }
}
