//! One-call bi-objective EP audit of a configuration cloud.
//!
//! Bundles the weak-EP verdict, the Pareto trade-off analysis, and the
//! quality indicators into a single report — the complete §V workflow for
//! one workload.

use crate::weak::{WeakEpReport, WeakEpTest};
use enprop_pareto::{hypervolume_2d, knee_point, BiPoint, TradeoffAnalysis};
use enprop_units::Joules;
use serde::{Deserialize, Serialize};

/// The audit's combined report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiObjectiveAudit {
    /// Weak-EP verdict across the cloud.
    pub weak_ep: WeakEpReport,
    /// Pareto front with per-point trade-offs.
    pub tradeoff: TradeoffAnalysis,
    /// Dominated hypervolume w.r.t. the cloud's worst corner.
    pub hypervolume: f64,
    /// Index (into the cloud) of the knee point, if a front exists.
    pub knee: Option<usize>,
    /// Number of configurations audited.
    pub configurations: usize,
}

impl BiObjectiveAudit {
    /// Audits a (time, dynamic-energy) cloud. Panics on fewer than two
    /// points (weak EP needs at least two configurations).
    pub fn of(cloud: &[BiPoint]) -> Self {
        assert!(cloud.len() >= 2, "audit needs at least two configurations");
        let energies: Vec<Joules> = cloud.iter().map(|p| Joules(p.energy)).collect();
        let weak_ep = WeakEpTest::default().run(&energies);
        let tradeoff = TradeoffAnalysis::of(cloud);
        let worst = BiPoint::new(
            cloud.iter().map(|p| p.time).fold(f64::MIN, f64::max) * 1.01,
            cloud.iter().map(|p| p.energy).fold(f64::MIN, f64::max) * 1.01,
        );
        Self {
            weak_ep,
            hypervolume: hypervolume_2d(cloud, worst),
            knee: knee_point(cloud),
            configurations: cloud.len(),
            tradeoff,
        }
    }

    /// The paper's summary sentence for this workload: `None` when the
    /// performance optimum is also the energy optimum (K40c-style), the
    /// (savings, degradation) pair otherwise (P100-style).
    pub fn opportunity(&self) -> Option<(f64, f64)> {
        self.tradeoff.best_pair()
    }
}

impl std::fmt::Display for BiObjectiveAudit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} configurations; weak EP {} (energy spread {:.1}%)",
            self.configurations,
            if self.weak_ep.holds { "holds" } else { "VIOLATED" },
            self.weak_ep.rel_spread * 100.0
        )?;
        writeln!(f, "Pareto front: {} point(s)", self.tradeoff.len())?;
        match self.opportunity() {
            Some((s, d)) => writeln!(
                f,
                "bi-objective opportunity: {:.1}% energy savings @ {:.1}% degradation",
                s * 100.0,
                d * 100.0
            ),
            None => writeln!(f, "performance-optimal configuration is also energy-optimal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<BiPoint> {
        v.iter().map(|&(t, e)| BiPoint::new(t, e)).collect()
    }

    #[test]
    fn p100_style_cloud() {
        let cloud = pts(&[(1.0, 200.0), (1.1, 100.0), (1.5, 150.0), (2.0, 400.0)]);
        let audit = BiObjectiveAudit::of(&cloud);
        assert!(!audit.weak_ep.holds);
        assert_eq!(audit.tradeoff.len(), 2);
        let (s, d) = audit.opportunity().unwrap();
        assert!((s - 0.5).abs() < 1e-12);
        assert!((d - 0.1).abs() < 1e-9);
        assert!(audit.hypervolume > 0.0);
        assert!(audit.knee.is_some());
        let text = audit.to_string();
        assert!(text.contains("VIOLATED"));
        assert!(text.contains("50.0% energy savings"));
    }

    #[test]
    fn k40c_style_cloud() {
        // One configuration dominates everything.
        let cloud = pts(&[(1.0, 100.0), (1.2, 140.0), (1.4, 180.0)]);
        let audit = BiObjectiveAudit::of(&cloud);
        assert!(audit.tradeoff.is_singleton());
        assert_eq!(audit.opportunity(), None);
        assert!(audit.to_string().contains("also energy-optimal"));
    }

    #[test]
    fn proportional_cloud_passes_weak_ep() {
        let cloud = pts(&[(1.0, 100.0), (1.5, 101.0), (2.0, 99.0)]);
        let audit = BiObjectiveAudit::of(&cloud);
        assert!(audit.weak_ep.holds);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        BiObjectiveAudit::of(&pts(&[(1.0, 1.0)]));
    }
}
