//! Fig. 1: dynamic energy vs. work for the 2-D FFT on all three
//! processors — the strong-EP violation.

use enprop_apps::{sizes, Fft2dApp, FftPoint, Processor};
use enprop_ep::{StrongEpReport, StrongEpTest};
use serde::{Deserialize, Serialize};

/// One processor's Fig. 1 series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Series {
    /// Processor name.
    pub processor: String,
    /// The (N, W, time, E_d) sweep.
    pub points: Vec<FftPoint>,
    /// The strong-EP verdict over the sweep.
    pub strong_ep: StrongEpReport,
}

/// Generates Fig. 1 for all three processors of Table I.
pub fn generate() -> Vec<Fig1Series> {
    Processor::catalog()
        .into_iter()
        .map(|proc| {
            let app = Fft2dApp::new(proc);
            let points = app.sweep(&sizes::fig1_sizes());
            let pairs: Vec<_> = points.iter().map(|p| (p.work, p.dynamic_energy)).collect();
            let strong_ep = StrongEpTest::default().run(&pairs);
            Fig1Series { processor: app.processor().name(), points, strong_ep }
        })
        .collect()
}

/// Renders the figure's series as text.
pub fn render() -> String {
    let mut out = String::new();
    for s in generate() {
        out.push_str(&format!(
            "--- {} --- strong EP {} (max residual {:.1}%, c = {:.3e})\n",
            s.processor,
            if s.strong_ep.holds { "HOLDS" } else { "VIOLATED" },
            s.strong_ep.max_rel_residual * 100.0,
            s.strong_ep.c,
        ));
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|p| {
                vec![
                    p.n.to_string(),
                    format!("{:.3e}", p.work.value()),
                    format!("{:.4}", p.time.value()),
                    format!("{:.1}", p.dynamic_energy.value()),
                ]
            })
            .collect();
        out.push_str(&crate::render::table(&["N", "W", "time[s]", "E_d[J]"], &rows));
        // The figure panel: log₁₀ E_d vs log₁₀ W — a straight line of
        // slope 1 under strong EP; visibly bent here.
        let pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .filter(|p| p.dynamic_energy.value() > 0.0)
            .map(|p| (p.work.value().log10(), p.dynamic_energy.value().log10()))
            .collect();
        out.push_str(&crate::scatter::scatter(
            "log10 E_d vs log10 W",
            "log10 W",
            "log10 E_d [J]",
            &[crate::scatter::Series { glyph: '*', points: pts }],
            64,
            12,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_processors_violate_strong_ep() {
        let series = generate();
        assert_eq!(series.len(), 3);
        for s in &series {
            assert!(!s.strong_ep.holds, "{} unexpectedly satisfies strong EP", s.processor);
            assert!(s.strong_ep.max_rel_residual > 0.10, "{}", s.processor);
        }
    }

    #[test]
    fn energy_grows_with_work_but_nonlinearly() {
        for s in generate() {
            // Overall trend is increasing from the smallest to the largest
            // size…
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            assert!(last.dynamic_energy > first.dynamic_energy);
            // …but energy per work is far from constant.
            let e_per_w: Vec<f64> = s
                .points
                .iter()
                .map(|p| p.dynamic_energy.value() / p.work.value())
                .collect();
            let max = e_per_w.iter().cloned().fold(f64::MIN, f64::max);
            let min = e_per_w.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min > 1.3, "{}: {}", s.processor, max / min);
        }
    }

    #[test]
    fn render_mentions_violation() {
        let r = render();
        assert_eq!(r.matches("VIOLATED").count(), 3);
        assert!(r.contains("44000"));
    }
}
