//! The 2-D FFT application for the strong-EP study (Fig. 1), across all
//! three processors of Table I.

use crate::parallel::{RetryPolicy, RobustSweep, SweepExecutor};
use crate::runner::MeasurementRunner;
use enprop_power::{FaultInjectingMeter, FaultPlan, SimulatedWattsUp};
use enprop_cpusim::fft_model::CpuFft2d;
use enprop_gpusim::fft_model::GpuFft2d;
use enprop_gpusim::GpuArch;
use enprop_units::{Joules, Seconds, Work};
use serde::{Deserialize, Serialize};

/// One (work, energy) observation of the strong-EP sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FftPoint {
    /// FFT size N.
    pub n: usize,
    /// Work `W = 5 N² log₂ N`.
    pub work: Work,
    /// Execution time.
    pub time: Seconds,
    /// Dynamic energy.
    pub dynamic_energy: Joules,
}

/// Which processor runs the transform.
#[derive(Debug, Clone)]
pub enum Processor {
    /// The Haswell CPU node (MKL FFT).
    Cpu(CpuFft2d),
    /// A GPU (CUFFT).
    Gpu(GpuFft2d),
}

impl Processor {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Processor::Cpu(m) => m_name_cpu(m),
            Processor::Gpu(m) => m.arch().name.clone(),
        }
    }

    /// All three processors of Table I.
    pub fn catalog() -> Vec<Processor> {
        vec![
            Processor::Cpu(CpuFft2d::haswell()),
            Processor::Gpu(GpuFft2d::new(GpuArch::k40c())),
            Processor::Gpu(GpuFft2d::new(GpuArch::p100_pcie())),
        ]
    }
}

fn m_name_cpu(_m: &CpuFft2d) -> String {
    "Intel Haswell E5-2670V3".to_string()
}

/// The strong-EP sweep driver.
#[derive(Debug, Clone)]
pub struct Fft2dApp {
    processor: Processor,
}

impl Fft2dApp {
    /// Binds the application to a processor.
    pub fn new(processor: Processor) -> Self {
        Self { processor }
    }

    /// The bound processor.
    pub fn processor(&self) -> &Processor {
        &self.processor
    }

    /// One transform's predicted point.
    pub fn point(&self, n: usize) -> FftPoint {
        let work = enprop_gpusim::fft_model::fft2d_work(n);
        let (time, energy) = match &self.processor {
            Processor::Cpu(m) => {
                let e = m.estimate(n);
                (e.time, e.energy)
            }
            Processor::Gpu(m) => {
                let e = m.estimate(n);
                (e.time, e.dynamic_energy())
            }
        };
        FftPoint { n, work, time, dynamic_energy: energy }
    }

    /// The full Fig. 1 size sweep.
    pub fn sweep(&self, sizes: &[usize]) -> Vec<FftPoint> {
        sizes.iter().map(|&n| self.point(n)).collect()
    }

    /// The size sweep through the full measurement methodology: every
    /// point metered by the simulated WattsUp with the repeat-until-CI
    /// protocol, fanned out over `exec`'s workers (output
    /// bitwise-identical at any thread count).
    pub fn sweep_measured(&self, sizes: &[usize], exec: &SweepExecutor) -> Vec<FftPoint> {
        exec.run_measured(
            sizes,
            || self.default_runner(0),
            |runner, &n| {
                let work = enprop_gpusim::fft_model::fft2d_work(n);
                let (time, steady, warm_p, warm_t) = match &self.processor {
                    Processor::Cpu(m) => {
                        let e = m.estimate(n);
                        (e.time, e.power, enprop_units::Watts::ZERO, enprop_units::Seconds::ZERO)
                    }
                    Processor::Gpu(m) => {
                        let e = m.estimate(n);
                        (e.time, e.steady_power, e.warmup_power, e.warmup_time)
                    }
                };
                let m = runner.measure(time, steady, warm_p, warm_t);
                FftPoint { n, work, time: m.time, dynamic_energy: m.dynamic_energy }
            },
        )
    }

    /// Fault-tolerant [`sweep_measured`](Self::sweep_measured): failed
    /// points retry per `policy`, sizes that exhaust their retries land in
    /// [`RobustSweep::failures`], and output stays bitwise-identical at
    /// any thread count.
    pub fn sweep_measured_robust(
        &self,
        sizes: &[usize],
        exec: &SweepExecutor,
        policy: RetryPolicy,
        plan: FaultPlan,
    ) -> RobustSweep<usize, FftPoint> {
        exec.run_measured_with_retry(
            sizes,
            policy,
            || self.faulty_runner(plan, 0),
            |runner, &n| {
                let work = enprop_gpusim::fft_model::fft2d_work(n);
                let (time, steady, warm_p, warm_t) = match &self.processor {
                    Processor::Cpu(m) => {
                        let e = m.estimate(n);
                        (e.time, e.power, enprop_units::Watts::ZERO, enprop_units::Seconds::ZERO)
                    }
                    Processor::Gpu(m) => {
                        let e = m.estimate(n);
                        (e.time, e.steady_power, e.warmup_power, e.warmup_time)
                    }
                };
                let m = runner.try_measure(time, steady, warm_p, warm_t)?;
                Ok(FftPoint { n, work, time: m.time, dynamic_energy: m.dynamic_energy })
            },
        )
    }

    /// A measurement rig matching the bound processor's node: the CPU node
    /// idles at 90 W, the GPU server nodes at 110 W.
    pub fn default_runner(&self, seed: u64) -> MeasurementRunner {
        MeasurementRunner::new(self.idle_power(), seed)
    }

    /// A [`default_runner`](Self::default_runner)-shaped rig whose meter
    /// misbehaves per `plan`.
    pub fn faulty_runner(
        &self,
        plan: FaultPlan,
        seed: u64,
    ) -> MeasurementRunner<FaultInjectingMeter<SimulatedWattsUp>> {
        MeasurementRunner::faulty(self.idle_power(), plan, seed)
    }

    fn idle_power(&self) -> enprop_units::Watts {
        match &self.processor {
            Processor::Cpu(_) => enprop_units::Watts(90.0),
            Processor::Gpu(_) => enprop_units::Watts(110.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes;

    #[test]
    fn catalog_names() {
        let names: Vec<String> = Processor::catalog().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["Intel Haswell E5-2670V3", "NVIDIA K40c", "NVIDIA P100 PCIe"]
        );
    }

    #[test]
    fn sweep_produces_increasing_work() {
        for proc in Processor::catalog() {
            let app = Fft2dApp::new(proc);
            let pts = app.sweep(&sizes::fig1_sizes());
            for w in pts.windows(2) {
                assert!(w[1].work > w[0].work);
                assert!(w[1].dynamic_energy.value() > 0.0);
            }
        }
    }

    #[test]
    fn measured_sweep_tracks_model_sweep() {
        let app = Fft2dApp::new(Processor::Gpu(
            enprop_gpusim::fft_model::GpuFft2d::new(GpuArch::p100_pcie()),
        ));
        let sizes = [2048usize, 8192, 16384];
        let exact = app.sweep(&sizes);
        let measured = app.sweep_measured(&sizes, &SweepExecutor::serial(13));
        for (e, m) in exact.iter().zip(&measured) {
            let rel = (e.dynamic_energy.value() - m.dynamic_energy.value()).abs()
                / e.dynamic_energy.value();
            assert!(rel < 0.30, "n={}: rel {rel}", e.n);
        }
    }

    #[test]
    fn faultless_robust_sweep_matches_plain_sweep() {
        let app = Fft2dApp::new(Processor::Gpu(
            enprop_gpusim::fft_model::GpuFft2d::new(GpuArch::k40c()),
        ));
        let sizes = [2048usize, 8192, 16384];
        let plain = app.sweep_measured(&sizes, &SweepExecutor::serial(13));
        let robust = app.sweep_measured_robust(
            &sizes,
            &SweepExecutor::serial(13),
            RetryPolicy::default(),
            FaultPlan::none(),
        );
        assert!(robust.is_complete());
        assert_eq!(robust.points, plain);
    }

    #[test]
    fn energy_nonlinear_in_work_on_every_processor() {
        for proc in Processor::catalog() {
            let app = Fft2dApp::new(proc);
            let pts = app.sweep(&sizes::fig1_sizes());
            let ratios: Vec<f64> = pts
                .iter()
                .map(|p| p.dynamic_energy.value() / p.work.value())
                .collect();
            let max = ratios.iter().cloned().fold(f64::MIN, f64::max);
            let min = ratios.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                max / min > 1.3,
                "{}: energy/work spread only {}",
                app.processor().name(),
                max / min
            );
        }
    }
}
