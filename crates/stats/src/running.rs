//! Welford's online algorithm: numerically stable incremental mean and
//! variance, so the measurement protocol can update its confidence
//! interval in O(1) per observation instead of re-summarizing the sample.

use crate::describe::Summary;

/// An incrementally updated sample summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Running {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Running {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Current mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (0 for an empty accumulator).
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sd() / (self.n as f64).sqrt()
        }
    }

    /// Converts to a [`Summary`]. Panics on an empty accumulator.
    pub fn summary(&self) -> Summary {
        assert!(self.n > 0, "summary of an empty accumulator");
        Summary {
            n: self.n,
            mean: self.mean,
            variance: self.variance(),
            min: self.min,
            max: self.max,
        }
    }

    /// Merges two accumulators (Chan's parallel combination) — useful for
    /// per-thread accumulation.
    pub fn merge(&self, other: &Running) -> Running {
        if self.n == 0 {
            return *other;
        }
        if other.n == 0 {
            return *self;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 =
            self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        Running { n, mean, m2, min: self.min.min(other.min), max: self.max.max(other.max) }
    }
}

impl FromIterator<f64> for Running {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut r = Running::new();
        for x in iter {
            r.push(x);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_summary() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let r: Running = xs.iter().copied().collect();
        let s = Summary::of(&xs);
        assert_eq!(r.count(), s.n);
        assert!((r.mean() - s.mean).abs() < 1e-12);
        assert!((r.variance() - s.variance).abs() < 1e-12);
        assert_eq!(r.summary().min, s.min);
        assert_eq!(r.summary().max, s.max);
        assert!((r.sem() - s.sem()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let mut r = Running::new();
        assert_eq!(r.count(), 0);
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.variance(), 0.0);
        assert_eq!(r.sem(), 0.0);
        r.push(5.0);
        assert_eq!(r.mean(), 5.0);
        assert_eq!(r.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let (a, b) = xs.split_at(17);
        let ra: Running = a.iter().copied().collect();
        let rb: Running = b.iter().copied().collect();
        let merged = ra.merge(&rb);
        let full: Running = xs.iter().copied().collect();
        assert_eq!(merged.count(), full.count());
        assert!((merged.mean() - full.mean()).abs() < 1e-12);
        assert!((merged.variance() - full.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let r: Running = [1.0, 2.0, 3.0].into_iter().collect();
        let e = Running::new();
        assert_eq!(r.merge(&e), r);
        assert_eq!(e.merge(&r), r);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: tiny variance on a huge
        // mean. The naive Σx² formula fails here; Welford does not.
        let base = 1.0e9;
        let r: Running = (0..1000).map(|i| base + (i % 3) as f64).collect();
        let expect_var = {
            let xs: Vec<f64> = (0..1000).map(|i| (i % 3) as f64).collect();
            Summary::of(&xs).variance
        };
        assert!((r.variance() - expect_var).abs() < 1e-6, "{}", r.variance());
    }

    #[test]
    #[should_panic(expected = "empty accumulator")]
    fn empty_summary_panics() {
        Running::new().summary();
    }
}
