//! The paper's experimental measurement protocol.
//!
//! > "For each data point reported in this work, the application is run
//! > repeatedly until the sample mean lies in the 95% confidence interval,
//! > and a precision of 0.025 (2.5%) is achieved. For this purpose,
//! > Student's t-test is used assuming that the individual observations are
//! > independent and their population follows the normal distribution. The
//! > validity of these assumptions is verified using Pearson's chi-squared
//! > test."
//!
//! [`measure_until_ci`] implements the stopping rule; [`PearsonChiSquared`]
//! implements the normality verification.

use crate::describe::Summary;
use crate::dist::{ChiSquared, Normal, StudentT};
use crate::running::Running;

/// Parameters of the CI stopping rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureConfig {
    /// Confidence level of the interval (paper: 0.95).
    pub confidence: f64,
    /// Required relative half-width of the CI (paper: 0.025 = 2.5%).
    pub precision: f64,
    /// Minimum number of repetitions before testing the rule.
    pub min_reps: usize,
    /// Hard cap on repetitions (a measurement that cannot converge is
    /// reported as non-converged rather than looping forever).
    pub max_reps: usize,
}

impl Default for MeasureConfig {
    /// The paper's settings: 95% confidence, 2.5% precision, at least 3 and
    /// at most 1000 repetitions.
    fn default() -> Self {
        Self { confidence: 0.95, precision: 0.025, min_reps: 3, max_reps: 1000 }
    }
}

/// The outcome of a repeated measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Sample mean of the observations.
    pub mean: f64,
    /// Half-width of the final confidence interval.
    pub ci_half_width: f64,
    /// Number of repetitions performed.
    pub reps: usize,
    /// Whether the precision target was met within `max_reps`.
    pub converged: bool,
    /// The raw observations, for post-hoc checks (normality etc.).
    pub samples: Vec<f64>,
}

impl Measurement {
    /// Relative half-width `ci_half_width / |mean|` (∞ for a zero mean).
    pub fn rel_precision(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci_half_width / self.mean.abs()
        }
    }

    /// Runs the Pearson χ² normality check on the collected samples.
    /// Returns `None` when there are too few samples to bin meaningfully.
    pub fn normality_check(&self, bins: usize) -> Option<PearsonChiSquared> {
        PearsonChiSquared::test_normality(&self.samples, bins)
    }
}

/// Repeatedly invokes `observe` until the Student-t confidence interval of
/// the sample mean is narrower than `cfg.precision × mean`, or `max_reps`
/// is hit.
///
/// `observe` is called once per repetition and returns one observation
/// (e.g. one timed, energy-metered application run).
///
/// # Example
/// ```
/// use enprop_stats::protocol::{measure_until_ci, MeasureConfig};
/// let mut k = 0.0_f64;
/// let m = measure_until_ci(MeasureConfig::default(), || {
///     k += 1.0;
///     100.0 + (k * 0.37).sin() // small deterministic jitter
/// });
/// assert!(m.converged);
/// assert!(m.rel_precision() <= 0.025);
/// ```
pub fn measure_until_ci<F: FnMut() -> f64>(cfg: MeasureConfig, mut observe: F) -> Measurement {
    match try_measure_until_ci(cfg, move || Ok::<f64, std::convert::Infallible>(observe())) {
        Ok(m) => m,
        Err(infallible) => match infallible {},
    }
}

/// Fallible [`measure_until_ci`]: `observe` may fail (a lost meter reading,
/// a dropped trace), and the *first* failed repetition aborts the whole
/// measurement — partial observation sets would bias the mean toward
/// whichever repetitions happened to survive, so the protocol treats an
/// attempt as all-or-nothing and leaves retrying to the caller.
pub fn try_measure_until_ci<E, F>(cfg: MeasureConfig, mut observe: F) -> Result<Measurement, E>
where
    F: FnMut() -> Result<f64, E>,
{
    assert!(cfg.min_reps >= 2, "need at least two observations for a CI");
    assert!(cfg.max_reps >= cfg.min_reps, "max_reps must be >= min_reps");
    let mut samples = Vec::with_capacity(cfg.min_reps);
    let mut running = Running::new();
    loop {
        let x = observe()?;
        samples.push(x);
        running.push(x);
        if samples.len() < cfg.min_reps {
            continue;
        }
        let t_crit =
            StudentT::new((running.count() - 1) as f64).two_sided_critical(cfg.confidence);
        let half = t_crit * running.sem();
        let mean = running.mean();
        let ok = mean != 0.0 && half <= cfg.precision * mean.abs();
        if ok || samples.len() >= cfg.max_reps {
            return Ok(Measurement {
                mean,
                ci_half_width: half,
                reps: samples.len(),
                converged: ok,
                samples,
            });
        }
    }
}

/// Pearson's χ² goodness-of-fit test against a normal distribution whose
/// parameters are estimated from the sample.
///
/// The sample is partitioned into `bins` equal-probability cells of the
/// fitted normal; the statistic is `Σ (Oᵢ − Eᵢ)² / Eᵢ` with
/// `df = bins − 3` (two parameters estimated, one constraint).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PearsonChiSquared {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom.
    pub df: usize,
    /// Upper-tail p-value.
    pub p_value: f64,
}

impl PearsonChiSquared {
    /// Runs the test. Returns `None` if `bins < 4`, the sample is smaller
    /// than `5 × bins` (expected counts would be too small for the χ²
    /// approximation), or the sample is constant.
    pub fn test_normality(samples: &[f64], bins: usize) -> Option<Self> {
        if bins < 4 || samples.len() < 5 * bins {
            return None;
        }
        let s = Summary::of(samples);
        if s.sd() == 0.0 {
            return None;
        }
        let fitted = Normal::new(s.mean, s.sd());
        // Equal-probability bin edges.
        let mut edges = Vec::with_capacity(bins - 1);
        for i in 1..bins {
            edges.push(fitted.inv_cdf(i as f64 / bins as f64));
        }
        let mut observed = vec![0usize; bins];
        for &x in samples {
            let idx = edges.partition_point(|&e| e < x);
            observed[idx] += 1;
        }
        let expected = samples.len() as f64 / bins as f64;
        let statistic: f64 = observed
            .iter()
            .map(|&o| {
                let d = o as f64 - expected;
                d * d / expected
            })
            .sum();
        let df = bins - 3;
        let p_value = ChiSquared::new(df as f64).sf(statistic);
        Some(Self { statistic, df, p_value })
    }

    /// True when normality is *not* rejected at significance `alpha`.
    pub fn is_consistent_with_normal(&self, alpha: f64) -> bool {
        self.p_value > alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (xorshift) for reproducible tests.
    struct XorShift(u64);
    impl XorShift {
        fn next_f64(&mut self) -> f64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            (x >> 11) as f64 / (1u64 << 53) as f64
        }
        /// Box–Muller standard normal.
        fn next_normal(&mut self) -> f64 {
            let u1 = self.next_f64().max(1e-12);
            let u2 = self.next_f64();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }

    #[test]
    fn protocol_converges_on_low_noise() {
        let mut rng = XorShift(42);
        let m = measure_until_ci(MeasureConfig::default(), || 100.0 + rng.next_normal() * 0.5);
        assert!(m.converged);
        assert!(m.rel_precision() <= 0.025);
        assert!((m.mean - 100.0).abs() < 1.0);
        assert!(m.reps >= 3);
    }

    #[test]
    fn protocol_needs_more_reps_for_noisier_data() {
        let mut rng1 = XorShift(7);
        let quiet = measure_until_ci(MeasureConfig::default(), || 100.0 + rng1.next_normal() * 0.2);
        let mut rng2 = XorShift(7);
        let noisy = measure_until_ci(MeasureConfig::default(), || 100.0 + rng2.next_normal() * 8.0);
        assert!(noisy.reps > quiet.reps, "{} !> {}", noisy.reps, quiet.reps);
    }

    #[test]
    fn protocol_reports_non_convergence() {
        let mut rng = XorShift(3);
        let cfg = MeasureConfig { max_reps: 5, ..MeasureConfig::default() };
        // Mean ~0 with large noise: the relative-precision rule cannot hold.
        let m = measure_until_ci(cfg, || rng.next_normal() * 100.0);
        assert!(!m.converged);
        assert_eq!(m.reps, 5);
    }

    #[test]
    fn protocol_handles_constant_observable() {
        let m = measure_until_ci(MeasureConfig::default(), || 42.0);
        assert!(m.converged);
        assert_eq!(m.mean, 42.0);
        assert_eq!(m.ci_half_width, 0.0);
        assert_eq!(m.reps, 3);
    }

    #[test]
    fn fallible_protocol_matches_infallible_on_success() {
        let mut rng1 = XorShift(42);
        let a = measure_until_ci(MeasureConfig::default(), || 100.0 + rng1.next_normal() * 0.5);
        let mut rng2 = XorShift(42);
        let b: Result<Measurement, std::convert::Infallible> =
            try_measure_until_ci(MeasureConfig::default(), || {
                Ok(100.0 + rng2.next_normal() * 0.5)
            });
        assert_eq!(a, b.unwrap());
    }

    #[test]
    fn first_failed_rep_aborts_the_attempt() {
        let mut calls = 0;
        let r: Result<Measurement, &str> = try_measure_until_ci(MeasureConfig::default(), || {
            calls += 1;
            if calls == 2 { Err("reading lost") } else { Ok(100.0) }
        });
        assert_eq!(r, Err("reading lost"));
        // One good rep, then the failure: no further observations drawn.
        assert_eq!(calls, 2);
    }

    #[test]
    fn chi_squared_accepts_normal_data() {
        let mut rng = XorShift(123);
        let samples: Vec<f64> = (0..500).map(|_| 10.0 + rng.next_normal()).collect();
        let t = PearsonChiSquared::test_normality(&samples, 10).unwrap();
        assert!(t.is_consistent_with_normal(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn chi_squared_rejects_bimodal_data() {
        let mut rng = XorShift(99);
        let samples: Vec<f64> = (0..500)
            .map(|i| if i % 2 == 0 { -5.0 } else { 5.0 } + rng.next_normal() * 0.3)
            .collect();
        let t = PearsonChiSquared::test_normality(&samples, 10).unwrap();
        assert!(!t.is_consistent_with_normal(0.05), "p = {}", t.p_value);
    }

    #[test]
    fn chi_squared_refuses_tiny_samples() {
        assert!(PearsonChiSquared::test_normality(&[1.0, 2.0, 3.0], 10).is_none());
        let constant = vec![5.0; 100];
        assert!(PearsonChiSquared::test_normality(&constant, 10).is_none());
    }
}
